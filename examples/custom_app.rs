//! Writing your own workload: build a trace directly with
//! [`simcore::TraceBuilder`] and run it through the clustered machine.
//! Accepts the shared bench CLI, so `--emit-manifest` makes the
//! output diffable in CI.
//!
//! The (deliberately simple) workload is a producer/consumer pipeline:
//! even processors produce blocks that their odd neighbors consume —
//! a pattern clustering captures perfectly when producer and consumer
//! share a cluster.
//!
//! ```text
//! cargo run --release --example custom_app -- [--emit-manifest]
//! ```

use cluster_bench::{Cli, Reporter};
use cluster_study::report::render_sweep;
use cluster_study::study::StudySpec;
use coherence::config::CacheSpec;
use simcore::ops::TraceBuilder;

const PROCS: usize = 64;
const BLOCK_LINES: u64 = 64; // 4 KB blocks
const ROUNDS: usize = 20;

fn main() {
    let cli = Cli::parse();
    let mut b = TraceBuilder::new(PROCS);

    // One block per producer, allocated at the producer.
    let blocks: Vec<u64> = (0..PROCS / 2)
        .map(|i| b.space_mut().alloc_owned(BLOCK_LINES * 64, (2 * i) as u32))
        .collect();
    let lock = b.new_lock();
    let counter = b.space_mut().alloc_shared(64);

    for _round in 0..ROUNDS {
        // Producers (even procs) write their block.
        for (i, &blk) in blocks.iter().enumerate() {
            let p = (2 * i) as u32;
            b.compute(p, 2000);
            b.write_span(p, blk, BLOCK_LINES * 64);
        }
        b.barrier_all();
        // Consumers (odd procs) read the neighbor's block and bump a
        // shared counter under a lock.
        for (i, &blk) in blocks.iter().enumerate() {
            let p = (2 * i + 1) as u32;
            b.read_span(p, blk, BLOCK_LINES * 64);
            b.compute(p, 2000);
            b.lock(p, lock);
            b.read(p, counter);
            b.write(p, counter);
            b.unlock(p, lock);
        }
        b.barrier_all();
    }
    let trace = b.finish();
    trace.validate().expect("structurally valid trace");

    let sweep = StudySpec::for_trace(&trace)
        .caches([CacheSpec::Infinite])
        .jobs(cli.jobs)
        .run_sweep();
    print!(
        "{}",
        render_sweep("producer/consumer pipeline", &sweep, None)
    );
    println!(
        "\nWith 2+ processors per cluster the producer-consumer pair shares\n\
         a cache: the hand-off that cost a remote 3-hop miss per line now\n\
         hits in the cluster cache."
    );
    let mut reporter = Reporter::new("example_custom_app", &cli);
    reporter.record_sweep("producer_consumer", &sweep, None);
    reporter.finish();
}
