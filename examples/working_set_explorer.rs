//! Working-set explorer: sweep the per-processor cache size for one
//! application and watch the miss-rate knee — then watch clustering
//! move the knee by overlapping the working sets (the paper's Section
//! 5 mechanism). Accepts the shared bench CLI: pick the application
//! with `--apps barnes`, and `--emit-manifest` makes the output
//! diffable in CI.
//!
//! ```text
//! cargo run --release --example working_set_explorer -- [--apps lu]
//! ```

use cluster_bench::{Cli, Reporter};
use cluster_study::apps::trace_for;
use cluster_study::study::run_config;
use coherence::config::CacheSpec;

fn main() {
    let cli = Cli::parse();
    let app = cli
        .apps
        .as_ref()
        .and_then(|list| list.first().cloned())
        .unwrap_or_else(|| "barnes".into());
    let trace = trace_for(&app, cli.size, cli.procs);
    let mut reporter = Reporter::new("example_working_set_explorer", &cli);
    println!("{app}: read miss rate (%) vs per-processor cache size\n");
    println!(
        "  {:>8} {:>8} {:>8} {:>8} {:>8}",
        "cache", "1p", "2p", "4p", "8p"
    );
    for kb in [2u64, 4, 8, 16, 32, 64] {
        print!("  {:>7}k", kb);
        for per_cluster in [1u32, 2, 4, 8] {
            let rs = run_config(&trace, per_cluster, CacheSpec::PerProcBytes(kb * 1024));
            print!(" {:>8.2}", rs.mem.read_miss_rate() * 100.0);
            reporter.record_run(&app, &format!("{kb}k"), per_cluster, &rs, None);
        }
        println!();
    }
    let inf = run_config(&trace, 1, CacheSpec::Infinite);
    reporter.record_run(&app, "inf", 1, &inf, None);
    println!(
        "  {:>8} {:>8.2} (compulsory + coherence misses only)",
        "inf",
        inf.mem.read_miss_rate() * 100.0
    );
    println!(
        "\nReading across a row: the same total cache per processor, shared\n\
         by more processors, misses less once the overlapped working set\n\
         fits — the knee shifts left with cluster size."
    );
    reporter.finish();
}
