//! Ocean grid-size study: how the clustering benefit grows as the
//! problem shrinks relative to the machine (the paper's Figure 2 vs
//! Figure 3 comparison, extended to a sweep).
//!
//! Near-neighbor communication is a perimeter-to-area ratio, so smaller
//! grids communicate proportionally more — and clustering, which
//! captures the left/right border exchange inside the cluster, helps
//! proportionally more. The flip side the paper notes: load imbalance
//! and synchronization grow too.
//!
//! ```text
//! cargo run --release --example ocean_scaling
//! ```

use cluster_study::study::sweep_clusters;
use coherence::config::CacheSpec;
use splash::{ocean::Ocean, SplashApp};

fn main() {
    println!("Ocean: normalized 8-way-cluster execution time vs grid size\n");
    println!(
        "  {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "grid", "refs", "1p", "2p", "4p", "8p"
    );
    for n_interior in [32usize, 64, 128, 256] {
        let app = Ocean {
            n_interior,
            steps: 2,
        };
        let trace = app.generate(64);
        let sweep = sweep_clusters(&trace, CacheSpec::Infinite);
        let totals = sweep.normalized_totals();
        print!(
            "  {:>10} {:>10}",
            format!("{0}x{0}", n_interior + 2),
            trace.total_refs()
        );
        for (_, t) in totals {
            print!(" {t:>8.1}");
        }
        println!();
    }
    println!(
        "\nSmaller grids benefit more from clustering (communication is a\n\
         larger share), exactly as the paper's Figure 3 shows for 66x66 vs\n\
         Figure 2's 130x130."
    );
}
