//! Ocean grid-size study: how the clustering benefit grows as the
//! problem shrinks relative to the machine (the paper's Figure 2 vs
//! Figure 3 comparison, extended to a sweep). Accepts the shared
//! bench CLI, so `--emit-manifest` makes the output diffable in CI.
//!
//! Near-neighbor communication is a perimeter-to-area ratio, so smaller
//! grids communicate proportionally more — and clustering, which
//! captures the left/right border exchange inside the cluster, helps
//! proportionally more. The flip side the paper notes: load imbalance
//! and synchronization grow too.
//!
//! ```text
//! cargo run --release --example ocean_scaling -- [--emit-manifest]
//! ```

use cluster_bench::{Cli, Reporter};
use cluster_study::study::StudySpec;
use coherence::config::CacheSpec;
use splash::{ocean::Ocean, SplashApp};

fn main() {
    let cli = Cli::parse();
    let mut reporter = Reporter::new("example_ocean_scaling", &cli);
    println!("Ocean: normalized 8-way-cluster execution time vs grid size\n");
    println!(
        "  {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "grid", "refs", "1p", "2p", "4p", "8p"
    );
    for n_interior in [32usize, 64, 128, 256] {
        let app = Ocean {
            n_interior,
            steps: 2,
        };
        let trace = app.generate(64);
        let sweep = StudySpec::for_trace(&trace)
            .caches([CacheSpec::Infinite])
            .jobs(cli.jobs)
            .run_sweep();
        let label = format!("ocean-{0}x{0}", n_interior + 2);
        reporter.record_sweep(&label, &sweep, None);
        reporter
            .manifest
            .metrics
            .counter(&format!("{label}.trace_refs"), trace.total_refs());
        let totals = sweep.normalized_totals();
        print!(
            "  {:>10} {:>10}",
            format!("{0}x{0}", n_interior + 2),
            trace.total_refs()
        );
        for (_, t) in totals {
            print!(" {t:>8.1}");
        }
        println!();
    }
    println!(
        "\nSmaller grids benefit more from clustering (communication is a\n\
         larger share), exactly as the paper's Figure 3 shows for 66x66 vs\n\
         Figure 2's 130x130."
    );
    reporter.finish();
}
