//! Quickstart: simulate one application on a clustered 64-processor
//! machine and print the paper-style normalized breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster_study::report::render_sweep;
use cluster_study::study::sweep_clusters;
use coherence::config::CacheSpec;
use splash::{ocean::Ocean, SplashApp};

fn main() {
    // 1. Pick a workload and generate its 64-processor reference trace.
    //    The generator runs the real algorithm (here: a multigrid ocean
    //    solver) and records every shared-memory access.
    let app = Ocean::paper();
    let trace = app.generate(64);
    println!(
        "{}: {} ops, {} shared refs, {} barriers",
        app.name(),
        trace.total_ops(),
        trace.total_refs(),
        trace.n_barriers,
    );

    // 2. Replay it under cluster sizes 1/2/4/8 with infinite caches
    //    (the paper's Section 4 experiment).
    let sweep = sweep_clusters(&trace, CacheSpec::Infinite);

    // 3. Report execution time normalized to the unclustered machine,
    //    decomposed into cpu / load / merge / sync.
    print!("{}", render_sweep("ocean, infinite caches", &sweep, None));

    // 4. The same, at 16 KB per processor (Section 5): capacity effects
    //    and working-set overlap enter the picture.
    let sweep16 = sweep_clusters(&trace, CacheSpec::PerProcBytes(16 * 1024));
    print!("{}", render_sweep("ocean, 16KB/processor", &sweep16, None));
}
