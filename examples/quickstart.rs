//! Quickstart: simulate one application on a clustered 64-processor
//! machine and print the paper-style normalized breakdown. Accepts
//! the shared bench CLI, so `--format json --out ...` (or
//! `--emit-manifest`) makes the output diffable in CI.
//!
//! ```text
//! cargo run --release --example quickstart -- [--emit-manifest]
//! ```

use cluster_bench::{Cli, Reporter};
use cluster_study::report::render_sweep;
use cluster_study::study::StudySpec;
use coherence::config::CacheSpec;
use splash::{ocean::Ocean, SplashApp};

fn main() {
    let cli = Cli::parse();
    let mut reporter = Reporter::new("example_quickstart", &cli);

    // 1. Pick a workload and generate its 64-processor reference trace.
    //    The generator runs the real algorithm (here: a multigrid ocean
    //    solver) and records every shared-memory access.
    let app = Ocean::paper();
    let trace = app.generate(64);
    println!(
        "{}: {} ops, {} shared refs, {} barriers",
        app.name(),
        trace.total_ops(),
        trace.total_refs(),
        trace.n_barriers,
    );
    let m = &mut reporter.manifest.metrics;
    m.counter("trace_ops", trace.total_ops());
    m.counter("trace_refs", trace.total_refs());

    // 2. Replay it under cluster sizes 1/2/4/8 with infinite caches
    //    (the paper's Section 4 experiment).
    let sweep = StudySpec::for_trace(&trace)
        .caches([CacheSpec::Infinite])
        .jobs(cli.jobs)
        .run_sweep();

    // 3. Report execution time normalized to the unclustered machine,
    //    decomposed into cpu / load / merge / sync.
    print!("{}", render_sweep("ocean, infinite caches", &sweep, None));
    reporter.record_sweep("ocean", &sweep, None);

    // 4. The same, at 16 KB per processor (Section 5): capacity effects
    //    and working-set overlap enter the picture.
    let sweep16 = StudySpec::for_trace(&trace)
        .caches([CacheSpec::PerProcBytes(16 * 1024)])
        .jobs(cli.jobs)
        .run_sweep();
    print!("{}", render_sweep("ocean, 16KB/processor", &sweep16, None));
    reporter.record_sweep("ocean", &sweep16, None);
    reporter.finish();
}
