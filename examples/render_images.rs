//! The graphics workloads are real renderers: this example writes the
//! images they compute (the same computations whose memory traces the
//! study replays) to `raytrace.pgm` and `volrend.pgm`. Accepts the
//! shared bench CLI; `--emit-manifest` records deterministic image
//! checksums so the renders are diffable in CI.
//!
//! ```text
//! cargo run --release --example render_images -- [--emit-manifest]
//! ```

use cluster_bench::{Cli, Reporter};
use splash::raytrace::{balls_scene, Raytrace, SceneOctree};
use splash::volrend::{MinMaxOctree, Volrend, Volume};

fn write_pgm(path: &str, w: usize, pixels: &[f32]) -> std::io::Result<()> {
    let max = pixels.iter().cloned().fold(1e-6f32, f32::max);
    let mut data = format!("P2\n{w} {w}\n255\n");
    for row in pixels.chunks(w) {
        for &p in row {
            data.push_str(&format!("{} ", ((p / max) * 255.0) as u8));
        }
        data.push('\n');
    }
    cluster_study::manifest::write_atomic(std::path::Path::new(path), data.as_bytes())
}

/// Deterministic content hash of the rendered pixels (FNV-1a over the
/// f32 bit patterns) — lets a manifest diff catch renderer drift.
fn pixel_hash(pixels: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for p in pixels {
        for b in p.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() -> std::io::Result<()> {
    let cli = Cli::parse();
    let mut reporter = Reporter::new("example_render_images", &cli);
    let rt = Raytrace {
        image: 128,
        balls_depth: 3,
        max_bounce: 3,
    };
    let tree = SceneOctree::build(balls_scene(rt.balls_depth));
    let img = rt.render(&tree, None);
    write_pgm("raytrace.pgm", rt.image, &img)?;
    println!(
        "raytrace.pgm: {}x{} image of {} spheres through {} octree nodes",
        rt.image,
        rt.image,
        tree.spheres().len(),
        tree.n_nodes()
    );
    let m = &mut reporter.manifest.metrics;
    m.counter("raytrace.spheres", tree.spheres().len() as u64);
    m.counter("raytrace.octree_nodes", tree.n_nodes() as u64);
    m.counter("raytrace.pixel_hash", pixel_hash(&img));

    let vr = Volrend {
        vol: 64,
        image: 128,
    };
    let vol = Volume::head(vr.vol);
    let oct = MinMaxOctree::build(&vol, 4);
    let img = vr.render(&vol, Some(&oct), None);
    write_pgm("volrend.pgm", vr.image, &img)?;
    println!(
        "volrend.pgm: {}x{} rendering of the synthetic {}³ head volume",
        vr.image, vr.image, vr.vol
    );
    let m = &mut reporter.manifest.metrics;
    m.counter("volrend.pixel_hash", pixel_hash(&img));
    reporter.finish();
    Ok(())
}
