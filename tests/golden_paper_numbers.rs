//! Golden-number regression test: Ocean (small) and MP3D (small) at
//! 16 processors, swept over cluster sizes {1, 2, 4, 8}, checked
//! against the expected normalized totals and breakdowns to three
//! decimals.
//!
//! The whole pipeline is deterministic, so these values are exact up
//! to the printed precision; any drift means the simulated machine or
//! a workload generator changed behavior and the change must be
//! reviewed (and this file regenerated — run the ignored
//! `dump_golden_numbers` test with `--nocapture` and paste).
//!
//! History: the goldens were regenerated when the workload generators
//! moved from the external `rand` crate (StdRng, ChaCha-based) to the
//! in-tree `simcore::rng` xoshiro256** generator. Same seeds per app,
//! different stream, so every randomized app's trace — and therefore
//! every golden below — shifted by a few tenths of a point. The
//! qualitative picture (which apps benefit from clustering, and how
//! much) did not change; see results/RNG_MIGRATION.md.
//!
//! Regenerated again when the generators were made race-clean for the
//! happens-before detector (DESIGN.md §15): Ocean's relaxation moved
//! to red-black shadow grids (no in-place neighbor updates), and
//! MP3D/Barnes/Radix guard their shared accumulators with locks
//! instead of racy read-modify-writes. Slightly larger footprints and
//! extra sync ops shift every number by a few tenths of a point; the
//! clustering story is unchanged.

use cluster_study::study::{ClusterSweep, StudySpec};
use coherence::config::CacheSpec;
use splash::{by_name, ProblemSize, SplashApp};

const PROCS: usize = 16;

/// `(cluster size, total, [cpu, load, merge, sync])`, all in percent
/// of the 1-per-cluster baseline, rounded to 3 decimals.
type Golden = [(u32, f64, [f64; 4]); 4];

fn sweep(app: &dyn SplashApp, cache: CacheSpec) -> ClusterSweep {
    let trace = app.generate(PROCS);
    StudySpec::for_trace(&trace).caches([cache]).run_sweep()
}

fn check(name: &str, sweep: &ClusterSweep, golden: &Golden) {
    let totals = sweep.normalized_totals();
    let breakdowns = sweep.normalized_breakdowns();
    for (i, &(c, total, parts)) in golden.iter().enumerate() {
        assert_eq!(totals[i].0, c, "{name}: cluster-size order changed");
        assert!(
            (totals[i].1 - total).abs() < 5e-4,
            "{name} {c}p: total {} != golden {total}",
            totals[i].1
        );
        for (j, &p) in parts.iter().enumerate() {
            assert!(
                (breakdowns[i].1[j] - p).abs() < 5e-4,
                "{name} {c}p component {j}: {} != golden {p}",
                breakdowns[i].1[j]
            );
        }
    }
}

fn ocean() -> Box<dyn SplashApp> {
    by_name("ocean", ProblemSize::Small).unwrap()
}

fn mp3d() -> Box<dyn SplashApp> {
    by_name("mp3d", ProblemSize::Small).unwrap()
}

#[test]
fn ocean_small_16p_infinite_cache_golden() {
    check(
        "ocean/inf",
        &sweep(ocean().as_ref(), CacheSpec::Infinite),
        &OCEAN_INF,
    );
}

#[test]
fn ocean_small_16p_4k_cache_golden() {
    check(
        "ocean/4k",
        &sweep(ocean().as_ref(), CacheSpec::PerProcBytes(4096)),
        &OCEAN_4K,
    );
}

#[test]
fn mp3d_small_16p_infinite_cache_golden() {
    check(
        "mp3d/inf",
        &sweep(mp3d().as_ref(), CacheSpec::Infinite),
        &MP3D_INF,
    );
}

#[test]
fn mp3d_small_16p_4k_cache_golden() {
    check(
        "mp3d/4k",
        &sweep(mp3d().as_ref(), CacheSpec::PerProcBytes(4096)),
        &MP3D_4K,
    );
}

/// Regenerator: `cargo test --test golden_paper_numbers -- --ignored --nocapture`
#[test]
#[ignore = "prints replacement goldens; run manually after reviewed behavior changes"]
fn dump_golden_numbers() {
    for (name, app, cache) in [
        ("OCEAN_INF", ocean(), CacheSpec::Infinite),
        ("OCEAN_4K", ocean(), CacheSpec::PerProcBytes(4096)),
        ("MP3D_INF", mp3d(), CacheSpec::Infinite),
        ("MP3D_4K", mp3d(), CacheSpec::PerProcBytes(4096)),
    ] {
        let s = sweep(app.as_ref(), cache);
        println!("const {name}: Golden = [");
        for ((c, t), (_, b)) in s.normalized_totals().iter().zip(s.normalized_breakdowns()) {
            println!(
                "    ({c}, {t:.3}, [{:.3}, {:.3}, {:.3}, {:.3}]),",
                b[0], b[1], b[2], b[3]
            );
        }
        println!("];");
    }
}

const OCEAN_INF: Golden = [
    (1, 100.000, [60.108, 30.236, 0.013, 9.644]),
    (2, 83.937, [60.108, 14.173, 0.013, 9.644]),
    (4, 67.874, [60.108, 6.141, 0.024, 1.600]),
    (8, 64.935, [60.108, 3.203, 0.046, 1.578]),
];

/// No longer an alias of [`OCEAN_INF`]: with the red-black shadow
/// grids the small-size working set slightly exceeds 4 KB per
/// processor, so the finite cache drifts from infinite by a few
/// hundredths of a point.
const OCEAN_4K: Golden = [
    (1, 100.000, [60.044, 30.219, 0.031, 9.705]),
    (2, 83.848, [60.044, 14.158, 0.013, 9.634]),
    (4, 67.802, [60.044, 6.135, 0.023, 1.599]),
    (8, 64.867, [60.044, 3.199, 0.046, 1.576]),
];

const MP3D_INF: Golden = [
    (1, 100.000, [33.532, 51.431, 0.000, 15.036]),
    (2, 90.723, [33.532, 43.739, 0.000, 13.451]),
    (4, 78.457, [33.532, 32.814, 0.000, 12.109]),
    (8, 63.267, [33.532, 17.209, 0.000, 12.526]),
];

const MP3D_4K: Golden = [
    (1, 100.000, [33.243, 50.993, 0.000, 15.763]),
    (2, 91.914, [33.243, 43.886, 0.000, 14.784]),
    (4, 80.093, [33.243, 33.218, 0.000, 13.631]),
    (8, 63.836, [33.243, 17.901, 0.000, 12.690]),
];
