//! Golden-number regression test: Ocean (small) and MP3D (small) at
//! 16 processors, swept over cluster sizes {1, 2, 4, 8}, checked
//! against the expected normalized totals and breakdowns to three
//! decimals.
//!
//! The whole pipeline is deterministic, so these values are exact up
//! to the printed precision; any drift means the simulated machine or
//! a workload generator changed behavior and the change must be
//! reviewed (and this file regenerated — run the ignored
//! `dump_golden_numbers` test with `--nocapture` and paste).
//!
//! History: the goldens were regenerated when the workload generators
//! moved from the external `rand` crate (StdRng, ChaCha-based) to the
//! in-tree `simcore::rng` xoshiro256** generator. Same seeds per app,
//! different stream, so every randomized app's trace — and therefore
//! every golden below — shifted by a few tenths of a point. The
//! qualitative picture (which apps benefit from clustering, and how
//! much) did not change; see results/RNG_MIGRATION.md.

use cluster_study::study::{ClusterSweep, StudySpec};
use coherence::config::CacheSpec;
use splash::{by_name, ProblemSize, SplashApp};

const PROCS: usize = 16;

/// `(cluster size, total, [cpu, load, merge, sync])`, all in percent
/// of the 1-per-cluster baseline, rounded to 3 decimals.
type Golden = [(u32, f64, [f64; 4]); 4];

fn sweep(app: &dyn SplashApp, cache: CacheSpec) -> ClusterSweep {
    let trace = app.generate(PROCS);
    StudySpec::for_trace(&trace).caches([cache]).run_sweep()
}

fn check(name: &str, sweep: &ClusterSweep, golden: &Golden) {
    let totals = sweep.normalized_totals();
    let breakdowns = sweep.normalized_breakdowns();
    for (i, &(c, total, parts)) in golden.iter().enumerate() {
        assert_eq!(totals[i].0, c, "{name}: cluster-size order changed");
        assert!(
            (totals[i].1 - total).abs() < 5e-4,
            "{name} {c}p: total {} != golden {total}",
            totals[i].1
        );
        for (j, &p) in parts.iter().enumerate() {
            assert!(
                (breakdowns[i].1[j] - p).abs() < 5e-4,
                "{name} {c}p component {j}: {} != golden {p}",
                breakdowns[i].1[j]
            );
        }
    }
}

fn ocean() -> Box<dyn SplashApp> {
    by_name("ocean", ProblemSize::Small).unwrap()
}

fn mp3d() -> Box<dyn SplashApp> {
    by_name("mp3d", ProblemSize::Small).unwrap()
}

#[test]
fn ocean_small_16p_infinite_cache_golden() {
    check(
        "ocean/inf",
        &sweep(ocean().as_ref(), CacheSpec::Infinite),
        &OCEAN_INF,
    );
}

#[test]
fn ocean_small_16p_4k_cache_golden() {
    check(
        "ocean/4k",
        &sweep(ocean().as_ref(), CacheSpec::PerProcBytes(4096)),
        &OCEAN_4K,
    );
}

#[test]
fn mp3d_small_16p_infinite_cache_golden() {
    check(
        "mp3d/inf",
        &sweep(mp3d().as_ref(), CacheSpec::Infinite),
        &MP3D_INF,
    );
}

#[test]
fn mp3d_small_16p_4k_cache_golden() {
    check(
        "mp3d/4k",
        &sweep(mp3d().as_ref(), CacheSpec::PerProcBytes(4096)),
        &MP3D_4K,
    );
}

/// Regenerator: `cargo test --test golden_paper_numbers -- --ignored --nocapture`
#[test]
#[ignore = "prints replacement goldens; run manually after reviewed behavior changes"]
fn dump_golden_numbers() {
    for (name, app, cache) in [
        ("OCEAN_INF", ocean(), CacheSpec::Infinite),
        ("OCEAN_4K", ocean(), CacheSpec::PerProcBytes(4096)),
        ("MP3D_INF", mp3d(), CacheSpec::Infinite),
        ("MP3D_4K", mp3d(), CacheSpec::PerProcBytes(4096)),
    ] {
        let s = sweep(app.as_ref(), cache);
        println!("const {name}: Golden = [");
        for ((c, t), (_, b)) in s.normalized_totals().iter().zip(s.normalized_breakdowns()) {
            println!(
                "    ({c}, {t:.3}, [{:.3}, {:.3}, {:.3}, {:.3}]),",
                b[0], b[1], b[2], b[3]
            );
        }
        println!("];");
    }
}

const OCEAN_INF: Golden = [
    (1, 100.000, [60.138, 30.251, 0.000, 9.610]),
    (2, 83.929, [60.138, 14.180, 0.000, 9.610]),
    (4, 67.857, [60.138, 6.144, 0.000, 1.575]),
    (8, 64.917, [60.138, 3.204, 0.000, 1.575]),
];

/// Identical to [`OCEAN_INF`] to the printed precision: small-size
/// Ocean's 34×34 per-processor partitions fit in 4 KB per processor,
/// so the finite cache behaves as infinite.
const OCEAN_4K: Golden = OCEAN_INF;

const MP3D_INF: Golden = [
    (1, 100.000, [33.737, 52.884, 0.010, 13.367]),
    (2, 88.489, [33.737, 44.803, 0.065, 9.883]),
    (4, 76.876, [33.737, 33.422, 0.143, 9.574]),
    (8, 62.818, [33.737, 17.608, 0.239, 11.231]),
];

const MP3D_4K: Golden = [
    (1, 100.000, [33.154, 51.990, 0.004, 14.849]),
    (2, 89.819, [33.154, 44.646, 0.077, 11.940]),
    (4, 77.691, [33.154, 33.605, 0.098, 10.832]),
    (8, 63.236, [33.154, 18.264, 0.201, 11.614]),
];
