//! The pipelined executor's determinism contract, end to end through
//! the manifest layer: a `StudySpec` study folded into a [`Manifest`]
//! must produce a `stats_json()` **byte-identical** across any job
//! count — and byte-identical to a hand-written serial reference that
//! uses no study or pool machinery at all, just nested loops over the
//! same matrix.

use std::sync::atomic::{AtomicUsize, Ordering};

use cluster_study::manifest::Manifest;
use cluster_study::study::{run_config, StudyEvent, StudySpec};
use coherence::config::CacheSpec;
use splash::{by_name, ProblemSize};

const APPS: [&str; 2] = ["lu", "fft"];
const CACHES: [CacheSpec; 2] = [CacheSpec::PerProcBytes(4096), CacheSpec::Infinite];
const SIZES: [u32; 3] = [1, 2, 8];
const PROCS: usize = 8;

/// The old-style reference: generate each trace, then plain nested
/// loops app → cache → cluster size, recording into a manifest.
fn serial_reference() -> Manifest {
    let mut m = Manifest::new("pipelined_study", "small", PROCS, 1);
    for app in APPS {
        let trace = by_name(app, ProblemSize::Small).unwrap().generate(PROCS);
        for cache in CACHES {
            for c in SIZES {
                let rs = run_config(&trace, c, cache);
                m.record_run(app, &cache.label(), c, &rs, None);
            }
        }
    }
    m
}

/// The same matrix through the pipelined executor at `jobs`, folded
/// into a manifest the same way the bench tools do.
fn study_manifest(jobs: usize) -> (Manifest, usize, usize) {
    let gens = AtomicUsize::new(0);
    let sims = AtomicUsize::new(0);
    let run = StudySpec::generate(&APPS, ProblemSize::Small, PROCS)
        .caches(CACHES)
        .cluster_sizes(&SIZES)
        .jobs(jobs)
        .run_with(|e| match e {
            StudyEvent::GenDone { .. } => {
                gens.fetch_add(1, Ordering::Relaxed);
            }
            StudyEvent::SimDone { .. } => {
                sims.fetch_add(1, Ordering::Relaxed);
            }
            StudyEvent::GenFailed { name, error, .. } => {
                panic!("unexpected gen failure for {name}: {error}")
            }
            StudyEvent::SimFailed { name, error, .. } => {
                panic!("unexpected sim failure for {name}: {error}")
            }
        });
    let mut m = Manifest::new("pipelined_study", "small", PROCS, jobs);
    for (name, cap) in run.names.iter().zip(run.per_trace()) {
        for sweep in &cap.sweeps {
            m.record_sweep(name, sweep, None);
        }
    }
    m.timing = Some(run.timing);
    (m, gens.into_inner(), sims.into_inner())
}

#[test]
fn stats_identical_across_job_counts_and_to_serial_reference() {
    let reference = serial_reference().stats_json().to_string();
    for jobs in [1usize, 2, 8] {
        let (m, gens, sims) = study_manifest(jobs);
        // Every work item ran exactly once, whatever the schedule.
        assert_eq!(gens, APPS.len(), "jobs={jobs}: gen item count");
        assert_eq!(
            sims,
            APPS.len() * CACHES.len() * SIZES.len(),
            "jobs={jobs}: sim item count"
        );
        assert_eq!(
            m.stats_json().to_string(),
            reference,
            "jobs={jobs}: stats view diverged from the serial reference"
        );
        assert_eq!(
            m.to_csv(),
            serial_reference().to_csv(),
            "jobs={jobs}: CSV diverged"
        );
    }
}

#[test]
fn manifest_json_carries_the_phase_timing_fields() {
    let (m, _, _) = study_manifest(2);
    let body = m.to_json().to_string();
    let doc = simcore::json::parse(&body).expect("manifest JSON parses");
    let timing = doc.get("timing").expect("timing block present");
    for key in [
        "items",
        "jobs",
        "cumulative_seconds",
        "wall_seconds",
        "speedup",
        "gen_wall_seconds",
        "sim_wall_seconds",
        "serial_estimate_seconds",
        "wall_speedup",
    ] {
        assert!(timing.get(key).is_some(), "timing missing {key}");
    }
    assert_eq!(
        timing.get("items").and_then(simcore::json::Json::as_u64),
        Some((APPS.len() * CACHES.len() * SIZES.len()) as u64),
        "timing.items counts simulation items only"
    );
    assert_eq!(
        timing.get("jobs").and_then(simcore::json::Json::as_u64),
        Some(2)
    );
    // The timing block is provenance, not results: the stats view
    // must not contain it.
    let stats = m.stats_json().to_string();
    assert!(!stats.contains("gen_wall_seconds"));
    assert!(!stats.contains("\"timing\""));
}

#[test]
fn serial_run_records_its_own_measured_baseline() {
    let (m, _, _) = study_manifest(1);
    let timing = m.timing.expect("timing recorded");
    // jobs=1 *is* the serial path, so the measured baseline is the
    // run's own wall and the honest speedup is exactly 1.
    assert_eq!(timing.serial_baseline, Some(timing.wall));
    assert!((timing.wall_speedup() - 1.0).abs() < 1e-9);
    let body = timing.to_json().to_string();
    assert!(body.contains("serial_baseline_seconds"));
}
