//! The fault-tolerance contract, end to end through the study and
//! manifest layers: injected panics are isolated and retried without
//! perturbing a single bit of any result; unrecovered failures are
//! *recorded* while every other cell's results survive; and delay
//! faults trip the soft timeout watchdog without killing the item.
//!
//! All fault selection is deterministic (`simcore::fault`), so these
//! tests are exact — no flakiness budget, no statistical assertions.

use cluster_study::manifest::Manifest;
use cluster_study::parallel::{RunPolicy, RunStatus};
use cluster_study::study::{CellOutcome, StudyRun, StudySpec};
use coherence::config::CacheSpec;
use simcore::fault::{FaultKind, FaultPlan, PANIC_PREFIX};
use splash::ProblemSize;
use std::time::Duration;

const APPS: [&str; 2] = ["lu", "fft"];
const CACHES: [CacheSpec; 2] = [CacheSpec::PerProcBytes(4096), CacheSpec::Infinite];
const SIZES: [u32; 3] = [1, 2, 8];
const PROCS: usize = 8;
const TOTAL_SIMS: usize = APPS.len() * CACHES.len() * SIZES.len();

fn spec() -> StudySpec<'static> {
    StudySpec::generate(&APPS, ProblemSize::Small, PROCS)
        .caches(CACHES)
        .cluster_sizes(&SIZES)
}

fn run_with_policy(jobs: usize, policy: RunPolicy) -> StudyRun {
    spec().jobs(jobs).policy(policy).run_with(|_| {})
}

/// Folds a complete run into a manifest exactly the way the bench
/// tools do (no wall-clock gauges, so the stats view is comparable
/// across runs).
fn manifest_of(run: &StudyRun, jobs: usize) -> Manifest {
    let mut m = Manifest::new("fault_tolerance", "small", PROCS, jobs);
    for (name, cap) in run.names.iter().zip(run.per_trace()) {
        for sweep in &cap.sweeps {
            m.record_sweep(name, sweep, None);
        }
    }
    m
}

/// A fault plan that spares both generators, injects into a strict
/// non-empty subset of the simulations, and (depth 2) defeats a
/// single retry. The seed scan is deterministic: the same seed is
/// found on every run.
fn partial_sim_plan() -> FaultPlan {
    for seed in 0..1000 {
        let mut plan = FaultPlan::new(0.4, seed);
        plan.depth = 2;
        if (0..APPS.len()).any(|i| plan.selects(&format!("gen:{i}"))) {
            continue;
        }
        let hit = (0..TOTAL_SIMS)
            .filter(|i| plan.selects(&format!("sim:{i}")))
            .count();
        if hit > 0 && hit < TOTAL_SIMS {
            return plan;
        }
    }
    unreachable!("no seed in 0..1000 spares the generators and hits a strict sim subset");
}

/// ISSUE acceptance shape: with faults injected everywhere and enough
/// retries, the study completes, every cell says `retried`, and the
/// manifest stats view is **byte-identical** to a fault-free serial
/// run — at both the serial and the threaded job counts.
#[test]
fn injected_faults_with_retries_reproduce_fault_free_bytes() {
    let reference = manifest_of(&run_with_policy(1, RunPolicy::none()), 1)
        .stats_json()
        .to_string();
    for jobs in [1usize, 3] {
        let policy = RunPolicy {
            retries: 1,
            fault: FaultPlan::new(1.0, 7),
            ..RunPolicy::none()
        };
        let run = run_with_policy(jobs, policy);
        assert!(run.is_complete(), "jobs={jobs}: all faults must recover");
        for cell in &run.cells {
            match &cell.outcome {
                CellOutcome::Done {
                    status, attempts, ..
                } => {
                    assert_eq!(*status, RunStatus::Retried, "jobs={jobs}");
                    assert_eq!(*attempts, 2, "jobs={jobs}: exactly one retry each");
                }
                CellOutcome::Failed { error, .. } => {
                    panic!("jobs={jobs}: unexpected failure: {error}")
                }
            }
        }
        assert_eq!(
            manifest_of(&run, jobs).stats_json().to_string(),
            reference,
            "jobs={jobs}: retried results diverged from the fault-free run"
        );
    }
}

/// When retries cannot outlast the fault depth, the failing cells are
/// recorded in `errors()` — tagged as injected — while every other
/// cell still carries a result bit-identical to the fault-free run.
/// The failure set itself is deterministic across job counts.
#[test]
fn unrecovered_faults_keep_all_other_results() {
    let plan = partial_sim_plan();
    let reference = run_with_policy(1, RunPolicy::none());
    let mut failure_sets = Vec::new();
    for jobs in [1usize, 3] {
        let policy = RunPolicy {
            retries: 1, // depth 2 defeats it
            fault: plan.clone(),
            ..RunPolicy::none()
        };
        let run = run_with_policy(jobs, policy);
        assert!(!run.is_complete(), "jobs={jobs}: failures must remain");
        let errors = run.errors();
        assert!(!errors.is_empty());
        for e in &errors {
            assert!(
                e.error.contains(PANIC_PREFIX),
                "jobs={jobs}: error should carry the injected payload: {}",
                e.error
            );
            assert_eq!(e.attempts, 2, "jobs={jobs}: retries were consumed");
        }
        let mut done = 0;
        for (cell, ref_cell) in run.cells.iter().zip(&reference.cells) {
            if let CellOutcome::Done { stats, .. } = &cell.outcome {
                done += 1;
                match &ref_cell.outcome {
                    CellOutcome::Done {
                        stats: ref_stats, ..
                    } => assert_eq!(
                        stats,
                        ref_stats,
                        "jobs={jobs}: surviving cell {}/{}/{} diverged",
                        run.names[cell.trace],
                        cell.cache.label(),
                        cell.cluster
                    ),
                    CellOutcome::Failed { .. } => unreachable!("reference run is fault-free"),
                }
            }
        }
        assert_eq!(
            done + errors.len(),
            TOTAL_SIMS,
            "jobs={jobs}: every cell is either done or reported"
        );
        failure_sets.push(
            errors
                .iter()
                .map(|e| (e.app.clone(), e.cache.clone(), e.cluster))
                .collect::<Vec<_>>(),
        );
        // But with retries >= depth the very same plan fully recovers.
        let recovered = run_with_policy(
            jobs,
            RunPolicy {
                retries: 2,
                fault: plan.clone(),
                ..RunPolicy::none()
            },
        );
        assert!(
            recovered.is_complete(),
            "jobs={jobs}: retries 2 beat depth 2"
        );
    }
    assert_eq!(
        failure_sets[0], failure_sets[1],
        "failure set must not depend on the job count"
    );
}

/// Delay faults plus a tiny soft timeout: every straggler is flagged
/// `timeout` but still runs to completion with bit-identical results
/// — the watchdog never kills an item.
#[test]
fn delay_faults_are_flagged_timeout_not_killed() {
    let reference = manifest_of(&run_with_policy(1, RunPolicy::none()), 1)
        .stats_json()
        .to_string();
    let policy = RunPolicy {
        retries: 0,
        timeout: Some(Duration::from_millis(1)),
        fault: FaultPlan {
            kind: FaultKind::Delay,
            delay: Duration::from_millis(5),
            ..FaultPlan::new(1.0, 0)
        },
    };
    let run = run_with_policy(2, policy);
    assert!(run.is_complete(), "delays are not failures");
    for cell in &run.cells {
        match &cell.outcome {
            CellOutcome::Done {
                status, attempts, ..
            } => {
                assert_eq!(*status, RunStatus::Timeout);
                assert_eq!(*attempts, 1, "no retry was needed");
            }
            CellOutcome::Failed { error, .. } => panic!("unexpected failure: {error}"),
        }
    }
    assert_eq!(
        manifest_of(&run, 2).stats_json().to_string(),
        reference,
        "timed-out items must still produce exact results"
    );
}
