//! Integration tests of the paper's qualitative claims — the
//! directional results the reproduction must preserve regardless of
//! calibration details.

use cluster_study::study::{run_config, ClusterSweep, StudySpec};
use coherence::config::CacheSpec;
use simcore::ops::{Trace, TraceBuilder};
use splash::SplashApp;

fn sweep_sizes(trace: &Trace, cache: CacheSpec, sizes: &[u32]) -> ClusterSweep {
    StudySpec::for_trace(trace)
        .caches([cache])
        .cluster_sizes(sizes)
        .run_sweep()
}

/// Ocean: "the nearest neighbor communication in this application is
/// being captured by the cluster cache" — clustering reduces load
/// stall roughly by half per doubling.
#[test]
fn ocean_clustering_halves_border_traffic() {
    let trace = splash::ocean::Ocean::small().generate(16);
    let sweep = sweep_sizes(&trace, CacheSpec::Infinite, &[1, 2, 4]);
    let load = |i: usize| sweep.runs[i].1.per_proc.iter().map(|b| b.load).sum::<u64>() as f64;
    assert!(
        load(1) < load(0) * 0.75,
        "2-way clustering cut load only {} -> {}",
        load(0),
        load(1)
    );
    assert!(load(2) < load(1));
}

/// FFT: all-to-all communication — clustering can only remove the
/// (C-1)/(P-1) fraction of transpose traffic, so the benefit is small.
#[test]
fn fft_all_to_all_limits_clustering() {
    let trace = splash::fft::Fft::small().generate(16);
    let sweep = sweep_sizes(&trace, CacheSpec::Infinite, &[1, 4]);
    let totals = sweep.normalized_totals();
    // 4-way clustering on 16 procs removes at most 3/15 = 20% of
    // communication; total time must not improve by more than ~12%.
    assert!(
        totals[1].1 > 88.0,
        "FFT improved too much from clustering: {totals:?}"
    );
    assert!(totals[1].1 <= 100.5, "clustering must not hurt here");
}

/// MP3D: high unstructured communication — clustering gives the largest
/// infinite-cache benefit of the suite's unstructured codes.
#[test]
fn mp3d_benefits_more_than_barnes() {
    let mp3d = splash::mp3d::Mp3d::small().generate(16);
    let barnes = splash::barnes::Barnes::small().generate(16);
    let gain = |t: &simcore::ops::Trace| {
        let s = sweep_sizes(t, CacheSpec::Infinite, &[1, 8]);
        100.0 - s.normalized_totals()[1].1
    };
    assert!(
        gain(&mp3d) > gain(&barnes),
        "mp3d gain {} should exceed barnes gain {}",
        gain(&mp3d),
        gain(&barnes)
    );
}

/// Section 5's central result: with caches smaller than the working
/// set, clustering helps far more than with infinite caches, because
/// the overlapped working sets suddenly fit.
#[test]
fn working_set_overlap_beats_infinite_cache_gain() {
    let trace = splash::raytrace::Raytrace::small().generate(16);
    let small = sweep_sizes(&trace, CacheSpec::PerProcBytes(2048), &[1, 8]);
    let inf = sweep_sizes(&trace, CacheSpec::Infinite, &[1, 8]);
    let small_gain = 100.0 - small.normalized_totals()[1].1;
    let inf_gain = 100.0 - inf.normalized_totals()[1].1;
    assert!(
        small_gain > inf_gain,
        "finite-cache gain {small_gain:.1} should exceed infinite-cache gain {inf_gain:.1}"
    );
}

/// Merge stalls grow with clustering: beyond the occasional
/// read-behind-own-write-miss merge a lone processor can suffer,
/// cluster mates merge on each other's outstanding fills (the paper's
/// prefetching effect showing up as merge time).
#[test]
fn merges_grow_with_clustering() {
    let trace = splash::radix::Radix::small().generate(16);
    let alone = run_config(&trace, 1, CacheSpec::Infinite);
    let grouped = run_config(&trace, 4, CacheSpec::Infinite);
    assert!(
        grouped.mem.merge_stalls > alone.mem.merge_stalls,
        "radix should merge on its shared histogram tree: {} vs {}",
        grouped.mem.merge_stalls,
        alone.mem.merge_stalls
    );
}

/// Prefetching: the producer-consumer hand-off becomes cluster-local.
#[test]
fn producer_consumer_handoff_captured_by_cluster() {
    let mut b = TraceBuilder::new(4);
    let blk = b.space_mut().alloc_owned(64 * 64, 0);
    for round in 0..10u64 {
        b.compute(0, 100);
        b.write_span(0, blk, 64 * 64);
        b.barrier_all();
        b.compute(1, 50 + round);
        b.read_span(1, blk, 64 * 64);
        b.barrier_all();
    }
    let t = b.finish();
    let split = run_config(&t, 1, CacheSpec::Infinite);
    let together = run_config(&t, 2, CacheSpec::Infinite);
    assert!(
        together.exec_time * 10 < split.exec_time * 9,
        "sharing a cluster should cut the hand-off substantially: {} vs {}",
        together.exec_time,
        split.exec_time
    );
}

/// The cost side (Section 6): applying the shared-cache factor makes
/// clustering strictly less attractive.
#[test]
fn shared_cache_costs_reduce_attractiveness() {
    let trace = splash::lu::Lu::small().generate(16);
    let sweep = sweep_sizes(&trace, CacheSpec::Infinite, &[1, 2, 4, 8]);
    let factors = cluster_study::measure_latency_factors(&trace);
    let costed = cluster_study::report::costed_relative_times(&sweep, &factors);
    let raw = sweep.normalized_totals();
    for ((_, c), (_, r)) in costed.iter().zip(&raw).skip(1) {
        assert!(*c > r / 100.0, "costed {c} should exceed raw {r}%");
    }
}

/// Limited associativity (the paper's future work): destructive
/// interference makes a 1-way shared cache worse than fully
/// associative at the same capacity.
#[test]
fn direct_mapped_shared_cache_interferes() {
    let trace = splash::ocean::Ocean::small().generate(16);
    let full = run_config(&trace, 4, CacheSpec::PerProcBytes(4096));
    let direct = run_config(
        &trace,
        4,
        CacheSpec::PerProcSetAssoc {
            bytes: 4096,
            ways: 1,
        },
    );
    assert!(
        direct.mem.read_misses > full.mem.read_misses,
        "direct-mapped should conflict-miss more: {} vs {}",
        direct.mem.read_misses,
        full.mem.read_misses
    );
}
