//! The suite's paper configurations must match the paper's Table 2.

use splash::{suite, ProblemSize};

#[test]
fn suite_has_nine_uniquely_named_apps() {
    let apps = suite(ProblemSize::Paper);
    assert_eq!(apps.len(), 9);
    let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name()).collect();
    assert_eq!(names.len(), 9);
}

#[test]
fn paper_sizes_match_table_2() {
    assert_eq!(splash::barnes::Barnes::paper().n_bodies, 8192);
    assert_eq!(splash::barnes::Barnes::paper().theta, 1.0);
    assert_eq!(splash::fmm::Fmm::paper().n_particles, 8192);
    assert_eq!(splash::fft::Fft::paper().n_points, 64 * 1024);
    assert_eq!(splash::lu::Lu::paper().n, 512);
    assert_eq!(splash::lu::Lu::paper().b, 16);
    assert_eq!(splash::mp3d::Mp3d::paper().n_particles, 50_000);
    // "130-by-130 grids" = 128 interior + border.
    assert_eq!(splash::ocean::Ocean::paper().n_interior, 128);
    assert_eq!(splash::ocean::Ocean::paper_small_grid().n_interior, 64);
    assert_eq!(splash::radix::Radix::paper().n_keys, 256 * 1024);
    assert_eq!(splash::radix::Radix::paper().radix, 256);
    // Balls4: depth-4 fractal = 7381 spheres.
    assert_eq!(
        splash::raytrace::balls_scene(splash::raytrace::Raytrace::paper().balls_depth).len(),
        7381
    );
    assert_eq!(splash::volrend::Volrend::paper().vol, 128);
}

#[test]
fn small_sizes_support_the_full_64_processor_machine() {
    // Every small configuration must still generate a valid trace for
    // the paper's 64-processor machine (CI sweeps rely on this).
    for app in suite(ProblemSize::Small) {
        let t = app.generate(64);
        t.validate()
            .unwrap_or_else(|e| panic!("{} small/64p: {e}", app.name()));
    }
}
