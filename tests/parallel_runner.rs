//! The parallel study runner must be a pure speedup: fanning the
//! experiment matrix out over threads — including the pipelined
//! two-phase executor with chunked stealing — may not change a single
//! bit of any result. These tests pin that contract for every
//! application in the small suite, comparing whole `RunStats` values
//! (exact integer cycle counts and counters) between the serial path
//! and the threaded path at several job counts and chunk sizes.

use cluster_study::parallel::{resolve_jobs, run_items, run_items_chunked, run_items_timed};
use cluster_study::study::{run_config, StudySpec, CLUSTER_SIZES};
use coherence::config::CacheSpec;
use simcore::ops::Trace;
use splash::{by_name, suite, ProblemSize};

fn small_traces(n_procs: usize) -> Vec<(String, Trace)> {
    suite(ProblemSize::Small)
        .iter()
        .map(|app| (app.name().to_string(), app.generate(n_procs)))
        .collect()
}

fn small_trace(name: &str, n_procs: usize) -> Trace {
    by_name(name, ProblemSize::Small).unwrap().generate(n_procs)
}

/// `--jobs 1` must be *literally* the serial path, and any higher job
/// count must reproduce it bit-identically, for every app.
#[test]
fn parallel_sweep_matches_serial_for_every_small_app() {
    for (name, trace) in small_traces(8) {
        // Serial reference, plain loop with no thread machinery.
        let serial: Vec<_> = CLUSTER_SIZES
            .iter()
            .map(|&c| (c, run_config(&trace, c, CacheSpec::PerProcBytes(4096))))
            .collect();
        for jobs in [1, 3] {
            let sweep = StudySpec::for_trace(&trace)
                .caches([CacheSpec::PerProcBytes(4096)])
                .cluster_sizes(&CLUSTER_SIZES)
                .jobs(jobs)
                .run_sweep();
            assert_eq!(
                sweep.runs, serial,
                "{name}: jobs={jobs} diverged from the serial sweep"
            );
        }
    }
}

/// The full capacity matrix (cache × cluster) must also be
/// order-stable and bit-identical under fan-out, at any steal-chunk
/// size.
#[test]
fn parallel_capacity_sweep_matches_serial() {
    let (name, trace) = ("lu", small_trace("lu", 8));
    let serial = StudySpec::for_trace(&trace).jobs(1).run_one();
    for chunk in [1, 3, 16] {
        let parallel = StudySpec::for_trace(&trace).jobs(4).chunk(chunk).run_one();
        assert_eq!(serial.sweeps.len(), parallel.sweeps.len());
        for (s, p) in serial.sweeps.iter().zip(&parallel.sweeps) {
            assert_eq!(s.cache, p.cache, "{name}: cache order changed");
            assert_eq!(
                s.runs, p.runs,
                "{name}: {:?} runs diverged at chunk={chunk}",
                s.cache
            );
        }
    }
}

/// The flat multi-app study fan-out must return per-app results in
/// input order, identical to running each app alone.
#[test]
fn study_fanout_preserves_app_order_and_results() {
    // Three apps exercise the flat pool; all nine is just slower.
    let named: Vec<(String, Trace)> = ["ocean", "mp3d", "volrend"]
        .iter()
        .map(|&n| (n.to_string(), small_trace(n, 8)))
        .collect();
    let traces: Vec<Trace> = named.iter().map(|(_, t)| t.clone()).collect();
    let study = StudySpec::new(&traces).jobs(3).run();
    assert_eq!(study.len(), traces.len());
    for ((name, trace), got) in named.iter().zip(&study) {
        let alone = StudySpec::for_trace(trace).jobs(1).run_one();
        for (s, p) in alone.sweeps.iter().zip(&got.sweeps) {
            assert_eq!(s.runs, p.runs, "{name}: study fan-out diverged");
        }
    }
}

/// The pipelined generated-source path (gen work items on the worker
/// pool) must agree with the pre-built-trace path exactly.
#[test]
fn generated_study_matches_prebuilt_traces() {
    let apps = ["lu", "fft"];
    let traces: Vec<Trace> = apps.iter().map(|&a| small_trace(a, 8)).collect();
    let prebuilt = StudySpec::new(&traces).jobs(1).run();
    for jobs in [1, 4] {
        let generated = StudySpec::generate(&apps, ProblemSize::Small, 8)
            .jobs(jobs)
            .run_with(|_| {});
        assert_eq!(generated.names, vec!["lu", "fft"]);
        for (t, (pre, gen)) in prebuilt.iter().zip(generated.per_trace()).enumerate() {
            for (s, p) in pre.sweeps.iter().zip(&gen.sweeps) {
                assert_eq!(
                    s.runs, p.runs,
                    "{}: pipelined gen at jobs={jobs} diverged",
                    apps[t]
                );
            }
        }
    }
}

/// run_items itself: input order, every item exactly once, jobs and
/// chunks beyond the item count are harmless.
#[test]
fn run_items_orders_and_covers() {
    let items: Vec<u64> = (0..37).collect();
    for jobs in [1, 3, 64] {
        let out = run_items(&items, jobs, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }
    for chunk in [1, 5, 100] {
        let out = run_items_chunked(&items, 3, chunk, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }
    let timed = run_items_timed(&items, 4, |&x| x + 1);
    assert_eq!(timed.len(), items.len());
    for (i, (v, wall)) in timed.iter().enumerate() {
        assert_eq!(*v, items[i] + 1);
        assert!(wall.as_nanos() > 0 || wall.is_zero());
    }
}

/// The job-count resolution chain: explicit beats env beats default,
/// and the result is always at least 1.
#[test]
fn resolve_jobs_prefers_explicit() {
    assert_eq!(resolve_jobs(Some(7)), 7);
    assert_eq!(resolve_jobs(Some(1)), 1);
    assert!(resolve_jobs(None) >= 1);
}
