//! End-to-end integration: every application runs through the full
//! stack (trace generation → coherence model → timing engine) and
//! produces structurally sound results.

use cluster_study::study::{run_config, StudySpec};
use coherence::config::CacheSpec;
use splash::{suite, ProblemSize, SplashApp};

#[test]
fn every_app_runs_end_to_end_at_16_procs() {
    for app in suite(ProblemSize::Small) {
        let trace = app.generate(16);
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid trace: {e}", app.name()));
        let rs = run_config(&trace, 4, CacheSpec::PerProcBytes(4096));
        assert!(rs.exec_time > 0, "{}: empty run", app.name());
        assert!(
            rs.mem.total_misses() > 0,
            "{}: no misses at all?",
            app.name()
        );
        for (p, bd) in rs.per_proc.iter().enumerate() {
            assert_eq!(
                bd.total(),
                rs.exec_time,
                "{} proc {p}: breakdown does not sum",
                app.name()
            );
        }
    }
}

#[test]
fn every_app_is_deterministic_end_to_end() {
    for app in suite(ProblemSize::Small) {
        let t1 = app.generate(8);
        let t2 = app.generate(8);
        assert_eq!(
            t1.per_proc,
            t2.per_proc,
            "{}: trace generation not deterministic",
            app.name()
        );
        let m1 = run_config(&t1, 2, CacheSpec::Infinite);
        let m2 = run_config(&t2, 2, CacheSpec::Infinite);
        assert_eq!(m1.exec_time, m2.exec_time, "{}", app.name());
        assert_eq!(m1.mem, m2.mem, "{}", app.name());
    }
}

#[test]
fn all_apps_touch_every_processor() {
    for app in suite(ProblemSize::Small) {
        let trace = app.generate(8);
        for (p, ops) in trace.per_proc.iter().enumerate() {
            assert!(
                ops.len() > 1,
                "{} proc {p}: only {} ops",
                app.name(),
                ops.len()
            );
        }
    }
}

#[test]
fn cluster_sweep_baseline_is_100_percent() {
    let trace = splash::lu::Lu::small().generate(16);
    let sweep = StudySpec::for_trace(&trace)
        .caches([CacheSpec::Infinite])
        .cluster_sizes(&[1, 2, 4, 8])
        .run_sweep();
    let totals = sweep.normalized_totals();
    assert_eq!(totals[0].0, 1);
    assert!((totals[0].1 - 100.0).abs() < 1e-9);
    // Default cluster sizes (no .cluster_sizes call) are the paper's.
    let default_sweep = StudySpec::for_trace(&trace)
        .caches([CacheSpec::Infinite])
        .run_sweep();
    assert_eq!(
        default_sweep.runs.len(),
        cluster_study::study::CLUSTER_SIZES.len()
    );
}

#[test]
fn umbrella_crate_reexports_whole_stack() {
    // The root crate is the public face; make sure the documented API
    // path works.
    use clustered_smp::{cluster_study as cs, coherence as ch, simcore as sc, splash as sp};
    let app = sp::fft::Fft::small();
    let trace = sp::SplashApp::generate(&app, 8);
    let rs = cs::study::run_config(&trace, 2, ch::config::CacheSpec::Infinite);
    assert!(rs.exec_time > 0);
    let _ = sc::addr::line_of(128);
    let _ = clustered_smp::tango::EngineOptions::default();
}
