//! Checkpoint-resume contract, end to end: a study killed after *any*
//! prefix of its journal appends can be resumed to a final manifest
//! whose deterministic stats view is byte-identical to an
//! uninterrupted run's — re-executing only the missing cells. Plus
//! property coverage of the journal text format itself, including a
//! planted-bug shrink test showing the harness pins a journal-parser
//! bug to its minimal counterexample.

use std::time::Duration;

use cluster_study::checkpoint::{
    parse_journal, recover_journal, render_journal, Journal, JournalEntry, JournalHeader,
};
use cluster_study::manifest::Manifest;
use cluster_study::parallel::RunStatus;
use cluster_study::study::{StudyRun, StudySpec};
use coherence::config::CacheSpec;
use simcore::propcheck::{self, halves_and_each, shrink_to_minimal, shrink_u64, Gen};
use simcore::stats::{Breakdown, MissStats, RunStats};
use simcore::{prop_ensure, prop_ensure_eq};
use splash::ProblemSize;

const APPS: [&str; 2] = ["lu", "fft"];
const CACHES: [CacheSpec; 2] = [CacheSpec::PerProcBytes(4096), CacheSpec::Infinite];
const SIZES: [u32; 3] = [1, 2, 8];
const PROCS: usize = 8;
const TOTAL_SIMS: usize = APPS.len() * CACHES.len() * SIZES.len();
const TOOL: &str = "checkpoint_resume";

fn spec() -> StudySpec<'static> {
    StudySpec::generate(&APPS, ProblemSize::Small, PROCS)
        .caches(CACHES)
        .cluster_sizes(&SIZES)
        .jobs(1)
}

fn manifest_of(run: &StudyRun) -> Manifest {
    let mut m = Manifest::new(TOOL, "small", PROCS, 1);
    for (name, cap) in run.names.iter().zip(run.per_trace()) {
        for sweep in &cap.sweeps {
            m.record_sweep(name, sweep, None);
        }
    }
    m
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("clustered-smp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The headline property: for **every** journal prefix length k —
/// i.e. a kill at any instant between appends — resuming re-executes
/// exactly the missing `TOTAL_SIMS - k` cells and reconstructs a
/// byte-identical stats view, and the journal ends up complete again.
#[test]
fn resume_from_any_journal_prefix_reconstructs_identical_manifest() {
    let dir = temp_dir("resume-prop");

    // The uninterrupted, journaled reference run.
    let full_path = dir.join("full.jsonl");
    let journal = Journal::create(&full_path, TOOL, "small", PROCS).unwrap();
    let run = spec().checkpoint(&journal).run_with(|_| {});
    let reference = manifest_of(&run).stats_json().to_string();
    let entries = journal.entries();
    assert_eq!(entries.len(), TOTAL_SIMS, "every sim is journaled");

    let header = JournalHeader {
        tool: TOOL.to_string(),
        size: "small".to_string(),
        procs: PROCS,
    };
    // 16 cases cover a meaningful sample of the 13 distinct prefixes
    // (shrinking walks toward the smallest failing prefix on a bug).
    propcheck::check_cases(
        16,
        "resume-from-any-journal-prefix",
        |g: &mut Gen| g.usize_in(0..TOTAL_SIMS + 1),
        |&k| {
            shrink_u64(k as u64)
                .into_iter()
                .map(|v| v as usize)
                .collect()
        },
        |&k| {
            let path = dir.join(format!("prefix_{k}.jsonl"));
            std::fs::write(&path, render_journal(&header, &entries[..k])).unwrap();
            let journal = Journal::resume(&path, TOOL, "small", PROCS)
                .map_err(|e| format!("prefix {k} must resume: {e}"))?;
            let prefill = journal.entries();
            prop_ensure_eq!(prefill.len(), k);
            let resumed = spec()
                .checkpoint(&journal)
                .prefill(prefill)
                .run_with(|_| {});
            prop_ensure!(resumed.is_complete(), "prefix {k}: resume incomplete");
            prop_ensure_eq!(resumed.resumed_cells(), k, "prefix {k}: restored cells");
            prop_ensure_eq!(
                resumed.timing.items,
                TOTAL_SIMS - k,
                "prefix {k}: only missing cells re-execute"
            );
            prop_ensure_eq!(
                manifest_of(&resumed).stats_json().to_string(),
                reference,
                "prefix {k}: stats view diverged from the uninterrupted run"
            );
            // The journal is whole again: every cell present once.
            let text = std::fs::read_to_string(&path).unwrap();
            let (_, after) = parse_journal(&text).map_err(|e| e.to_string())?;
            prop_ensure_eq!(after.len(), TOTAL_SIMS, "prefix {k}: journal completeness");
            let mut keys: Vec<_> = after.iter().map(JournalEntry::key).collect();
            keys.sort();
            keys.dedup();
            prop_ensure_eq!(
                after.len(),
                keys.len(),
                "prefix {k}: duplicate journal keys"
            );
            Ok(())
        },
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A resumed-from-complete-journal run re-executes *nothing* — not
/// even trace generation — and still reproduces the reference bytes.
#[test]
fn resume_from_complete_journal_executes_nothing() {
    let dir = temp_dir("resume-full");
    let path = dir.join("j.jsonl");
    let journal = Journal::create(&path, TOOL, "small", PROCS).unwrap();
    let run = spec().checkpoint(&journal).run_with(|_| {});
    let reference = manifest_of(&run).stats_json().to_string();

    let journal = Journal::resume(&path, TOOL, "small", PROCS).unwrap();
    let prefill = journal.entries();
    let resumed = spec()
        .checkpoint(&journal)
        .prefill(prefill)
        .run_with(|_| {});
    assert_eq!(resumed.resumed_cells(), TOTAL_SIMS);
    assert_eq!(resumed.timing.items, 0, "no simulation re-executed");
    assert_eq!(manifest_of(&resumed).stats_json().to_string(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

fn entry_with(app: &str, cache: &str, cluster: u32, salt: u64) -> JournalEntry {
    JournalEntry {
        app: app.to_string(),
        cache: cache.to_string(),
        cluster,
        stats: RunStats {
            per_proc: vec![Breakdown {
                cpu: salt,
                load: salt / 3,
                merge: 1,
                sync: 2,
            }],
            mem: MissStats {
                read_hits: salt,
                write_hits: 1,
                read_misses: 2,
                write_misses: 3,
                upgrade_misses: 4,
                merge_stalls: 5,
                by_latency: [salt, 1, 2, 3],
                invalidations: 6,
                evictions: 7,
                writebacks: 8,
                local_satisfied: 9,
                bus_transfers: 10,
                bus_invalidations: 11,
            },
            exec_time: salt + 1,
        },
        // Multiples of 1/4 s are exact in binary, so the f64
        // wall_seconds round-trips bit-exactly through the JSON text.
        wall: salt
            .is_multiple_of(2)
            .then(|| Duration::from_millis((salt % 64) * 250)),
        status: match salt % 3 {
            0 => RunStatus::Ok,
            1 => RunStatus::Retried,
            _ => RunStatus::Timeout,
        },
        attempts: (salt % 4) as u32 + 1,
        sampling: None,
    }
}

/// The real journal text format round-trips arbitrary entries
/// exactly, whatever the statuses, walls and counter values.
#[test]
fn prop_journal_text_roundtrips_arbitrary_entries() {
    let header = JournalHeader {
        tool: "prop".to_string(),
        size: "small".to_string(),
        procs: 8,
    };
    propcheck::check(
        "journal-text-roundtrip",
        |g: &mut Gen| {
            g.vec_of(0..20, |g| {
                let app = g.pick(&["lu", "fft", "ocean", "mp3d"]);
                let cache = g.pick(&["4k", "16k", "32k", "inf"]);
                let cluster = g.pick(&[1u32, 2, 4, 8]);
                entry_with(app, cache, cluster, g.u64_in(0..1_000_000))
            })
        },
        |v| simcore::propcheck::halves(v.as_slice()),
        |entries| {
            let text = render_journal(&header, entries);
            let (h, back) = parse_journal(&text).map_err(|e| e.to_string())?;
            prop_ensure_eq!(h, header);
            prop_ensure_eq!(&back, entries);
            Ok(())
        },
    );
}

/// Torn-tail property: the append+fsync journal can be killed
/// mid-`write(2)`, leaving any byte-prefix of the final line. For
/// arbitrary entries and an arbitrary cut point, `recover_journal`
/// returns exactly the clean prefix and `Journal::resume` heals the
/// file so strict parsing and appending both work again.
#[test]
fn prop_resume_recovers_any_torn_final_line() {
    let dir = temp_dir("torn-prop");
    let header = JournalHeader {
        tool: TOOL.to_string(),
        size: "small".to_string(),
        procs: PROCS,
    };
    propcheck::check(
        "torn-final-line-recovery",
        |g: &mut Gen| {
            let entries = g.vec_of(0..8, |g| {
                let app = g.pick(&["lu", "fft", "ocean"]);
                entry_with(app, "4k", g.pick(&[1u32, 4, 8]), g.u64_in(0..1000))
            });
            let cut = g.u64_in(0..200) as usize;
            (entries, cut)
        },
        |(entries, cut)| {
            let mut out: Vec<(Vec<JournalEntry>, usize)> = shrink_u64(*cut as u64)
                .into_iter()
                .map(|c| (entries.clone(), c as usize))
                .collect();
            out.extend(
                simcore::propcheck::halves(entries.as_slice())
                    .into_iter()
                    .map(|e| (e, *cut)),
            );
            out
        },
        |(entries, cut)| {
            let clean = render_journal(&header, entries);
            // Tear the next append at byte offset `cut`.
            let extra = entry_with("mp3d", "16k", 2, 999).to_json().to_string();
            let frag = &extra[..(*cut).min(extra.len().saturating_sub(1))];
            let torn_text = format!("{clean}{frag}");
            let torn_expected = !frag.trim().is_empty();
            let (h, back, dropped) = recover_journal(&torn_text).map_err(|e| e.to_string())?;
            prop_ensure_eq!(h, header);
            prop_ensure_eq!(&back, entries, "clean prefix must survive");
            prop_ensure_eq!(
                dropped.is_some(),
                torn_expected,
                "torn-line report (frag {frag:?})"
            );

            // Resume over the torn file heals it.
            let path = dir.join(format!("torn_{}_{cut}.jsonl", entries.len()));
            std::fs::write(&path, &torn_text).unwrap();
            let j = Journal::resume(&path, TOOL, "small", PROCS)
                .map_err(|e| format!("torn resume: {e}"))?;
            prop_ensure_eq!(j.entries().len(), entries.len());
            j.append(entry_with("water", "inf", 8, 7));
            let text = std::fs::read_to_string(&path).unwrap();
            let (_, healed) = parse_journal(&text).map_err(|e| e.to_string())?;
            prop_ensure_eq!(
                healed.len(),
                entries.len() + 1,
                "healed journal strict-parses with the new append"
            );
            Ok(())
        },
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Planted-bug shrink test: a journal parser that silently drops
/// every `cluster >= 8` entry (a plausible off-by-one against the
/// paper's largest cluster size). The property harness must (a) find
/// the bug and (b) shrink each counterexample to the minimal shape —
/// a single entry sitting exactly on the `cluster == 8` boundary.
#[test]
fn planted_journal_parser_bug_shrinks_to_boundary_cluster() {
    let header = JournalHeader {
        tool: "planted".to_string(),
        size: "small".to_string(),
        procs: 8,
    };
    let buggy_parse = |text: &str| {
        parse_journal(text).map(|(h, entries)| {
            (
                h,
                entries
                    .into_iter()
                    .filter(|e| e.cluster < 8) // the planted bug
                    .collect::<Vec<_>>(),
            )
        })
    };
    // Case = the cluster column alone; everything else is fixed, so
    // the minimal counterexample is fully determined by it.
    let prop = |clusters: &Vec<u64>| -> Result<(), String> {
        let entries: Vec<JournalEntry> = clusters
            .iter()
            .enumerate()
            .map(|(i, &c)| entry_with("lu", "4k", c as u32, i as u64))
            .collect();
        let text = render_journal(&header, &entries);
        let (_, back) = buggy_parse(&text).map_err(|e| e.to_string())?;
        prop_ensure_eq!(back.len(), entries.len(), "parser dropped entries");
        Ok(())
    };
    let gen = |g: &mut Gen| g.vec_of(0..12, |g| g.u64_in(1..33));
    let mut found = 0;
    for seed in 0..40u64 {
        let case = gen(&mut Gen::from_seed(seed));
        if prop(&case).is_ok() {
            continue;
        }
        found += 1;
        let (minimal, _, _) = shrink_to_minimal(
            case.clone(),
            "planted".into(),
            |v| halves_and_each(v, |&x| shrink_u64(x)),
            prop,
            10_000,
        );
        assert_eq!(
            minimal,
            vec![8],
            "seed {seed}: case {case:?} did not shrink to the cluster-8 boundary"
        );
    }
    assert!(found >= 10, "generator produced too few failing cases");
}
