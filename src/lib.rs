//! Umbrella crate re-exporting the full clustered-SMP reproduction stack.
//!
//! See the individual crates for details:
//! - [`simcore`]: caches, address space, trace ops, statistics.
//! - [`coherence`]: the clustered directory-based memory system (Fig. 1).
//! - [`tango`]: the event-driven multiprocessor timing engine.
//! - [`splash`]: the nine SPLASH-style applications (Table 2).
//! - [`cluster_study`]: the clustering study itself (Sections 4-6).
pub use cluster_study;
pub use coherence;
pub use simcore;
pub use splash;
pub use tango;
