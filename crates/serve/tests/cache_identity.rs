//! The serving layer's load-bearing property: a cell served from the
//! content-addressed cache is *byte-identical* to a fresh
//! `cluster_study` simulation of the same inputs — across arbitrary
//! small job specs, across a server restart, and with the second
//! submission marked `cache_hit`.
//!
//! Plus the planted-bug shrink test the issue demands: a deliberately
//! weakened key derivation ([`KeyMode::Truncated`]) makes distinct
//! cells collide; the property harness must catch the collision and
//! shrink it to a minimal pair of specs, and the collision must be
//! *observable* — the weak store serves the wrong cell's statistics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use cluster_serve::store::{cell_key, KeyMode, ResultStore, StoreConfig};
use cluster_serve::{serve_connection, ServeOptions, ServeState};
use cluster_study::checkpoint::JournalEntry;
use cluster_study::manifest::{RunRecord, ServedBy};
use cluster_study::parallel::RunStatus;
use cluster_study::run_config;
use coherence::config::CacheSpec;
use simcore::propcheck::{self, drop_each, halves_and_each, shrink_to_minimal, shrink_u64, Gen};
use simcore::{prop_ensure, prop_ensure_eq, Json};
use splash::ProblemSize;

const APPS: [&str; 3] = ["lu", "fft", "radix"];
const CACHE_LABELS: [&str; 3] = ["inf", "4k", "16k"];

static CASE_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let n = CASE_SEQ.fetch_add(1, Ordering::SeqCst);
    let d = std::env::temp_dir().join(format!("serve-identity-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn drive(state: &ServeState, input: &str) -> Vec<Json> {
    let mut r = std::io::Cursor::new(input.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    serve_connection(state, &mut r, &mut out).expect("in-memory transport");
    String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(|l| simcore::json::parse(l).expect("response parses"))
        .collect()
}

/// One randomly drawn job spec, kept small enough that a property
/// case is a handful of sub-second simulations.
#[derive(Debug, Clone, PartialEq)]
struct SpecCase {
    app: usize,
    procs: usize,
    caches: Vec<usize>,
    clusters: Vec<u32>,
}

impl SpecCase {
    fn request(&self) -> String {
        let caches: Vec<String> = self
            .caches
            .iter()
            .map(|&i| format!("\"{}\"", CACHE_LABELS[i]))
            .collect();
        let clusters: Vec<String> = self.clusters.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"op\":\"run\",\"spec\":{{\"app\":\"{}\",\"procs\":{},\"caches\":[{}],\"clusters\":[{}]}}}}\n",
            APPS[self.app],
            self.procs,
            caches.join(","),
            clusters.join(",")
        )
    }
}

fn gen_case(g: &mut Gen) -> SpecCase {
    let mut caches = g.vec_of(1..3, |g| g.usize_in(0..CACHE_LABELS.len()));
    caches.sort_unstable();
    caches.dedup();
    let procs = g.pick(&[2usize, 4, 8]);
    // Cluster sizes must tile the machine (the protocol enforces it).
    let divisors: Vec<u32> = [1u32, 2, 4, 8]
        .into_iter()
        .filter(|&c| procs.is_multiple_of(c as usize))
        .collect();
    let mut clusters = g.vec_of(1..3, |g| g.pick(&divisors));
    clusters.sort_unstable();
    clusters.dedup();
    SpecCase {
        app: g.usize_in(0..APPS.len()),
        procs,
        caches,
        clusters,
    }
}

fn shrink_case(c: &SpecCase) -> Vec<SpecCase> {
    let mut out = Vec::new();
    if c.app > 0 {
        out.push(SpecCase {
            app: 0,
            ..c.clone()
        });
    }
    if c.procs > 2
        && c.clusters
            .iter()
            .all(|&cl| (c.procs / 2).is_multiple_of(cl as usize))
    {
        out.push(SpecCase {
            procs: c.procs / 2,
            ..c.clone()
        });
    }
    for caches in drop_each(&c.caches) {
        if !caches.is_empty() {
            out.push(SpecCase {
                caches,
                ..c.clone()
            });
        }
    }
    for clusters in drop_each(&c.clusters) {
        if !clusters.is_empty() {
            out.push(SpecCase {
                clusters,
                ..c.clone()
            });
        }
    }
    out
}

/// The stats view a *direct* `cluster_study` run would put in the
/// manifest for this cell — the reference the serve path must match
/// byte for byte.
fn direct_stats(app: &str, trace: &simcore::ops::Trace, cache: CacheSpec, cluster: u32) -> String {
    let stats = run_config(trace, cluster, cache);
    let rec = RunRecord {
        app: app.to_string(),
        cache: cache.label(),
        cluster,
        stats,
        wall: None,
        status: RunStatus::Ok,
        attempts: 1,
        served_by: ServedBy::Sim,
        sampling: None,
    };
    rec.to_json(false).to_string()
}

#[test]
fn served_cells_match_direct_study_runs_byte_for_byte() {
    propcheck::check_cases(
        6,
        "serve/cache-identity",
        gen_case,
        shrink_case,
        |case: &SpecCase| {
            let dir = tmp_dir("prop");
            let app = APPS[case.app];
            let opts = ServeOptions {
                jobs: 2,
                max_line: 1 << 16,
                queue: 2,
                op_budget: 256,
            };
            let request = case.request();

            // First submission: everything simulates fresh.
            let st = ServeState::new(ResultStore::open(&dir).map_err(|e| e.to_string())?, opts);
            let first = drive(&st, &request);
            prop_ensure_eq!(first.len(), 1);
            prop_ensure_eq!(
                first[0].get("ok").and_then(Json::as_bool),
                Some(true),
                "first run response: {}",
                first[0]
            );
            let trace = splash::by_name(app, ProblemSize::Small)
                .ok_or("app registry")?
                .generate(case.procs);
            let cells = first[0]
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("cells")?;
            prop_ensure_eq!(cells.len(), case.caches.len() * case.clusters.len());
            let mut i = 0;
            for &ci in &case.caches {
                for &cluster in &case.clusters {
                    let cell = &cells[i];
                    i += 1;
                    let cache =
                        cluster_serve::protocol::parse_cache(CACHE_LABELS[ci]).ok_or("cache")?;
                    prop_ensure_eq!(
                        cell.get("cache_hit").and_then(Json::as_bool),
                        Some(false),
                        "fresh store must simulate"
                    );
                    let served = cell.get("stats").ok_or("stats")?.to_string();
                    let direct = direct_stats(app, &trace, cache, cluster);
                    prop_ensure_eq!(
                        served,
                        direct,
                        "served stats must be byte-identical to a direct run \
                         ({app} {} cluster {cluster})",
                        CACHE_LABELS[ci]
                    );
                }
            }

            // Second submission on the same server: pure cache hits,
            // byte-identical payloads.
            let second = drive(&st, &request);
            let again = second[0]
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("cells")?;
            for (a, b) in cells.iter().zip(again) {
                prop_ensure_eq!(b.get("cache_hit").and_then(Json::as_bool), Some(true));
                prop_ensure_eq!(b.get("served_by").and_then(Json::as_str), Some("cache"));
                prop_ensure_eq!(
                    a.get("stats").map(Json::to_string),
                    b.get("stats").map(Json::to_string),
                    "cache hit must not perturb a single byte"
                );
            }

            // Restarted server over the same directory: the disk copy,
            // not the memory map, is what serves.
            let st2 = ServeState::new(ResultStore::open(&dir).map_err(|e| e.to_string())?, opts);
            let third = drive(&st2, &request);
            let reopened = third[0]
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("cells")?;
            for (a, b) in cells.iter().zip(reopened) {
                prop_ensure_eq!(b.get("cache_hit").and_then(Json::as_bool), Some(true));
                prop_ensure_eq!(
                    a.get("stats").map(Json::to_string),
                    b.get("stats").map(Json::to_string),
                    "restart must not perturb a single byte"
                );
            }

            // Eviction step: reopen under a byte budget small enough
            // to force evictions at open, then re-drive. Evicted cells
            // miss and recompute, survivors still hit — and either way
            // the payload is bit-identical to the original run.
            let full_bytes = st2.store().counters().bytes;
            let budget = (full_bytes / 2).max(1);
            drop(st2);
            let st3 = ServeState::new(
                ResultStore::open_with_config(
                    &dir,
                    StoreConfig {
                        byte_budget: Some(budget),
                        ..StoreConfig::default()
                    },
                )
                .map_err(|e| e.to_string())?,
                opts,
            );
            let evicted = st3.store().counters().evictions;
            prop_ensure!(
                evicted > 0,
                "budget {budget} of {full_bytes} bytes must evict something"
            );
            let fourth = drive(&st3, &request);
            let after = fourth[0]
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("cells")?;
            let mut resimulated = 0u64;
            for (a, b) in cells.iter().zip(after) {
                if b.get("cache_hit").and_then(Json::as_bool) == Some(false) {
                    resimulated += 1;
                }
                prop_ensure_eq!(
                    a.get("stats").map(Json::to_string),
                    b.get("stats").map(Json::to_string),
                    "eviction must be loss-correct: a recomputed cell is \
                     bit-identical to the evicted one"
                );
            }
            prop_ensure!(
                resimulated >= evicted,
                "every cell evicted at open ({evicted}) must resimulate \
                 (saw {resimulated})"
            );
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}

#[test]
fn full_keys_never_collide_across_the_study_matrix() {
    let mut seen = std::collections::HashMap::new();
    for app in APPS {
        for size in ["small", "paper"] {
            for procs in [2usize, 4, 8, 64] {
                for cache in ["inf", "4k", "16k", "32k"] {
                    for cluster in [1u32, 2, 4, 8] {
                        let k = cell_key(app, size, procs, cache, cluster);
                        if let Some(prev) =
                            seen.insert(k.clone(), (app, size, procs, cache, cluster))
                        {
                            panic!(
                                "key collision: {prev:?} vs {:?} on {k}",
                                (app, size, procs, cache, cluster)
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Entry whose stats don't matter — only which *cell* it claims to be.
fn marker_entry(cluster: u32) -> JournalEntry {
    let trace = splash::by_name("lu", ProblemSize::Small)
        .expect("registry")
        .generate(2);
    JournalEntry {
        app: "lu".to_string(),
        cache: "inf".to_string(),
        cluster,
        stats: run_config(&trace, 1, CacheSpec::Infinite),
        wall: None,
        status: RunStatus::Ok,
        attempts: 1,
        sampling: None,
    }
}

fn weak_key(cluster: u32) -> String {
    cell_key("lu", "small", 2, "inf", cluster)[..1].to_string()
}

/// The planted bug: with keys truncated to one hex digit, distinct
/// cells collide. The harness must (a) detect the collision as a
/// property failure and (b) shrink every counterexample down to a
/// minimal pair of specs that still collide.
#[test]
fn planted_key_collision_is_caught_and_shrunk_to_a_minimal_spec_pair() {
    // Property: distinct cells get distinct keys. True for the real
    // (full) key, false by construction for the truncated one.
    let prop = |clusters: &Vec<u64>| -> Result<(), String> {
        let mut distinct = clusters.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for (i, &a) in distinct.iter().enumerate() {
            for &b in &distinct[i + 1..] {
                prop_ensure!(
                    weak_key(a as u32) != weak_key(b as u32),
                    "cells cluster={a} and cluster={b} share a store key"
                );
            }
        }
        Ok(())
    };
    let gen = |g: &mut Gen| g.vec_of(8..17, |g| g.u64_in(1..65));
    let mut found = 0;
    for seed in 0..40u64 {
        let case = gen(&mut Gen::from_seed(seed));
        let Err(first_err) = prop(&case) else {
            continue;
        };
        found += 1;
        let (minimal, err, _) = shrink_to_minimal(
            case.clone(),
            first_err,
            |v| {
                let mut cands = halves_and_each(v, |&x| shrink_u64(x));
                cands.extend(drop_each(v));
                cands
            },
            prop,
            10_000,
        );
        // Minimal counterexample: exactly two distinct specs whose
        // truncated keys collide while their full keys do not.
        let mut d = minimal.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(
            d.len(),
            2,
            "seed {seed}: {case:?} shrank to {minimal:?} ({err}), not a minimal pair"
        );
        let (a, b) = (d[0] as u32, d[1] as u32);
        assert_eq!(weak_key(a), weak_key(b), "the pair still collides");
        assert_ne!(
            cell_key("lu", "small", 2, "inf", a),
            cell_key("lu", "small", 2, "inf", b),
            "full keys must distinguish what the planted bug conflates"
        );
    }
    assert!(
        found >= 10,
        "generator found only {found} colliding cases out of 40 seeds"
    );
}

/// The collision is not an abstract property violation: a store built
/// on truncated keys observably serves the *wrong cell's* results,
/// while the full-key store keeps the cells apart.
#[test]
fn weak_store_serves_wrong_cell_full_store_does_not() {
    // Find the smallest colliding cluster pair under the weak key.
    let mut by_key: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut pair = None;
    for c in 1..=64u32 {
        if let Some(&prev) = by_key.get(&weak_key(c)) {
            pair = Some((prev, c));
            break;
        }
        by_key.insert(weak_key(c), c);
    }
    let (a, b) = pair.expect("1-hex-digit keys collide within 64 cells");

    let weak_dir = tmp_dir("weak");
    let weak = ResultStore::open_with_mode(&weak_dir, KeyMode::Truncated(1)).expect("open");
    let ka = weak.key("lu", "small", 2, "inf", a);
    let kb = weak.key("lu", "small", 2, "inf", b);
    assert_eq!(ka, kb, "the planted bug conflates the two cells");
    let (got_a, hit_a) = weak
        .serve_cell(&ka, "small", 2, || marker_entry(a))
        .expect("serve");
    assert!(!hit_a);
    assert_eq!(got_a.cluster, a);
    let (got_b, hit_b) = weak
        .serve_cell(&kb, "small", 2, || marker_entry(b))
        .expect("serve");
    assert!(hit_b, "the colliding cell is (wrongly) a cache hit");
    assert_eq!(
        got_b.cluster, a,
        "the weak store hands cell {b} the results of cell {a}"
    );

    let full_dir = tmp_dir("full");
    let full = ResultStore::open(&full_dir).expect("open");
    let ka = full.key("lu", "small", 2, "inf", a);
    let kb = full.key("lu", "small", 2, "inf", b);
    assert_ne!(ka, kb);
    let (_, hit_a) = full
        .serve_cell(&ka, "small", 2, || marker_entry(a))
        .expect("serve");
    let (got_b, hit_b) = full
        .serve_cell(&kb, "small", 2, || marker_entry(b))
        .expect("serve");
    assert!(!hit_a && !hit_b, "distinct cells both simulate");
    assert_eq!(got_b.cluster, b, "each cell gets its own results");
    std::fs::remove_dir_all(&weak_dir).ok();
    std::fs::remove_dir_all(&full_dir).ok();
}

/// Sampled and full runs of the same cell must never alias in the
/// content-addressed store: the canonical key document names the full
/// sampling configuration, so every parameter of the spec — mode,
/// rate, warmup, interval, seed — lands in the key, while full-trace
/// keys stay byte-identical to their pre-sampling form.
#[test]
fn sampled_and_full_cells_never_share_a_key() {
    use cluster_serve::store::{cell_key_doc_sampled, cell_key_sampled};
    use simcore::sample::{SampleMode, SampleSpec};

    let cell = ("lu", "small", 8usize, "4k", 2u32);
    let (app, size, procs, cache, cluster) = cell;
    let full = cell_key(app, size, procs, cache, cluster);
    let spec = SampleSpec::new(SampleMode::Periodic);
    let label = spec.key_label();
    let sampled = cell_key_sampled(app, size, procs, cache, cluster, Some(&label));
    assert_ne!(full, sampled, "sampled cell aliases the full-trace cell");

    // The canonical document carries the label verbatim for sampled
    // runs and omits the field entirely for full runs (so every key
    // minted before sampling existed is still the same key).
    let doc = cell_key_doc_sampled(app, size, procs, cache, cluster, Some(&label));
    assert_eq!(
        doc.get("sampling").and_then(Json::as_str),
        Some(label.as_str()),
        "sampling parameters must be in the canonical key document"
    );
    let full_doc = cell_key_doc_sampled(app, size, procs, cache, cluster, None);
    assert!(
        full_doc.get("sampling").is_none(),
        "full-trace key documents must not grow a sampling field"
    );

    // Every spec parameter is key-relevant: varying each one alone
    // yields a distinct key; repeating the same spec does not.
    let variants = [
        SampleSpec::new(SampleMode::Reservoir),
        SampleSpec::new(SampleMode::PhaseDetect),
        SampleSpec { rate: 0.5, ..spec },
        SampleSpec {
            warmup_ops: 1024,
            ..spec
        },
        SampleSpec {
            interval_ops: 512,
            ..spec
        },
        SampleSpec {
            seed: spec.seed + 1,
            ..spec
        },
    ];
    for v in variants {
        let vl = v.key_label();
        assert_ne!(vl, label, "variant spec must have a distinct label");
        let k = cell_key_sampled(app, size, procs, cache, cluster, Some(&vl));
        assert_ne!(k, sampled, "spec {vl} aliases spec {label}");
        assert_ne!(k, full, "spec {vl} aliases the full-trace key");
    }
    assert_eq!(
        cell_key_sampled(app, size, procs, cache, cluster, Some(&label)),
        sampled,
        "identical specs must reproduce the identical key"
    );
}
