//! Multi-client soak of the nonblocking poll loop, and the crash
//! drill over TCP: a server killed mid-cursor restarts over a valid
//! store and finishes the stream from the surviving prefix.
//!
//! The soak's contract is the acceptance bar for the event loop:
//! ≥ 32 concurrent connections, mixed v1 and v2 sessions, and *zero*
//! dropped or interleaved response lines — every client validates
//! every response id, every cursor stream arrives strictly in
//! sequence, and every matrix comes back complete.

use std::io::BufRead;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use cluster_serve::{
    scan_store_dir, serve_poll, ResultStore, ServeClient, ServeOptions, ServeState, KILL_EXIT_CODE,
};
use simcore::Json;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("serve-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SPEC: &str = "{\"app\":\"lu\",\"procs\":4,\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}";

fn spec_json() -> Json {
    simcore::json::parse(SPEC).expect("spec literal")
}

/// Boots a poll-loop server on an ephemeral port; returns the state,
/// the address, and the join handle (resolved by a `shutdown` op).
fn start_poll_server(
    dir: &std::path::Path,
    opts: ServeOptions,
) -> (
    Arc<ServeState>,
    String,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = ResultStore::open(dir).expect("open store");
    let state = Arc::new(ServeState::new(store, opts));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let st = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve_poll(&st, listener));
    (state, addr, handle)
}

#[test]
fn thirty_two_mixed_clients_soak_the_poll_loop() {
    let dir = tmp_dir("mixed");
    let (state, addr, handle) = start_poll_server(
        &dir,
        ServeOptions {
            jobs: 1,
            max_line: 1 << 20,
            queue: 64,
            op_budget: 256,
        },
    );

    // Prewarm the 4-cell matrix so the soak measures the serving
    // path, not 32× redundant simulations (single-flight would
    // collapse them anyway, but warm keeps the test fast).
    let mut warm = ServeClient::connect(&addr).expect("connect");
    let resp = warm.run(spec_json()).expect("prewarm run");
    assert_eq!(
        resp.get("cells").and_then(Json::as_arr).map(|c| c.len()),
        Some(4)
    );

    const CLIENTS: usize = 32;
    let addr_ref: &str = &addr;
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                scope.spawn(move || -> Result<(), String> {
                    let e = |what: &str, err: cluster_serve::ClientError| {
                        format!("client {i} {what}: {err}")
                    };
                    let mut c = ServeClient::connect(addr_ref).map_err(|x| e("connect", x))?;
                    c.ping().map_err(|x| e("ping", x))?;
                    if i % 2 == 0 {
                        // v1 session: plain run, full matrix, all hits.
                        let resp = c.run(spec_json()).map_err(|x| e("run", x))?;
                        let cells = resp
                            .get("cells")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("client {i}: run without cells"))?;
                        if cells.len() != 4 {
                            return Err(format!("client {i}: {} cells", cells.len()));
                        }
                        if resp.get("cache_hits").and_then(Json::as_u64) != Some(4) {
                            return Err(format!("client {i}: warm run not all hits: {resp}"));
                        }
                    } else {
                        // v2 session: handshake, streamed cursor (strict
                        // sequence), then a batch.
                        c.hello_v2().map_err(|x| e("hello", x))?;
                        let mut seqs = Vec::new();
                        let summary = c
                            .cursor(spec_json(), |seq, cell| {
                                seqs.push(seq);
                                assert!(
                                    cell.get("journal").is_some(),
                                    "cursor cells carry journal"
                                );
                            })
                            .map_err(|x| e("cursor", x))?;
                        if seqs != [0, 1, 2, 3] {
                            return Err(format!("client {i}: out-of-order stream {seqs:?}"));
                        }
                        if summary.cells != 4 || summary.failed != 0 {
                            return Err(format!("client {i}: bad summary {summary:?}"));
                        }
                        let resp = c
                            .batch(vec![spec_json(), spec_json()])
                            .map_err(|x| e("batch", x))?;
                        let jobs = resp
                            .get("jobs")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("client {i}: batch without jobs"))?;
                        if jobs.len() != 2 {
                            return Err(format!("client {i}: {} jobs", jobs.len()));
                        }
                    }
                    c.ping().map_err(|x| e("final ping", x))?;
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread").err())
            .collect()
    });
    assert!(errors.is_empty(), "soak failures:\n{}", errors.join("\n"));

    // Only the prewarm simulated; everything else was served warm.
    assert_eq!(state.stats().sims_run(), 4);

    let mut closer = ServeClient::connect(&addr).expect("connect");
    closer.shutdown().expect("shutdown");
    handle
        .join()
        .expect("event loop thread")
        .expect("event loop exits cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns the real binary on an ephemeral TCP port, returning the
/// child, the address scraped from its stderr banner, and the stderr
/// reader — which the caller must keep alive, or the child's next
/// diagnostic write lands on a closed pipe.
fn spawn_listen_binary(
    dir: &std::path::Path,
    kill_after: Option<usize>,
) -> (
    std::process::Child,
    String,
    std::io::BufReader<std::process::ChildStderr>,
) {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_cluster_serve"));
    cmd.arg("--store")
        .arg(dir)
        .arg("--jobs")
        .arg("1")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
    match kill_after {
        Some(n) => cmd.env("SERVE_KILL_AFTER_RECORDS", n.to_string()),
        None => cmd.env_remove("SERVE_KILL_AFTER_RECORDS"),
    };
    let mut child = cmd.spawn().expect("spawn cluster_serve");
    let stderr = child.stderr.take().expect("stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("addr in banner")
        .to_string();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner: {banner:?}"
    );
    (child, addr, reader)
}

#[test]
fn killed_mid_cursor_server_restarts_and_finishes_the_stream() {
    let dir = tmp_dir("kill-cursor");

    // Phase 1: the kill hook fires on the 2nd store append — mid-way
    // through a 4-cell cursor stream.
    let (mut child, addr, _stderr) = spawn_listen_binary(&dir, Some(2));
    let mut c = ServeClient::connect(&addr).expect("connect");
    c.hello_v2().expect("hello");
    let mut streamed = 0u64;
    let result = c.cursor(spec_json(), |_, _| streamed += 1);
    assert!(
        result.is_err(),
        "cursor must fail when the server dies mid-stream: {result:?}"
    );
    assert!(streamed < 4, "the stream was cut short, not completed");
    let status = child.wait().expect("wait");
    assert_eq!(status.code(), Some(KILL_EXIT_CODE), "crash hook exit");

    // The store survived as a valid 2-entry prefix.
    let (entries, torn) = scan_store_dir(&dir).expect("store strict-parses");
    assert!(!torn);
    assert_eq!(entries.len(), 2, "exactly the appends before the kill");

    // Phase 2: restart over the same store. The cursor now completes:
    // the surviving prefix serves as cache hits, the lost cells
    // resimulate, and nothing failed.
    let (mut child, addr, _stderr) = spawn_listen_binary(&dir, None);
    let mut c = ServeClient::connect(&addr).expect("reconnect");
    c.hello_v2().expect("hello");
    let mut seqs = Vec::new();
    let summary = c
        .cursor(spec_json(), |seq, _| seqs.push(seq))
        .expect("cursor completes after restart");
    assert_eq!(seqs, [0, 1, 2, 3], "in-order, gapless stream");
    assert_eq!(
        (
            summary.cells,
            summary.cache_hits,
            summary.sims,
            summary.failed
        ),
        (4, 2, 2, 0),
        "prefix hits + resimulated remainder"
    );
    c.shutdown().expect("shutdown");
    // The event loop flushes the ack before exiting; give it a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert_eq!(status.code(), Some(0), "orderly shutdown");
                break;
            }
            None if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            None => {
                let _ = child.kill();
                panic!("server did not exit after shutdown ack");
            }
        }
    }
    let (entries, torn) = scan_store_dir(&dir).expect("final store");
    assert!(!torn);
    assert_eq!(entries.len(), 4, "full matrix recorded after restart");
    std::fs::remove_dir_all(&dir).ok();
}
