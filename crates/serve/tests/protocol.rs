//! Protocol conformance suite for `cluster_serve`.
//!
//! Drives [`cluster_serve::serve_connection`] in-process over byte
//! buffers: every response-schema behavior documented in DESIGN.md
//! §12 is pinned here, and `cluster_check lint`'s schema-sync rule
//! pairs this file against `crates/serve/src/protocol.rs`, so a
//! response key the server can emit that no test reads (or vice
//! versa) fails the lint.
//!
//! The invariant under test throughout: a hostile or confused client
//! gets a *typed error response* — parse, protocol, oversized,
//! queue_full, unknown_app — and the serve loop keeps answering
//! later requests. Nothing a client writes may kill the loop.

use std::io::Cursor;
use std::path::PathBuf;

use cluster_serve::{serve_connection, ResultStore, ServeOptions, ServeState};
use simcore::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("serve-protocol-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn state(tag: &str, opts: ServeOptions) -> (ServeState, PathBuf) {
    let dir = tmp_dir(tag);
    let store = ResultStore::open(&dir).expect("open store");
    (ServeState::new(store, opts), dir)
}

fn small_opts() -> ServeOptions {
    ServeOptions {
        jobs: 2,
        max_line: 4096,
        queue: 2,
        op_budget: 256,
    }
}

/// Feeds `input` through one connection and returns the parsed
/// response lines plus the shutdown flag.
fn drive(state: &ServeState, input: &str) -> (Vec<Json>, bool) {
    let mut r = Cursor::new(input.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    let shutdown = serve_connection(state, &mut r, &mut out).expect("in-memory transport");
    let text = String::from_utf8(out).expect("responses are UTF-8");
    let responses = text
        .lines()
        .map(|l| simcore::json::parse(l).expect("every response line parses"))
        .collect();
    (responses, shutdown)
}

fn error_kind(resp: &Json) -> &str {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error responses carry error.kind")
}

fn error_detail(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("detail"))
        .and_then(Json::as_str)
        .expect("error responses carry error.detail")
}

fn assert_ok(resp: &Json, op: &str) {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("op").and_then(Json::as_str), Some(op));
}

#[test]
fn malformed_json_yields_parse_error_and_loop_survives() {
    let (st, dir) = state("parse", small_opts());
    let (resps, _) = drive(&st, "{this is not json\n{\"op\":\"ping\",\"id\":7}\n");
    assert_eq!(resps.len(), 2);
    assert_eq!(error_kind(&resps[0]), "parse");
    assert!(!error_detail(&resps[0]).is_empty());
    assert_ok(&resps[1], "ping");
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(7));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_line_is_answered_not_dropped() {
    let (st, dir) = state("torn", small_opts());
    // No trailing newline: a client died mid-write. The fragment is
    // still answered (as a parse error), not silently discarded.
    let (resps, shutdown) = drive(&st, "{\"op\":\"ping\",\"id\":1}\n{\"op\":\"pi");
    assert_eq!(resps.len(), 2);
    assert_ok(&resps[0], "ping");
    assert_eq!(error_kind(&resps[1]), "parse");
    assert!(!shutdown);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_fields_and_bad_values_are_protocol_errors() {
    let (st, dir) = state("strict", small_opts());
    let cases: &[(&str, &str)] = &[
        // unknown top-level field
        ("{\"op\":\"ping\",\"extra\":1}", "extra"),
        // unknown spec field
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"bogus\":2}}",
            "bogus",
        ),
        // wrong id type
        ("{\"op\":\"ping\",\"id\":\"seven\"}", "id"),
        // run without spec
        ("{\"op\":\"run\"}", "spec"),
        // spec without app
        ("{\"op\":\"run\",\"spec\":{}}", "app"),
        // unknown size label
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"size\":\"huge\"}}",
            "huge",
        ),
        // unknown cache label
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"9q\"]}}",
            "9q",
        ),
        // zero procs
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":0}}",
            "procs",
        ),
        // zero cluster size
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"clusters\":[0]}}",
            "cluster",
        ),
        // cluster size that does not tile the machine — unvalidated,
        // this would panic a simulation worker and kill the server
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":4,\"clusters\":[8]}}",
            "divide",
        ),
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":8,\"clusters\":[3]}}",
            "divide",
        ),
        // spec on a spec-less op
        ("{\"op\":\"ping\",\"spec\":{}}", "spec"),
        // non-object request
        ("[1,2,3]", "object"),
    ];
    for (line, needle) in cases {
        let (resps, _) = drive(&st, &format!("{line}\n"));
        assert_eq!(resps.len(), 1, "one response for {line}");
        assert_eq!(error_kind(&resps[0]), "protocol", "kind for {line}");
        assert!(
            error_detail(&resps[0]).contains(needle),
            "detail for {line} should mention {needle}: {}",
            error_detail(&resps[0])
        );
    }
    // An oversized list is also a protocol error, not a panic.
    let many: Vec<String> = (1..=17).map(|c| c.to_string()).collect();
    let line = format!(
        "{{\"op\":\"run\",\"spec\":{{\"app\":\"lu\",\"clusters\":[{}]}}}}",
        many.join(",")
    );
    let (resps, _) = drive(&st, &format!("{line}\n"));
    assert_eq!(error_kind(&resps[0]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_line_is_drained_and_later_requests_survive() {
    let (st, dir) = state("oversized", small_opts());
    let pad = "x".repeat(8192); // 2× the 4096 cap
    let input = format!("{{\"op\":\"ping\",\"pad\":\"{pad}\"}}\n{{\"op\":\"ping\",\"id\":2}}\n");
    let (resps, _) = drive(&st, &input);
    assert_eq!(resps.len(), 2);
    assert_eq!(error_kind(&resps[0]), "oversized");
    assert!(error_detail(&resps[0]).contains("cap"));
    assert_ok(&resps[1], "ping");
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_responses_echo_the_request_id_when_recoverable() {
    let (st, dir) = state("echo", small_opts());
    let (resps, _) = drive(&st, "{\"op\":\"dance\",\"id\":9}\n");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(9));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_app_is_a_typed_error() {
    let (st, dir) = state("unknown-app", small_opts());
    let (resps, _) = drive(
        &st,
        "{\"op\":\"run\",\"id\":3,\"spec\":{\"app\":\"no-such-app\"}}\n",
    );
    assert_eq!(error_kind(&resps[0]), "unknown_app");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_answers_queue_full() {
    // A zero-width queue rejects every run up front: the gate itself
    // is what's under test, single-threaded transport or not.
    let (st, dir) = state(
        "queue",
        ServeOptions {
            queue: 0,
            ..small_opts()
        },
    );
    let (resps, _) = drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n{\"op\":\"ping\",\"id\":5}\n",
    );
    assert_eq!(error_kind(&resps[0]), "queue_full");
    assert_ok(&resps[1], "ping");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_stream_answers_in_order_and_run_cells_are_complete() {
    let (st, dir) = state("pipeline", small_opts());
    let input = "{\"op\":\"ping\",\"id\":1}\n\n   \n{\"op\":\"run\",\"id\":2,\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}}\n{\"op\":\"stats\",\"id\":3}\n";
    let (resps, shutdown) = drive(&st, input);
    assert!(!shutdown);
    // Blank lines are skipped; three real requests, three responses,
    // ids echoed in order.
    assert_eq!(resps.len(), 3);
    for (i, id) in [1u64, 2, 3].iter().enumerate() {
        assert_eq!(resps[i].get("id").and_then(Json::as_u64), Some(*id));
    }
    assert_ok(&resps[0], "ping");
    assert_ok(&resps[1], "run");
    assert_eq!(resps[1].get("app").and_then(Json::as_str), Some("lu"));
    assert_eq!(resps[1].get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(resps[1].get("sims").and_then(Json::as_u64), Some(4));
    let cells = resps[1]
        .get("cells")
        .and_then(Json::as_arr)
        .expect("run responses carry cells");
    assert_eq!(cells.len(), 4);
    // caches × clusters in request order.
    let want = [("inf", 1u64), ("inf", 2), ("4k", 1), ("4k", 2)];
    for (cell, (cache, cluster)) in cells.iter().zip(want) {
        assert_eq!(cell.get("cache").and_then(Json::as_str), Some(cache));
        assert_eq!(cell.get("cluster").and_then(Json::as_u64), Some(cluster));
        assert_eq!(cell.get("cache_hit").and_then(Json::as_bool), Some(false));
        assert_eq!(cell.get("served_by").and_then(Json::as_str), Some("sim"));
        let key = cell.get("key").and_then(Json::as_str).expect("cell key");
        assert_eq!(key.len(), 32, "content address is 128-bit hex");
        let stats = cell.get("stats").expect("cell stats");
        assert!(stats.get("app").is_some(), "stats is the manifest view");
    }
    // All four cells share one generated trace.
    assert_ok(&resps[2], "stats");
    assert_eq!(resps[2].get("trace_gens").and_then(Json::as_u64), Some(1));
    assert_eq!(resps[2].get("sims_run").and_then(Json::as_u64), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resubmission_is_served_from_cache_byte_identically() {
    let (st, dir) = state("cache-hit", small_opts());
    let run = "{\"op\":\"run\",\"id\":1,\"spec\":{\"app\":\"fft\",\"caches\":[\"inf\"],\"clusters\":[1,4]}}\n";
    let (first, _) = drive(&st, run);
    let (second, _) = drive(&st, run);
    assert_eq!(second[0].get("cache_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(second[0].get("sims").and_then(Json::as_u64), Some(0));
    let a = first[0].get("cells").and_then(Json::as_arr).expect("cells");
    let b = second[0]
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells");
    for (fresh, cached) in a.iter().zip(b) {
        assert_eq!(cached.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(
            cached.get("served_by").and_then(Json::as_str),
            Some("cache")
        );
        assert_eq!(
            fresh.get("key").and_then(Json::as_str),
            cached.get("key").and_then(Json::as_str)
        );
        // The load-bearing guarantee: the stats view of a cache hit is
        // byte-identical to the fresh simulation's.
        assert_eq!(
            fresh.get("stats").map(Json::to_string),
            cached.get("stats").map(Json::to_string)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_response_carries_every_counter() {
    let (st, dir) = state("stats", small_opts());
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    let (resps, _) = drive(&st, "{\"op\":\"stats\",\"id\":42}\n");
    let s = &resps[0];
    assert_ok(s, "stats");
    for key in [
        "requests",
        "cells_served",
        "cache_hits",
        "sims_run",
        "trace_hits",
        "trace_gens",
        "store_entries",
    ] {
        assert!(
            s.get(key).and_then(Json::as_u64).is_some(),
            "stats response must carry `{key}`"
        );
    }
    assert_eq!(s.get("requests").and_then(Json::as_u64), Some(3));
    assert_eq!(s.get("cells_served").and_then(Json::as_u64), Some(2));
    assert_eq!(s.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("sims_run").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("trace_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("trace_gens").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("store_entries").and_then(Json::as_u64), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_op_is_a_typed_error_not_shutdown() {
    let (st, dir) = state("unknown-op", small_opts());
    // PR 6's parser had a catch-all `_ => Op::Shutdown`: a typo'd op
    // silently closed the connection. It is now a typed error and the
    // loop keeps serving.
    let (resps, shutdown) = drive(
        &st,
        "{\"op\":\"dance\",\"id\":4}\n{\"op\":\"ping\",\"id\":5}\n",
    );
    assert!(!shutdown, "a typo'd op must not shut the server down");
    assert!(!st.shutdown_requested());
    assert_eq!(resps.len(), 2);
    assert_eq!(error_kind(&resps[0]), "unknown_op");
    assert!(error_detail(&resps[0]).contains("dance"));
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(4));
    assert_ok(&resps[1], "ping");
    std::fs::remove_dir_all(&dir).ok();
}

const HELLO_V2: &str = "{\"op\":\"hello\",\"id\":1,\"schema\":\"clustered-smp/serve/v2\"}\n";

#[test]
fn hello_negotiates_v2_and_rejects_unknown_schemas() {
    let (st, dir) = state("hello", small_opts());
    let (resps, _) = drive(&st, HELLO_V2);
    assert_ok(&resps[0], "hello");
    assert_eq!(
        resps[0].get("schema").and_then(Json::as_str),
        Some("clustered-smp/serve/v2")
    );
    // Re-negotiating down to v1 also works (and is the default).
    let (resps, _) = drive(
        &st,
        "{\"op\":\"hello\",\"schema\":\"clustered-smp/serve/v1\"}\n",
    );
    assert_eq!(
        resps[0].get("schema").and_then(Json::as_str),
        Some("clustered-smp/serve/v1")
    );
    // An unknown schema is a protocol error naming the alternatives,
    // and the session stays alive at its previous version.
    let (resps, shutdown) = drive(
        &st,
        "{\"op\":\"hello\",\"schema\":\"clustered-smp/serve/v9\"}\n{\"op\":\"ping\",\"id\":2}\n",
    );
    assert!(!shutdown);
    assert_eq!(error_kind(&resps[0]), "protocol");
    assert!(error_detail(&resps[0]).contains("v9"));
    assert!(error_detail(&resps[0]).contains("clustered-smp/serve/v2"));
    assert_ok(&resps[1], "ping");
    // A hello without a schema is also a protocol error.
    let (resps, _) = drive(&st, "{\"op\":\"hello\"}\n");
    assert_eq!(error_kind(&resps[0]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_and_cursor_are_gated_behind_the_v2_handshake() {
    let (st, dir) = state("v2-gate", small_opts());
    let batch = "{\"op\":\"batch\",\"id\":1,\"specs\":[{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}]}\n";
    let cursor = "{\"op\":\"cursor\",\"id\":2,\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n";
    for req in [batch, cursor] {
        let (resps, shutdown) = drive(&st, req);
        assert!(!shutdown);
        assert_eq!(resps.len(), 1, "gated op answers exactly one line");
        assert_eq!(error_kind(&resps[0]), "protocol");
        assert!(
            error_detail(&resps[0]).contains("hello"),
            "the error must point at the handshake: {}",
            error_detail(&resps[0])
        );
    }
    // Nothing ran: the store is untouched.
    assert_eq!(st.store().counters().entries, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_batch_serves_every_spec_in_one_response_line() {
    let (st, dir) = state("batch", small_opts());
    let input = format!(
        "{HELLO_V2}{}",
        "{\"op\":\"batch\",\"id\":2,\"specs\":[\
         {\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1,2]},\
         {\"app\":\"fft\",\"caches\":[\"inf\"],\"clusters\":[1]}]}\n"
    );
    let (resps, _) = drive(&st, &input);
    assert_eq!(resps.len(), 2, "hello ack + one batch line");
    assert_ok(&resps[1], "batch");
    let jobs = resps[1]
        .get("jobs")
        .and_then(Json::as_arr)
        .expect("batch responses carry jobs");
    assert_eq!(jobs.len(), 2, "one job per spec, in request order");
    assert_eq!(jobs[0].get("app").and_then(Json::as_str), Some("lu"));
    assert_eq!(jobs[1].get("app").and_then(Json::as_str), Some("fft"));
    assert_eq!(
        jobs[0].get("cells").and_then(Json::as_arr).map(|c| c.len()),
        Some(2)
    );
    assert_eq!(jobs[0].get("sims").and_then(Json::as_u64), Some(2));
    assert_eq!(jobs[0].get("cache_hits").and_then(Json::as_u64), Some(0));
    // An empty specs list is rejected at parse time.
    let (resps, _) = drive(
        &st,
        &format!("{HELLO_V2}{}", "{\"op\":\"batch\",\"specs\":[]}\n"),
    );
    assert_eq!(error_kind(&resps[1]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_cursor_streams_the_same_cells_as_a_v1_run() {
    let (st, dir) = state("cursor", small_opts());
    let spec = "{\"app\":\"lu\",\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}";
    // Reference: one v1 run line (fresh simulations).
    let (v1, _) = drive(
        &st,
        &format!("{{\"op\":\"run\",\"id\":1,\"spec\":{spec}}}\n"),
    );
    let run_cells = v1[0].get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(run_cells.len(), 4);

    // v2 cursor over the same spec: start line, one line per cell in
    // request order, trailer. (Cache hits now — byte-identity of the
    // stats view is exactly the property under test.)
    let (v2, _) = drive(
        &st,
        &format!("{HELLO_V2}{{\"op\":\"cursor\",\"id\":2,\"spec\":{spec}}}\n"),
    );
    assert_eq!(v2.len(), 1 + 1 + 4 + 1, "hello + start + 4 cells + done");
    let start = &v2[1];
    assert_ok(start, "cursor");
    assert_eq!(start.get("app").and_then(Json::as_str), Some("lu"));
    assert_eq!(start.get("total").and_then(Json::as_u64), Some(4));
    for (i, (line, run_cell)) in v2[2..6].iter().zip(run_cells).enumerate() {
        assert_ok(line, "cell");
        assert_eq!(line.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(line.get("seq").and_then(Json::as_u64), Some(i as u64));
        let cell = line.get("cell").expect("cell lines carry the cell");
        // Same cell the v1 run produced, byte-identical stats.
        assert_eq!(
            cell.get("key").and_then(Json::as_str),
            run_cell.get("key").and_then(Json::as_str)
        );
        assert_eq!(
            cell.get("cache").and_then(Json::as_str),
            run_cell.get("cache").and_then(Json::as_str)
        );
        assert_eq!(
            cell.get("cluster").and_then(Json::as_u64),
            run_cell.get("cluster").and_then(Json::as_u64)
        );
        assert_eq!(
            cell.get("stats").map(Json::to_string),
            run_cell.get("stats").map(Json::to_string),
            "cursor cells must be byte-identical to v1 run cells"
        );
        assert_eq!(cell.get("cache_hit").and_then(Json::as_bool), Some(true));
        // Cursor cells carry the full journal document so clients can
        // prefill their own stores; v1 run cells do not.
        let journal = cell.get("journal").expect("cursor cells carry journal");
        assert_eq!(journal.get("app").and_then(Json::as_str), Some("lu"));
        assert!(run_cell.get("journal").is_none());
    }
    let done = &v2[6];
    assert_ok(done, "cursor_done");
    assert_eq!(done.get("cells").and_then(Json::as_u64), Some(4));
    assert_eq!(done.get("cache_hits").and_then(Json::as_u64), Some(4));
    assert_eq!(done.get("sims").and_then(Json::as_u64), Some(0));
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_gains_store_counters_only_after_the_v2_handshake() {
    let (st, dir) = state("stats-v2", small_opts());
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    // v1 session: byte-compatible with PR 6 — no extended counters.
    let (v1, _) = drive(&st, "{\"op\":\"stats\"}\n");
    assert!(v1[0].get("store_bytes").is_none());
    assert!(v1[0].get("shards").is_none());
    assert!(v1[0].get("shed").is_none());
    // v2 session: the same counters plus store shape, eviction, and
    // the degradation ledger (shed requests, injected faults).
    let (v2, _) = drive(
        &st,
        &format!("{HELLO_V2}{}", "{\"op\":\"stats\",\"id\":2}\n"),
    );
    let s = &v2[1];
    assert_ok(s, "stats");
    for key in [
        "store_bytes",
        "evictions",
        "compactions",
        "shards",
        "shed",
        "net_faults",
        "disk_faults",
        "append_failures",
    ] {
        assert!(
            s.get(key).and_then(Json::as_u64).is_some(),
            "v2 stats must carry `{key}`"
        );
    }
    assert_eq!(s.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("net_faults").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("disk_faults").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("append_failures").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("store_entries").and_then(Json::as_u64), Some(1));
    assert!(s.get("store_bytes").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert_eq!(s.get("evictions").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("compactions").and_then(Json::as_u64), Some(0));
    assert_eq!(s.get("shards").and_then(Json::as_u64), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

/// The deprecated free-function writers must stay byte-identical to
/// the [`Response`] enum that replaced them, for as long as they live.
#[test]
#[allow(deprecated)]
fn deprecated_writers_match_the_response_enum_byte_for_byte() {
    use cluster_serve::protocol::{
        error_response, pong, run_response, shutdown_ack, stats_response, CellResult,
        ProtocolError, ServeStats,
    };
    use cluster_serve::{ErrorKind, ProtoVersion, Response};

    assert_eq!(
        pong(Some(7)).to_string(),
        Response::Pong { id: Some(7) }.to_json().to_string()
    );
    assert_eq!(
        shutdown_ack(None).to_string(),
        Response::ShutdownAck { id: None }.to_json().to_string()
    );
    let err = ProtocolError::new(ErrorKind::Protocol, "nope");
    assert_eq!(
        error_response(Some(1), &err).to_string(),
        Response::Error {
            id: Some(1),
            err: err.clone()
        }
        .to_json()
        .to_string()
    );
    let cells = vec![
        CellResult::new("inf", 2, "deadbeef", Json::obj().with("app", "lu")),
        CellResult::new("4k", 4, "feedface", Json::obj().with("app", "lu")).served_from_cache(),
    ];
    assert_eq!(
        run_response(Some(3), "lu", &cells).to_string(),
        Response::Run {
            id: Some(3),
            app: "lu".to_string(),
            cells
        }
        .to_json()
        .to_string()
    );
    let stats = ServeStats::new(5, 4, 1, 3).traces(2, 2).store(4, 999, 4);
    assert_eq!(
        stats_response(Some(9), &stats).to_string(),
        Response::Stats {
            id: Some(9),
            stats,
            version: ProtoVersion::V1
        }
        .to_json()
        .to_string()
    );
}

#[test]
fn health_reports_load_and_degradation_counters() {
    let (st, dir) = state("health", small_opts());
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    let (resps, _) = drive(&st, "{\"op\":\"health\",\"id\":6}\n");
    let h = &resps[0];
    assert_ok(h, "health");
    assert_eq!(h.get("id").and_then(Json::as_u64), Some(6));
    for key in [
        "active",
        "queue",
        "shed",
        "net_faults",
        "disk_faults",
        "append_failures",
        "store_entries",
        "store_bytes",
    ] {
        assert!(
            h.get(key).and_then(Json::as_u64).is_some(),
            "health response must carry `{key}`"
        );
    }
    assert_eq!(h.get("active").and_then(Json::as_u64), Some(0));
    assert_eq!(h.get("queue").and_then(Json::as_u64), Some(2));
    assert_eq!(h.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(h.get("store_entries").and_then(Json::as_u64), Some(1));
    // Strictness holds for the new op too: stray fields are rejected.
    let (resps, _) = drive(&st, "{\"op\":\"health\",\"spec\":{}}\n");
    assert_eq!(error_kind(&resps[0]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_full_backoff_hint_is_v2_only() {
    let (st, dir) = state(
        "queue-hint",
        ServeOptions {
            queue: 0,
            ..small_opts()
        },
    );
    let run = "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n";
    // v1 stays byte-compatible with PR 6: no hint field.
    let (v1, _) = drive(&st, run);
    assert_eq!(error_kind(&v1[0]), "queue_full");
    assert!(v1[0]
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .is_none());
    // v2 sessions get the additive `retry_after_ms` hint.
    let (v2, _) = drive(&st, &format!("{HELLO_V2}{run}"));
    assert_eq!(error_kind(&v2[1]), "queue_full");
    let hint = v2[1]
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_u64);
    assert!(hint.is_some_and(|ms| ms > 0), "v2 queue_full hints backoff");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cursor_from_resumes_the_stream_and_reports_skipped() {
    let (st, dir) = state("cursor-resume", small_opts());
    let spec = "{\"app\":\"lu\",\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}";
    // Warm the 4-cell matrix so the resumed segment is all hits.
    drive(&st, &format!("{{\"op\":\"run\",\"spec\":{spec}}}\n"));

    // A resumed cursor: skip the first two cells, stream the rest.
    let (resps, _) = drive(
        &st,
        &format!("{HELLO_V2}{{\"op\":\"cursor\",\"id\":2,\"spec\":{spec},\"from\":2}}\n"),
    );
    assert_eq!(resps.len(), 1 + 1 + 2 + 1, "hello + start + 2 cells + done");
    let start = &resps[1];
    assert_ok(start, "cursor");
    assert_eq!(
        start.get("total").and_then(Json::as_u64),
        Some(4),
        "the start line still promises the full matrix"
    );
    for (line, want_seq) in resps[2..4].iter().zip([2u64, 3]) {
        assert_ok(line, "cell");
        assert_eq!(line.get("seq").and_then(Json::as_u64), Some(want_seq));
    }
    let done = &resps[4];
    assert_ok(done, "cursor_done");
    assert_eq!(done.get("cells").and_then(Json::as_u64), Some(4));
    assert_eq!(done.get("skipped").and_then(Json::as_u64), Some(2));
    assert_eq!(done.get("cache_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(done.get("sims").and_then(Json::as_u64), Some(0));
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(0));

    // `from: 0` keeps the PR 8 wire shape: no `skipped` key at all.
    let (resps, _) = drive(
        &st,
        &format!("{HELLO_V2}{{\"op\":\"cursor\",\"id\":3,\"spec\":{spec},\"from\":0}}\n"),
    );
    let done = resps.last().expect("trailer");
    assert_ok(done, "cursor_done");
    assert!(done.get("skipped").is_none(), "from 0 is byte-identical");

    // A cursor past the end of the matrix is a typed protocol error.
    let (resps, _) = drive(
        &st,
        &format!("{HELLO_V2}{{\"op\":\"cursor\",\"id\":4,\"spec\":{spec},\"from\":9}}\n"),
    );
    assert_eq!(error_kind(&resps[1]), "protocol");
    assert!(error_detail(&resps[1]).contains("from"));
    // `from` is a v2/cursor-only field.
    let (resps, _) = drive(&st, "{\"op\":\"ping\",\"from\":1}\n");
    assert_eq!(error_kind(&resps[0]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_acknowledges_then_closes_the_stream() {
    let (st, dir) = state("shutdown", small_opts());
    let (resps, shutdown) = drive(&st, "{\"op\":\"shutdown\",\"id\":8}\n{\"op\":\"ping\"}\n");
    assert!(shutdown, "serve_connection reports the orderly shutdown");
    assert!(st.shutdown_requested());
    assert_eq!(resps.len(), 1, "nothing is answered after the ack");
    assert_ok(&resps[0], "shutdown");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(8));
    std::fs::remove_dir_all(&dir).ok();
}
