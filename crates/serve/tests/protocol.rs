//! Protocol conformance suite for `cluster_serve`.
//!
//! Drives [`cluster_serve::serve_connection`] in-process over byte
//! buffers: every response-schema behavior documented in DESIGN.md
//! §12 is pinned here, and `cluster_check lint`'s schema-sync rule
//! pairs this file against `crates/serve/src/protocol.rs`, so a
//! response key the server can emit that no test reads (or vice
//! versa) fails the lint.
//!
//! The invariant under test throughout: a hostile or confused client
//! gets a *typed error response* — parse, protocol, oversized,
//! queue_full, unknown_app — and the serve loop keeps answering
//! later requests. Nothing a client writes may kill the loop.

use std::io::Cursor;
use std::path::PathBuf;

use cluster_serve::{serve_connection, ResultStore, ServeOptions, ServeState};
use simcore::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("serve-protocol-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn state(tag: &str, opts: ServeOptions) -> (ServeState, PathBuf) {
    let dir = tmp_dir(tag);
    let store = ResultStore::open(&dir).expect("open store");
    (ServeState::new(store, opts), dir)
}

fn small_opts() -> ServeOptions {
    ServeOptions {
        jobs: 2,
        max_line: 4096,
        queue: 2,
    }
}

/// Feeds `input` through one connection and returns the parsed
/// response lines plus the shutdown flag.
fn drive(state: &ServeState, input: &str) -> (Vec<Json>, bool) {
    let mut r = Cursor::new(input.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    let shutdown = serve_connection(state, &mut r, &mut out).expect("in-memory transport");
    let text = String::from_utf8(out).expect("responses are UTF-8");
    let responses = text
        .lines()
        .map(|l| simcore::json::parse(l).expect("every response line parses"))
        .collect();
    (responses, shutdown)
}

fn error_kind(resp: &Json) -> &str {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error responses carry error.kind")
}

fn error_detail(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("detail"))
        .and_then(Json::as_str)
        .expect("error responses carry error.detail")
}

fn assert_ok(resp: &Json, op: &str) {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("op").and_then(Json::as_str), Some(op));
}

#[test]
fn malformed_json_yields_parse_error_and_loop_survives() {
    let (st, dir) = state("parse", small_opts());
    let (resps, _) = drive(&st, "{this is not json\n{\"op\":\"ping\",\"id\":7}\n");
    assert_eq!(resps.len(), 2);
    assert_eq!(error_kind(&resps[0]), "parse");
    assert!(!error_detail(&resps[0]).is_empty());
    assert_ok(&resps[1], "ping");
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(7));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_line_is_answered_not_dropped() {
    let (st, dir) = state("torn", small_opts());
    // No trailing newline: a client died mid-write. The fragment is
    // still answered (as a parse error), not silently discarded.
    let (resps, shutdown) = drive(&st, "{\"op\":\"ping\",\"id\":1}\n{\"op\":\"pi");
    assert_eq!(resps.len(), 2);
    assert_ok(&resps[0], "ping");
    assert_eq!(error_kind(&resps[1]), "parse");
    assert!(!shutdown);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_fields_and_bad_values_are_protocol_errors() {
    let (st, dir) = state("strict", small_opts());
    let cases: &[(&str, &str)] = &[
        // unknown top-level field
        ("{\"op\":\"ping\",\"extra\":1}", "extra"),
        // unknown spec field
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"bogus\":2}}",
            "bogus",
        ),
        // wrong id type
        ("{\"op\":\"ping\",\"id\":\"seven\"}", "id"),
        // unknown op
        ("{\"op\":\"dance\"}", "dance"),
        // run without spec
        ("{\"op\":\"run\"}", "spec"),
        // spec without app
        ("{\"op\":\"run\",\"spec\":{}}", "app"),
        // unknown size label
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"size\":\"huge\"}}",
            "huge",
        ),
        // unknown cache label
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"9q\"]}}",
            "9q",
        ),
        // zero procs
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":0}}",
            "procs",
        ),
        // zero cluster size
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"clusters\":[0]}}",
            "cluster",
        ),
        // cluster size that does not tile the machine — unvalidated,
        // this would panic a simulation worker and kill the server
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":4,\"clusters\":[8]}}",
            "divide",
        ),
        (
            "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":8,\"clusters\":[3]}}",
            "divide",
        ),
        // spec on a spec-less op
        ("{\"op\":\"ping\",\"spec\":{}}", "spec"),
        // non-object request
        ("[1,2,3]", "object"),
    ];
    for (line, needle) in cases {
        let (resps, _) = drive(&st, &format!("{line}\n"));
        assert_eq!(resps.len(), 1, "one response for {line}");
        assert_eq!(error_kind(&resps[0]), "protocol", "kind for {line}");
        assert!(
            error_detail(&resps[0]).contains(needle),
            "detail for {line} should mention {needle}: {}",
            error_detail(&resps[0])
        );
    }
    // An oversized list is also a protocol error, not a panic.
    let many: Vec<String> = (1..=17).map(|c| c.to_string()).collect();
    let line = format!(
        "{{\"op\":\"run\",\"spec\":{{\"app\":\"lu\",\"clusters\":[{}]}}}}",
        many.join(",")
    );
    let (resps, _) = drive(&st, &format!("{line}\n"));
    assert_eq!(error_kind(&resps[0]), "protocol");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_line_is_drained_and_later_requests_survive() {
    let (st, dir) = state("oversized", small_opts());
    let pad = "x".repeat(8192); // 2× the 4096 cap
    let input = format!("{{\"op\":\"ping\",\"pad\":\"{pad}\"}}\n{{\"op\":\"ping\",\"id\":2}}\n");
    let (resps, _) = drive(&st, &input);
    assert_eq!(resps.len(), 2);
    assert_eq!(error_kind(&resps[0]), "oversized");
    assert!(error_detail(&resps[0]).contains("cap"));
    assert_ok(&resps[1], "ping");
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_responses_echo_the_request_id_when_recoverable() {
    let (st, dir) = state("echo", small_opts());
    let (resps, _) = drive(&st, "{\"op\":\"dance\",\"id\":9}\n");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(9));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_app_is_a_typed_error() {
    let (st, dir) = state("unknown-app", small_opts());
    let (resps, _) = drive(
        &st,
        "{\"op\":\"run\",\"id\":3,\"spec\":{\"app\":\"no-such-app\"}}\n",
    );
    assert_eq!(error_kind(&resps[0]), "unknown_app");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_answers_queue_full() {
    // A zero-width queue rejects every run up front: the gate itself
    // is what's under test, single-threaded transport or not.
    let (st, dir) = state(
        "queue",
        ServeOptions {
            queue: 0,
            ..small_opts()
        },
    );
    let (resps, _) = drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n{\"op\":\"ping\",\"id\":5}\n",
    );
    assert_eq!(error_kind(&resps[0]), "queue_full");
    assert_ok(&resps[1], "ping");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_stream_answers_in_order_and_run_cells_are_complete() {
    let (st, dir) = state("pipeline", small_opts());
    let input = "{\"op\":\"ping\",\"id\":1}\n\n   \n{\"op\":\"run\",\"id\":2,\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}}\n{\"op\":\"stats\",\"id\":3}\n";
    let (resps, shutdown) = drive(&st, input);
    assert!(!shutdown);
    // Blank lines are skipped; three real requests, three responses,
    // ids echoed in order.
    assert_eq!(resps.len(), 3);
    for (i, id) in [1u64, 2, 3].iter().enumerate() {
        assert_eq!(resps[i].get("id").and_then(Json::as_u64), Some(*id));
    }
    assert_ok(&resps[0], "ping");
    assert_ok(&resps[1], "run");
    assert_eq!(resps[1].get("app").and_then(Json::as_str), Some("lu"));
    assert_eq!(resps[1].get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(resps[1].get("sims").and_then(Json::as_u64), Some(4));
    let cells = resps[1]
        .get("cells")
        .and_then(Json::as_arr)
        .expect("run responses carry cells");
    assert_eq!(cells.len(), 4);
    // caches × clusters in request order.
    let want = [("inf", 1u64), ("inf", 2), ("4k", 1), ("4k", 2)];
    for (cell, (cache, cluster)) in cells.iter().zip(want) {
        assert_eq!(cell.get("cache").and_then(Json::as_str), Some(cache));
        assert_eq!(cell.get("cluster").and_then(Json::as_u64), Some(cluster));
        assert_eq!(cell.get("cache_hit").and_then(Json::as_bool), Some(false));
        assert_eq!(cell.get("served_by").and_then(Json::as_str), Some("sim"));
        let key = cell.get("key").and_then(Json::as_str).expect("cell key");
        assert_eq!(key.len(), 32, "content address is 128-bit hex");
        let stats = cell.get("stats").expect("cell stats");
        assert!(stats.get("app").is_some(), "stats is the manifest view");
    }
    // All four cells share one generated trace.
    assert_ok(&resps[2], "stats");
    assert_eq!(resps[2].get("trace_gens").and_then(Json::as_u64), Some(1));
    assert_eq!(resps[2].get("sims_run").and_then(Json::as_u64), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resubmission_is_served_from_cache_byte_identically() {
    let (st, dir) = state("cache-hit", small_opts());
    let run = "{\"op\":\"run\",\"id\":1,\"spec\":{\"app\":\"fft\",\"caches\":[\"inf\"],\"clusters\":[1,4]}}\n";
    let (first, _) = drive(&st, run);
    let (second, _) = drive(&st, run);
    assert_eq!(second[0].get("cache_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(second[0].get("sims").and_then(Json::as_u64), Some(0));
    let a = first[0].get("cells").and_then(Json::as_arr).expect("cells");
    let b = second[0]
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells");
    for (fresh, cached) in a.iter().zip(b) {
        assert_eq!(cached.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(
            cached.get("served_by").and_then(Json::as_str),
            Some("cache")
        );
        assert_eq!(
            fresh.get("key").and_then(Json::as_str),
            cached.get("key").and_then(Json::as_str)
        );
        // The load-bearing guarantee: the stats view of a cache hit is
        // byte-identical to the fresh simulation's.
        assert_eq!(
            fresh.get("stats").map(Json::to_string),
            cached.get("stats").map(Json::to_string)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_response_carries_every_counter() {
    let (st, dir) = state("stats", small_opts());
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    drive(
        &st,
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"caches\":[\"inf\"],\"clusters\":[1]}}\n",
    );
    let (resps, _) = drive(&st, "{\"op\":\"stats\",\"id\":42}\n");
    let s = &resps[0];
    assert_ok(s, "stats");
    for key in [
        "requests",
        "cells_served",
        "cache_hits",
        "sims_run",
        "trace_hits",
        "trace_gens",
        "store_entries",
    ] {
        assert!(
            s.get(key).and_then(Json::as_u64).is_some(),
            "stats response must carry `{key}`"
        );
    }
    assert_eq!(s.get("requests").and_then(Json::as_u64), Some(3));
    assert_eq!(s.get("cells_served").and_then(Json::as_u64), Some(2));
    assert_eq!(s.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("sims_run").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("trace_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("trace_gens").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("store_entries").and_then(Json::as_u64), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_acknowledges_then_closes_the_stream() {
    let (st, dir) = state("shutdown", small_opts());
    let (resps, shutdown) = drive(&st, "{\"op\":\"shutdown\",\"id\":8}\n{\"op\":\"ping\"}\n");
    assert!(shutdown, "serve_connection reports the orderly shutdown");
    assert!(st.shutdown_requested());
    assert_eq!(resps.len(), 1, "nothing is answered after the ack");
    assert_ok(&resps[0], "shutdown");
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(8));
    std::fs::remove_dir_all(&dir).ok();
}
