//! Edge cases of bounded line reading, on both transports: the
//! blocking [`read_bounded_line`] and the nonblocking [`LineAccum`]
//! the poll loop feeds from readiness wakeups. The two must agree
//! byte for byte on every stream — exact-cap lines, CRLF, oversized
//! recovery, torn tails — or v1 (blocking) and v2 (poll) connections
//! would disagree about what a client said.

use std::io::BufReader;

use cluster_serve::protocol::{read_bounded_line, LineAccum, LineRead};

/// Runs a whole byte stream through `read_bounded_line` to EOF.
fn blocking_events(stream: &[u8], max: usize) -> Vec<LineRead> {
    let mut r = BufReader::new(stream);
    let mut out = Vec::new();
    loop {
        match read_bounded_line(&mut r, max).expect("in-memory read") {
            LineRead::Eof => return out,
            ev => out.push(ev),
        }
    }
}

/// Runs the same stream through a [`LineAccum`], split into chunks of
/// `step` bytes — simulating poll wakeups that deliver arbitrary
/// fragments — then flushes the torn tail.
fn accum_events(stream: &[u8], max: usize, step: usize) -> Vec<LineRead> {
    let mut acc = LineAccum::new(max);
    let mut out = Vec::new();
    for chunk in stream.chunks(step.max(1)) {
        out.extend(acc.feed(chunk));
    }
    out.extend(acc.finish());
    assert!(acc.is_empty(), "finish resets the accumulator");
    out
}

fn line(s: &str) -> LineRead {
    LineRead::Line(s.to_string())
}

#[test]
fn exact_max_length_line_is_accepted_one_more_byte_is_not() {
    let max = 8;
    let exact = b"12345678\n";
    assert_eq!(blocking_events(exact, max), vec![line("12345678")]);
    assert_eq!(accum_events(exact, max, 3), vec![line("12345678")]);

    let over = b"123456789\n";
    assert_eq!(
        blocking_events(over, max),
        vec![LineRead::Oversized { length: 9 }]
    );
    assert_eq!(
        accum_events(over, max, 2),
        vec![LineRead::Oversized { length: 9 }]
    );
}

#[test]
fn crlf_strips_exactly_one_carriage_return() {
    let stream = b"alpha\r\nbeta\r\r\n\r\n";
    let want = vec![line("alpha"), line("beta\r"), line("")];
    assert_eq!(blocking_events(stream, 64), want);
    assert_eq!(accum_events(stream, 64, 1), want);
    // The cap counts the \r: an exact-max payload plus \r\n overflows
    // a cap sized for the payload alone.
    assert_eq!(
        blocking_events(b"12345678\r\n", 8),
        vec![LineRead::Oversized { length: 9 }]
    );
    assert_eq!(
        accum_events(b"12345678\r\n", 8, 4),
        vec![LineRead::Oversized { length: 9 }]
    );
    // ...and fits a cap that accounts for it.
    assert_eq!(blocking_events(b"12345678\r\n", 9), vec![line("12345678")]);
    assert_eq!(accum_events(b"12345678\r\n", 9, 4), vec![line("12345678")]);
}

#[test]
fn interleaved_partial_reads_reassemble_lines() {
    // A request arriving one byte per poll wakeup must come out as the
    // same single line.
    let req = b"{\"op\":\"ping\",\"id\":1}\n{\"op\":\"stats\"}\n";
    let want = vec![
        line("{\"op\":\"ping\",\"id\":1}"),
        line("{\"op\":\"stats\"}"),
    ];
    for step in [1, 2, 3, 5, 7, 1024] {
        assert_eq!(accum_events(req, 4096, step), want, "step {step}");
    }
    // Mid-line chunk boundaries: feed returns nothing until the
    // newline lands, and the partial line is visible via is_empty.
    let mut acc = LineAccum::new(64);
    assert!(acc.feed(b"{\"op\":").is_empty());
    assert!(!acc.is_empty(), "partial line pending");
    assert!(acc.feed(b"\"ping\"").is_empty());
    assert_eq!(acc.feed(b"}\nnext"), vec![line("{\"op\":\"ping\"}")]);
    assert_eq!(acc.finish(), Some(line("next")));
    assert_eq!(acc.finish(), None, "second finish is a clean no-op");
}

#[test]
fn oversized_line_recovery_does_not_desync_the_stream() {
    let max = 16;
    let huge = "x".repeat(1000);
    let stream = format!("{huge}\n{{\"op\":\"ping\"}}\nshort\n");
    let want = vec![
        LineRead::Oversized { length: 1000 },
        line("{\"op\":\"ping\"}"),
        line("short"),
    ];
    assert_eq!(blocking_events(stream.as_bytes(), max), want);
    // However the poll wakeups slice the oversized line, the lines
    // after it come through intact and in order.
    for step in [1, 7, 16, 17, 999, 4096] {
        assert_eq!(
            accum_events(stream.as_bytes(), max, step),
            want,
            "step {step}"
        );
    }
}

#[test]
fn torn_tail_at_eof_is_surfaced_not_dropped() {
    // Unterminated final line: both transports hand it to the parser
    // (which answers a parse error) instead of losing it.
    let stream = b"{\"op\":\"ping\"}\n{\"op\":\"pi";
    let want = vec![line("{\"op\":\"ping\"}"), line("{\"op\":\"pi")];
    assert_eq!(blocking_events(stream, 64), want);
    assert_eq!(accum_events(stream, 64, 5), want);
    // A torn tail that already overflowed reports oversized.
    let torn_huge = "y".repeat(100);
    assert_eq!(
        accum_events(torn_huge.as_bytes(), 16, 9),
        vec![LineRead::Oversized { length: 100 }]
    );
    // Empty stream: no events at all.
    assert_eq!(accum_events(b"", 16, 1), vec![]);
    assert_eq!(blocking_events(b"", 16), vec![]);
}

/// The contract the poll loop relies on: for any stream and any
/// chunking, [`LineAccum`] produces exactly the event sequence
/// [`read_bounded_line`] would.
#[test]
fn accumulator_agrees_with_blocking_reader_on_mixed_streams() {
    let huge = "z".repeat(300);
    let stream = format!(
        "plain\r\ntiny\n\n{huge}\nexact-cap-1234\n{huge}",
        // torn oversized tail, no newline
    );
    for max in [14, 15, 64, 299, 300] {
        let want = blocking_events(stream.as_bytes(), max);
        for step in [1, 2, 3, 13, 64, 10_000] {
            assert_eq!(
                accum_events(stream.as_bytes(), max, step),
                want,
                "max {max} step {step}"
            );
        }
    }
}
