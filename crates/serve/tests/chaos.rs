//! Chaos suite: the serving stack under deterministic fault
//! injection.
//!
//! The torture test is the acceptance bar for the chaos layer
//! (DESIGN.md §14): a seeded sweep drives the 32-client soak workload
//! through a server with network faults (short reads/writes,
//! EINTR/WouldBlock storms, mid-stream connection drops, accept
//! refusals) *and* store faults (failed writes, failed fsyncs, torn
//! appends) armed — and every retrying client still converges on
//! results bit-identical to a fault-free run, the store reopens
//! cleanly, and the fault counters prove the faults actually fired.
//!
//! Around it: deterministic unit drills for each resilience
//! mechanism — deadlines against a stalled server, `retry_after_ms`
//! honored on `overloaded`, pipeline overflow shed with typed
//! responses, cursor resume across a mid-stream cut, store appends
//! degrading to memory-only entries that a compaction later persists,
//! and a propcheck sweep proving shard journals heal at *any* torn
//! cut point.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster_serve::store::{cell_key, shard_file_name, ResultStore, StoreConfig};
use cluster_serve::{
    scan_store_dir, serve_poll, ClientConfig, ClientError, KeyMode, ServeClient, ServeOptions,
    ServeState,
};
use cluster_study::checkpoint::JournalEntry;
use cluster_study::parallel::RunStatus;
use cluster_study::run_config;
use coherence::config::CacheSpec;
use simcore::fault::{DiskFaultKind, IoFaultPlan};
use simcore::propcheck::{self, Gen};
use simcore::{prop_ensure, prop_ensure_eq, Json};
use splash::ProblemSize;

const SPEC: &str = "{\"app\":\"lu\",\"procs\":4,\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}";

fn spec_json() -> Json {
    simcore::json::parse(SPEC).expect("spec literal")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_poll_server(
    dir: &std::path::Path,
    opts: ServeOptions,
) -> (
    Arc<ServeState>,
    String,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = ResultStore::open(dir).expect("open store");
    let state = Arc::new(ServeState::new(store, opts));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let st = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve_poll(&st, listener));
    (state, addr, handle)
}

fn default_opts() -> ServeOptions {
    ServeOptions {
        jobs: 1,
        max_line: 1 << 20,
        queue: 64,
        op_budget: 256,
    }
}

/// A client policy tuned for the torture loop: tight deadlines, a
/// deep retry budget, fast seeded backoff.
fn chaos_client(seed: u64) -> ClientConfig {
    ClientConfig {
        read_timeout: Some(Duration::from_secs(10)),
        write_timeout: Some(Duration::from_secs(10)),
        retries: 12,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        seed,
    }
}

/// The stable identity of a cell: its content address plus the full
/// simulator statistics. Excludes `served_by`/`cache_hit` (warm vs
/// cold) and the journal's wall times (nondeterministic by nature).
fn cell_identity(cell: &Json) -> String {
    format!(
        "key={} stats={}",
        cell.get("key").and_then(Json::as_str).unwrap_or("?"),
        cell.get("stats").map(|j| j.to_string()).unwrap_or_default(),
    )
}

/// Collects the reference matrix (seq → cell identity) from a
/// fault-free server.
fn reference_cells() -> Vec<String> {
    let dir = tmp_dir("reference");
    let (_state, addr, handle) = start_poll_server(&dir, default_opts());
    let mut c = ServeClient::connect(&addr).expect("connect");
    c.hello_v2().expect("hello");
    let mut cells: Vec<(u64, String)> = Vec::new();
    let summary = c
        .cursor(spec_json(), |seq, cell| {
            cells.push((seq, cell_identity(cell)))
        })
        .expect("reference cursor");
    assert_eq!(summary.cells, 4);
    c.shutdown().expect("shutdown");
    handle.join().expect("join").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
    let mut ids: Vec<String> = cells.into_iter().map(|(_, id)| id).collect();
    ids.sort();
    ids
}

#[test]
fn torture_sweep_converges_bit_identically_under_chaos() {
    let reference = reference_cells();
    assert_eq!(reference.len(), 4);

    for plan_seed in [7u64, 1984] {
        let dir = tmp_dir(&format!("torture-{plan_seed}"));
        let (state, addr, handle) = start_poll_server(&dir, default_opts());
        state.set_chaos_plan(IoFaultPlan {
            seed: plan_seed,
            net_rate: 0.05,
            drop_rate: 0.15,
            accept_rate: 0.10,
            disk_rate: 0.25,
            disk_kind: DiskFaultKind::Mix,
        });

        const CLIENTS: usize = 32;
        let addr_ref: &str = &addr;
        let reference_ref: &[String] = &reference;
        let errors: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|i| {
                    scope.spawn(move || -> Result<(), String> {
                        let e = |what: &str, err: ClientError| format!("client {i} {what}: {err}");
                        let mut c = ServeClient::connect_with(addr_ref, chaos_client(i as u64))
                            .map_err(|x| e("connect", x))?;
                        if i % 2 == 0 {
                            // v1 session: retried runs; validate the
                            // matrix against the reference.
                            let resp = c.run(spec_json()).map_err(|x| e("run", x))?;
                            let cells = resp
                                .get("cells")
                                .and_then(Json::as_arr)
                                .ok_or_else(|| format!("client {i}: run without cells"))?;
                            let mut got: Vec<String> = cells.iter().map(cell_identity).collect();
                            got.sort();
                            if got != reference_ref {
                                return Err(format!("client {i}: run diverged from reference"));
                            }
                        } else {
                            // v2 session: a cursor that must survive
                            // drops via resume, gapless and in order.
                            c.hello_v2().map_err(|x| e("hello", x))?;
                            let mut cells: Vec<(u64, String)> = Vec::new();
                            let summary = c
                                .cursor(spec_json(), |seq, cell| {
                                    cells.push((seq, cell_identity(cell)))
                                })
                                .map_err(|x| e("cursor", x))?;
                            let seqs: Vec<u64> = cells.iter().map(|(s, _)| *s).collect();
                            if seqs != [0, 1, 2, 3] {
                                return Err(format!("client {i}: stream seqs {seqs:?}"));
                            }
                            if summary.cells != 4 || summary.failed != 0 {
                                return Err(format!("client {i}: bad summary {summary:?}"));
                            }
                            let mut got: Vec<String> =
                                cells.into_iter().map(|(_, id)| id).collect();
                            got.sort();
                            if got != reference_ref {
                                return Err(format!("client {i}: cursor diverged from reference"));
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("client thread").err())
                .collect()
        });
        assert!(
            errors.is_empty(),
            "seed {plan_seed} torture failures:\n{}",
            errors.join("\n")
        );

        // The sweep must actually have hurt: injected faults fired.
        let injected = state.chaos_counters().total() + state.store().counters().disk_faults;
        assert!(injected > 0, "seed {plan_seed}: no faults fired");

        // Disarm before the control connection: `shutdown` is not
        // retried, so it must not be a chaos victim.
        state.set_chaos_plan(IoFaultPlan::disabled());
        let mut closer = ServeClient::connect(&addr).expect("closer");
        closer.shutdown().expect("shutdown");
        handle.join().expect("join").expect("clean exit");

        // The journal survived every torn append: a strict reopen
        // heals, and a fault-free restart over the same store still
        // serves the reference matrix.
        let (_, torn) = scan_store_dir(&dir).expect("store strict-parses");
        assert!(!torn, "seed {plan_seed}: torn tail left behind");
        let (_state2, addr2, handle2) = start_poll_server(&dir, default_opts());
        let mut c = ServeClient::connect(&addr2).expect("reconnect");
        c.hello_v2().expect("hello");
        let mut got: Vec<String> = Vec::new();
        let summary = c
            .cursor(spec_json(), |_, cell| got.push(cell_identity(cell)))
            .expect("post-chaos cursor");
        got.sort();
        assert_eq!(got, reference, "seed {plan_seed}: restart diverged");
        assert_eq!((summary.cells, summary.failed), (4, 0));
        c.shutdown().expect("shutdown");
        handle2.join().expect("join").expect("clean exit");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn deadline_turns_a_stalled_server_into_a_fast_error() {
    // A listener that accepts and then says nothing, forever.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let stall = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_millis(150)),
        retries: 0,
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let mut c = ServeClient::connect_with(&addr, cfg).expect("connect");
    let err = c.ping().expect_err("stalled server must time out");
    assert!(
        matches!(err, ClientError::Io(_)),
        "want a transport deadline error, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline took {:?}",
        started.elapsed()
    );
    drop(stall.join().expect("stall thread").expect("accept"));
}

/// A hand-scripted server: answers the first request `overloaded`
/// (with a `retry_after_ms` hint) and the second with a pong.
fn scripted_overload_server() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        for attempt in 0..2 {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read") == 0 {
                return; // client gave up early (retries: 0 case)
            }
            let req = simcore::json::parse(line.trim_end()).expect("request parses");
            let id = req.get("id").and_then(Json::as_u64).expect("request id");
            let resp = if attempt == 0 {
                Json::obj().with("id", id).with("ok", false).with(
                    "error",
                    Json::obj()
                        .with("kind", "overloaded")
                        .with("detail", "scripted shed")
                        .with("retry_after_ms", 5u64),
                )
            } else {
                Json::obj()
                    .with("ok", true)
                    .with("id", id)
                    .with("op", "ping")
            };
            writeln!(writer, "{resp}").expect("write");
        }
    });
    (addr, handle)
}

#[test]
fn overloaded_hint_is_retried_on_the_same_connection() {
    let (addr, handle) = scripted_overload_server();
    let cfg = ClientConfig {
        retries: 2,
        backoff_base: Duration::from_millis(1),
        ..ClientConfig::default()
    };
    let mut c = ServeClient::connect_with(&addr, cfg).expect("connect");
    c.ping().expect("retry after the overloaded hint succeeds");
    drop(c);
    handle.join().expect("scripted server");
}

#[test]
fn overloaded_error_surfaces_the_hint_when_retries_are_exhausted() {
    let (addr, handle) = scripted_overload_server();
    let cfg = ClientConfig {
        retries: 0,
        ..ClientConfig::default()
    };
    let mut c = ServeClient::connect_with(&addr, cfg).expect("connect");
    match c.ping().expect_err("no retry budget") {
        ClientError::Server {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, "overloaded");
            assert_eq!(retry_after_ms, Some(5));
        }
        other => panic!("want a typed overloaded error, got {other}"),
    }
    drop(c);
    handle.join().expect("scripted server");
}

#[test]
fn pipelined_overflow_is_shed_with_typed_responses() {
    let dir = tmp_dir("shed");
    let (state, addr, handle) = start_poll_server(
        &dir,
        ServeOptions {
            op_budget: 2,
            ..default_opts()
        },
    );

    // One raw connection, ten pings blasted in a single write: the
    // op budget keeps two, the other eight answer `overloaded`.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    for i in 1..=10 {
        burst.push_str(&format!("{{\"op\":\"ping\",\"id\":{i}}}\n"));
    }
    stream.write_all(burst.as_bytes()).expect("burst write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (mut pongs, mut shed) = (0u64, 0u64);
    for _ in 0..10 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0, "early EOF");
        let j = simcore::json::parse(line.trim_end()).expect("response parses");
        if j.get("ok").and_then(Json::as_bool) == Some(true) {
            pongs += 1;
        } else {
            let err = j.get("error").expect("typed error");
            assert_eq!(err.get("kind").and_then(Json::as_str), Some("overloaded"));
            assert!(
                err.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                "overloaded must carry a backoff hint: {j}"
            );
            assert!(j.get("id").is_some(), "shed responses echo the request id");
            shed += 1;
        }
    }
    assert_eq!(pongs + shed, 10);
    assert!(shed >= 1, "no requests were shed");
    assert!(pongs >= 2, "the op budget's worth must still be answered");
    drop(reader);
    drop(stream);

    // The `health` op accounts for the shedding.
    let mut c = ServeClient::connect(&addr).expect("connect");
    let health = c.health().expect("health");
    assert_eq!(health.get("op").and_then(Json::as_str), Some("health"));
    assert_eq!(health.get("shed").and_then(Json::as_u64), Some(shed));
    assert_eq!(state.stats().shed(), shed);
    c.shutdown().expect("shutdown");
    handle.join().expect("join").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

/// A fully scripted two-connection server proving cursor resume: the
/// first connection streams two cells and dies; the reconnect must
/// carry `from: 2`, and gets the remainder plus a trailer with
/// `skipped` set.
#[test]
fn cursor_resumes_from_the_first_unacked_seq_after_a_cut() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let hello_ok = |id: u64| {
        Json::obj()
            .with("ok", true)
            .with("id", id)
            .with("op", "hello")
            .with("schema", "clustered-smp/serve/v2")
    };
    let cell = |id: u64, seq: u64, by: &str| {
        Json::obj()
            .with("ok", true)
            .with("id", id)
            .with("op", "cell")
            .with("seq", seq)
            .with("cell", Json::obj().with("served_by", by))
    };
    let server = std::thread::spawn(move || {
        let read_req = |reader: &mut BufReader<TcpStream>| -> (Json, u64) {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let req = simcore::json::parse(line.trim_end()).expect("request parses");
            let id = req.get("id").and_then(Json::as_u64).expect("request id");
            (req, id)
        };
        // Connection 1: handshake, then a stream cut after two cells.
        let (stream, _) = listener.accept().expect("accept 1");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut w = stream;
        let (_, id) = read_req(&mut reader);
        writeln!(w, "{}", hello_ok(id)).expect("hello 1");
        let (req, id) = read_req(&mut reader);
        assert_eq!(req.get("op").and_then(Json::as_str), Some("cursor"));
        assert!(req.get("from").is_none(), "first attempt starts at 0");
        let start = Json::obj()
            .with("ok", true)
            .with("id", id)
            .with("op", "cursor")
            .with("total", 4u64);
        writeln!(w, "{start}").expect("start 1");
        writeln!(w, "{}", cell(id, 0, "cache")).expect("cell 0");
        writeln!(w, "{}", cell(id, 1, "cache")).expect("cell 1");
        drop(w); // cut mid-stream
        drop(reader);

        // Connection 2: the resume. `from` must be the first unacked
        // seq; the segment streams the remainder only.
        let (stream, _) = listener.accept().expect("accept 2");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut w = stream;
        let (_, id) = read_req(&mut reader);
        writeln!(w, "{}", hello_ok(id)).expect("hello 2");
        let (req, id) = read_req(&mut reader);
        assert_eq!(req.get("from").and_then(Json::as_u64), Some(2));
        let start = Json::obj()
            .with("ok", true)
            .with("id", id)
            .with("op", "cursor")
            .with("total", 4u64);
        writeln!(w, "{start}").expect("start 2");
        writeln!(w, "{}", cell(id, 2, "sim")).expect("cell 2");
        writeln!(w, "{}", cell(id, 3, "sim")).expect("cell 3");
        let done = Json::obj()
            .with("ok", true)
            .with("id", id)
            .with("op", "cursor_done")
            .with("cells", 4u64)
            .with("cache_hits", 0u64)
            .with("sims", 2u64)
            .with("failed", 0u64)
            .with("skipped", 2u64);
        writeln!(w, "{done}").expect("trailer");
    });

    let cfg = ClientConfig {
        retries: 2,
        backoff_base: Duration::from_millis(1),
        ..ClientConfig::default()
    };
    let mut c = ServeClient::connect_with(&addr, cfg).expect("connect");
    c.hello_v2().expect("hello");
    let mut seqs = Vec::new();
    let summary = c
        .cursor(spec_json(), |seq, _| seqs.push(seq))
        .expect("cursor");
    assert_eq!(seqs, [0, 1, 2, 3], "gapless across the cut");
    // The merged summary spans both segments: two cells arrived
    // before the cut (cache) and two after (sim).
    assert_eq!(
        (
            summary.cells,
            summary.cache_hits,
            summary.sims,
            summary.failed
        ),
        (4, 2, 2, 0)
    );
    server.join().expect("scripted server");
}

fn sample_entry(app: &str, cluster: u32) -> JournalEntry {
    let trace = splash::by_name(app, ProblemSize::Small)
        .expect("known app")
        .generate(8);
    let stats = run_config(&trace, cluster, CacheSpec::Infinite);
    JournalEntry {
        app: app.to_string(),
        cache: CacheSpec::Infinite.label(),
        cluster,
        stats,
        wall: None,
        status: RunStatus::Ok,
        attempts: 1,
        sampling: None,
    }
}

fn plan_all_disk(kind: DiskFaultKind) -> IoFaultPlan {
    IoFaultPlan {
        seed: 1,
        disk_rate: 1.0,
        disk_kind: kind,
        ..IoFaultPlan::disabled()
    }
}

#[test]
fn disk_faults_degrade_to_memory_and_the_journal_stays_clean() {
    for (kind, survives_reopen) in [
        (DiskFaultKind::Write, false),
        (DiskFaultKind::Torn, false),
        // A failed fsync leaves the line in the file (not yet
        // durable); a clean process exit still carries it over.
        (DiskFaultKind::Fsync, true),
    ] {
        let dir = tmp_dir(&format!("degrade-{kind:?}"));
        let entry = sample_entry("lu", 2);
        let key = cell_key("lu", "small", 8, "inf", 2);
        {
            let store = ResultStore::open(&dir).expect("open");
            store.set_fault_plan(plan_all_disk(kind));
            let (cell, hit) = store
                .serve_cell(&key, "small", 8, || entry.clone())
                .expect("a failed append degrades, not errors");
            assert!(!hit);
            assert_eq!(cell.to_json().to_string(), entry.to_json().to_string());
            // The entry serves from memory despite the failed append.
            assert!(store.peek(&key).is_some(), "{kind:?}: not published");
            let c = store.counters();
            assert!(c.disk_faults >= 1, "{kind:?}: fault not counted");
            assert!(c.append_failures >= 1, "{kind:?}: failure not counted");
        }
        // Reopen heals: strict parse, no torn tail on disk.
        let (entries, torn) = scan_store_dir(&dir).expect("strict reopen");
        assert!(!torn, "{kind:?}: torn tail survived the repair");
        assert_eq!(
            entries.len(),
            usize::from(survives_reopen),
            "{kind:?}: unexpected survivors"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn compaction_persists_a_memory_only_entry() {
    let dir = tmp_dir("compact-persist");
    let entry = sample_entry("lu", 1);
    let keys: Vec<String> = (0..4)
        .map(|i| cell_key("lu", "small", 8, "inf", 1 << i))
        .collect();

    // Measure one entry line so the budget can be pitched to evict on
    // the third on-disk append.
    let line_len = {
        let probe = tmp_dir("compact-probe");
        let store = ResultStore::open(&probe).expect("open probe");
        let before = store.counters().bytes;
        store
            .record(&keys[1], "small", 8, &entry)
            .expect("probe record");
        let len = store.counters().bytes - before;
        std::fs::remove_dir_all(&probe).ok();
        len
    };

    let cfg = StoreConfig {
        shards: 1,
        byte_budget: Some(2 * line_len + line_len / 2),
        mode: KeyMode::Full,
    };
    {
        let store = ResultStore::open_with_config(&dir, cfg).expect("open");
        // keys[0] lands during a torn-append fault: memory-only.
        store.set_fault_plan(plan_all_disk(DiskFaultKind::Torn));
        store
            .record(&keys[0], "small", 8, &entry)
            .expect("degraded record");
        store.set_fault_plan(IoFaultPlan::disabled());
        // Two healthy appends, then refresh the degraded entry's
        // recency so the budget evicts the healthy ones first.
        store.record(&keys[1], "small", 8, &entry).expect("record");
        store.record(&keys[2], "small", 8, &entry).expect("record");
        let (_, hit) = store
            .serve_cell(&keys[0], "small", 8, || unreachable!("still published"))
            .expect("refresh");
        assert!(hit);
        // The third on-disk append blows the budget: evict + compact.
        store.record(&keys[3], "small", 8, &entry).expect("record");
        let c = store.counters();
        assert!(c.compactions >= 1, "budget never compacted: {c:?}");
    }
    // The compaction rewrite wrote the memory-only entry to disk: it
    // survives a restart even though its original append failed.
    let store = ResultStore::open(&dir).expect("reopen");
    assert!(
        store.peek(&keys[0]).is_some(),
        "compaction must persist the degraded entry"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: shard journals heal from a tear at *any* byte offset —
/// the recovered entry set is exactly the complete lines, across
/// every shard file and across compaction rewrites.
#[derive(Debug, Clone, PartialEq)]
struct TornCase {
    /// Entries appended before the tear.
    entries: usize,
    /// Which shard file to cut.
    shard: usize,
    /// Cut offset as a fraction (numerator over 1000) of the bytes
    /// past the header.
    frac: usize,
    /// Compact (via a budget-driven rewrite) before tearing.
    compacted: bool,
}

#[test]
fn prop_shard_journals_heal_at_any_cut_point() {
    const SHARDS: usize = 3;
    let entry = sample_entry("lu", 1);
    let entry_ref = &entry;
    propcheck::check_cases(
        24,
        "shard journals heal at any cut point",
        |g: &mut Gen| TornCase {
            entries: g.usize_in(2..9),
            shard: g.usize_in(0..SHARDS),
            frac: g.usize_in(0..1001),
            compacted: g.usize_in(0..2) == 1,
        },
        |case| {
            let mut smaller = Vec::new();
            if case.entries > 2 {
                smaller.push(TornCase {
                    entries: case.entries - 1,
                    ..case.clone()
                });
            }
            if case.shard > 0 {
                smaller.push(TornCase {
                    shard: 0,
                    ..case.clone()
                });
            }
            if case.frac > 0 {
                smaller.push(TornCase {
                    frac: case.frac / 2,
                    ..case.clone()
                });
            }
            if case.compacted {
                smaller.push(TornCase {
                    compacted: false,
                    ..case.clone()
                });
            }
            smaller
        },
        move |case| {
            let dir = std::env::temp_dir().join(format!(
                "serve-chaos-prop-{}-{}-{}-{}-{}",
                std::process::id(),
                case.entries,
                case.shard,
                case.frac,
                case.compacted
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = StoreConfig {
                shards: SHARDS,
                byte_budget: None,
                mode: KeyMode::Full,
            };
            {
                let store = ResultStore::open_with_config(&dir, cfg).map_err(|e| e.to_string())?;
                for i in 0..case.entries {
                    let key = cell_key("lu", "small", 8, "inf", i as u32);
                    store
                        .record(&key, "small", 8, entry_ref)
                        .map_err(|e| e.to_string())?;
                }
            }
            let path = dir.join(shard_file_name(case.shard));
            if case.compacted {
                // Force a rewrite through the private compaction path
                // by reopening with a generous budget and appending
                // until it trips would be indirect; instead reopen
                // and rewrite via the public surface: a reopen plus
                // re-record keeps the file byte-stable, so emulate a
                // compacted file by rewriting it from its own parsed
                // entries (header + sorted lines), the same shape
                // `rewrite_shard` produces.
                let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                let mut lines: Vec<&str> = text.lines().collect();
                let header = lines.remove(0).to_string();
                lines.sort_unstable();
                let mut body = format!("{header}\n");
                for l in lines {
                    body.push_str(l);
                    body.push('\n');
                }
                std::fs::write(&path, &body).map_err(|e| e.to_string())?;
            }
            let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
            let header_end = text.find('\n').map(|i| i + 1).unwrap_or(text.len());
            let cut = header_end + (text.len() - header_end) * case.frac / 1000;
            let kept = &text[..cut];

            // Expected survivors in this shard: its complete lines.
            let mut expect: Vec<String> = kept
                .split_inclusive('\n')
                .skip(1)
                .filter(|l| l.ends_with('\n'))
                .map(|l| {
                    simcore::json::parse(l.trim_end())
                        .ok()
                        .and_then(|j| j.get("store_key").and_then(Json::as_str).map(String::from))
                        .unwrap_or_default()
                })
                .collect();
            prop_ensure!(
                !expect.iter().any(String::is_empty),
                "a complete line failed to parse"
            );

            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(cut as u64))
                .map_err(|e| e.to_string())?;

            // Every other shard keeps everything it had.
            for s in 0..SHARDS {
                if s == case.shard {
                    continue;
                }
                let other = std::fs::read_to_string(dir.join(shard_file_name(s)))
                    .map_err(|e| e.to_string())?;
                for l in other.lines().skip(1) {
                    let j = simcore::json::parse(l).map_err(|e| e.to_string())?;
                    if let Some(k) = j.get("store_key").and_then(Json::as_str) {
                        expect.push(k.to_string());
                    }
                }
            }
            expect.sort();

            let store = ResultStore::open(&dir)
                .map_err(|e| format!("reopen after cut at byte {cut} must heal, got: {e}"))?;
            let mut got: Vec<String> = store.entries().into_iter().map(|e| e.key).collect();
            got.sort();
            prop_ensure_eq!(got, expect, "recovered set mismatch (cut at byte {cut})");
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        },
    );
}
