//! Concurrency and crash-recovery contract of the serving layer.
//!
//! * Dogpile breaking: N clients racing on overlapping jobs produce
//!   exactly one simulation per unique cell key — proven at the store
//!   layer with an instrumented compute, and at the server layer with
//!   threaded connections sharing one [`ServeState`].
//! * Crash recovery: a server killed mid-study by the
//!   `SERVE_KILL_AFTER_RECORDS` hook (the serving twin of
//!   `STUDY_KILL_AFTER_RECORDS`) restarts over a valid store; a torn
//!   final entry is dropped and healed exactly like the checkpoint
//!   journal's, and the surviving prefix serves as cache hits —
//!   byte-identical, across the process boundary, to a fresh run.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use cluster_serve::store::{cell_key, ResultStore};
use cluster_serve::{scan_store_dir, serve_connection, ServeOptions, ServeState, KILL_EXIT_CODE};
use cluster_study::checkpoint::JournalEntry;
use cluster_study::parallel::RunStatus;
use cluster_study::run_config;
use coherence::config::CacheSpec;
use simcore::Json;
use splash::ProblemSize;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("serve-concurrency-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every shard journal file in a store directory.
fn shard_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
        })
        .collect();
    out.sort();
    out
}

fn drive(state: &ServeState, input: &str) -> Vec<Json> {
    let mut r = std::io::Cursor::new(input.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    serve_connection(state, &mut r, &mut out).expect("in-memory transport");
    String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(|l| simcore::json::parse(l).expect("response parses"))
        .collect()
}

fn sample_cell(cluster: u32) -> JournalEntry {
    let trace = splash::by_name("lu", ProblemSize::Small)
        .expect("registry")
        .generate(4);
    JournalEntry {
        app: "lu".to_string(),
        cache: "inf".to_string(),
        cluster,
        stats: run_config(&trace, cluster, CacheSpec::Infinite),
        wall: None,
        status: RunStatus::Ok,
        attempts: 1,
        sampling: None,
    }
}

#[test]
fn racing_clients_simulate_each_unique_key_exactly_once() {
    let dir = tmp_dir("dogpile-store");
    let store = ResultStore::open(&dir).expect("open");
    let computes = AtomicUsize::new(0);
    let key = cell_key("lu", "small", 4, "inf", 2);
    const CLIENTS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let (cell, _) = store
                    .serve_cell(&key, "small", 4, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that every
                        // other client arrives while it is in progress.
                        std::thread::sleep(Duration::from_millis(50));
                        sample_cell(2)
                    })
                    .expect("serve");
                assert_eq!(cell.cluster, 2);
            });
        }
    });
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "one simulation per unique key, no dogpile"
    );
    let c = store.counters();
    assert_eq!((c.hits, c.misses, c.entries), (CLIENTS as u64 - 1, 1, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overlapping_server_connections_share_one_simulation_per_cell() {
    let dir = tmp_dir("dogpile-server");
    let st = ServeState::new(
        ResultStore::open(&dir).expect("open"),
        ServeOptions {
            jobs: 2,
            max_line: 1 << 16,
            queue: 8,
            op_budget: 256,
        },
    );
    // Three clients, overlapping matrices. The union covers 4 unique
    // cells: (inf,1) (inf,2) (4k,1) (4k,2).
    let reqs = [
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":4,\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}}\n",
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":4,\"caches\":[\"inf\"],\"clusters\":[1,2]}}\n",
        "{\"op\":\"run\",\"spec\":{\"app\":\"lu\",\"procs\":4,\"caches\":[\"4k\"],\"clusters\":[1,2]}}\n",
    ];
    let responses: Vec<Vec<Json>> = std::thread::scope(|scope| {
        let handles: Vec<_> = reqs
            .iter()
            .map(|req| scope.spawn(|| drive(&st, req)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for resps in &responses {
        assert_eq!(resps[0].get("ok").and_then(Json::as_bool), Some(true));
    }
    let c = st.store().counters();
    assert_eq!(c.misses, 4, "exactly one simulation per unique cell");
    assert_eq!(c.entries, 4);
    assert_eq!(c.hits + c.misses, 8, "every requested cell was served");
    // Same cell, different connections: byte-identical stats.
    let stats_of = |resps: &Vec<Json>, cache: &str, cluster: u64| -> String {
        resps[0]
            .get("cells")
            .and_then(Json::as_arr)
            .expect("cells")
            .iter()
            .find(|cell| {
                cell.get("cache").and_then(Json::as_str) == Some(cache)
                    && cell.get("cluster").and_then(Json::as_u64) == Some(cluster)
            })
            .expect("cell present")
            .get("stats")
            .expect("stats")
            .to_string()
    };
    assert_eq!(
        stats_of(&responses[0], "inf", 1),
        stats_of(&responses[1], "inf", 1)
    );
    assert_eq!(
        stats_of(&responses[0], "4k", 2),
        stats_of(&responses[2], "4k", 2)
    );
    std::fs::remove_dir_all(&dir).ok();
}

const RUN_REQ: &str = "{\"op\":\"run\",\"id\":1,\"spec\":{\"app\":\"lu\",\"procs\":4,\"caches\":[\"inf\",\"4k\"],\"clusters\":[1,2]}}\n";

fn serve_binary(
    store: &std::path::Path,
    input: &str,
    kill_after: Option<usize>,
) -> (Vec<Json>, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cluster_serve"));
    cmd.arg("--store")
        .arg(store)
        .arg("--jobs")
        .arg("1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match kill_after {
        Some(n) => cmd.env("SERVE_KILL_AFTER_RECORDS", n.to_string()),
        None => cmd.env_remove("SERVE_KILL_AFTER_RECORDS"),
    };
    let mut child = cmd.spawn().expect("spawn cluster_serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    // stdin drops here: EOF ends the connection unless the kill fires.
    let out = child.wait_with_output().expect("wait");
    let responses = String::from_utf8(out.stdout)
        .expect("UTF-8 responses")
        .lines()
        .map(|l| simcore::json::parse(l).expect("response parses"))
        .collect();
    (responses, out.status.code())
}

#[test]
fn killed_server_restarts_with_a_valid_store_and_serves_the_prefix() {
    let dir = tmp_dir("kill-restart");

    // Phase 1: the kill hook fires on the 2nd store append, so the
    // child dies mid-request with the distinct crash exit code and no
    // run response on the wire.
    let (responses, code) = serve_binary(&dir, RUN_REQ, Some(2));
    assert_eq!(code, Some(KILL_EXIT_CODE), "crash hook exit code");
    assert!(
        responses.is_empty(),
        "killed mid-run, the response never flushed: {responses:?}"
    );

    // The sharded store is a valid prefix: exactly the 2 cells that
    // were appended before the kill (--jobs 1 appends in request
    // order: inf/1 then inf/2, each routed to its own shard).
    let (entries, torn) = scan_store_dir(&dir).expect("store strict-parses");
    assert!(!torn);
    assert_eq!(entries.len(), 2);
    let mut cells: Vec<(String, u32)> = entries
        .iter()
        .map(|e| (e.cell.cache.clone(), e.cell.cluster))
        .collect();
    cells.sort();
    assert_eq!(
        cells,
        vec![("inf".to_string(), 1), ("inf".to_string(), 2)],
        "the surviving prefix is the first two appends"
    );

    // Phase 2: tear the final entry of a shard that holds one, as a
    // kill landing mid-write(2) would. The restarted server must drop
    // and heal exactly that line — the checkpoint journal's recovery
    // contract, per shard.
    let torn_shard = shard_files(&dir)
        .into_iter()
        .find(|p| {
            std::fs::read_to_string(p)
                .expect("read shard")
                .lines()
                .count()
                > 1
        })
        .expect("some shard holds an entry");
    let text = std::fs::read_to_string(&torn_shard).expect("read shard");
    let torn_text = format!("{text}{{\"store_key\":\"feedface\",\"si");
    std::fs::write(&torn_shard, &torn_text).expect("tear");

    // Phase 3: restart over the damaged store and resubmit. The two
    // surviving cells are cache hits; the rest simulate.
    let (responses, code) = serve_binary(
        &dir,
        &format!("{RUN_REQ}{}", "{\"op\":\"shutdown\"}\n"),
        None,
    );
    assert_eq!(code, Some(0));
    assert_eq!(responses.len(), 2, "run response + shutdown ack");
    let run = &responses[0];
    assert_eq!(run.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(run.get("cache_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(run.get("sims").and_then(Json::as_u64), Some(2));
    let cells = run.get("cells").and_then(Json::as_arr).expect("cells");
    let hit_of = |cache: &str, cluster: u64| {
        cells
            .iter()
            .find(|c| {
                c.get("cache").and_then(Json::as_str) == Some(cache)
                    && c.get("cluster").and_then(Json::as_u64) == Some(cluster)
            })
            .expect("cell")
            .get("cache_hit")
            .and_then(Json::as_bool)
            .expect("cache_hit")
    };
    assert!(
        hit_of("inf", 1) && hit_of("inf", 2),
        "journaled prefix hits"
    );
    assert!(
        !hit_of("4k", 1) && !hit_of("4k", 2),
        "lost cells re-simulate"
    );

    // The heal removed the torn fragment durably, from every shard.
    for shard in shard_files(&dir) {
        let healed = std::fs::read_to_string(&shard).expect("shard file");
        assert!(!healed.contains("feedface"), "{}", shard.display());
    }
    let (entries, torn) = scan_store_dir(&dir).expect("healed store strict-parses");
    assert!(!torn);
    assert_eq!(entries.len(), 4, "full matrix recorded after restart");

    // Phase 4: the end-to-end determinism proof across the process
    // boundary — every cell the restarted binary served (two from
    // cache, two fresh) is byte-identical to an uncached in-process
    // run of the same spec.
    let fresh_dir = tmp_dir("kill-restart-fresh");
    let st = ServeState::new(
        ResultStore::open(&fresh_dir).expect("open"),
        ServeOptions {
            jobs: 1,
            max_line: 1 << 16,
            queue: 1,
            op_budget: 256,
        },
    );
    let fresh = drive(&st, RUN_REQ);
    let fresh_cells = fresh[0].get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(fresh_cells.len(), cells.len());
    for (a, b) in fresh_cells.iter().zip(cells) {
        assert_eq!(
            a.get("stats").map(Json::to_string),
            b.get("stats").map(Json::to_string),
            "cache-vs-fresh byte identity across processes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}
