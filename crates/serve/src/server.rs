//! The serve loop: protocol in, study cells out.
//!
//! [`ServeState`] owns the result store, the trace store, and a
//! bounded job queue; a [`Session`] tracks one connection's
//! negotiated protocol version. [`serve_connection`] drives one
//! line-delimited request stream on a blocking transport;
//! `crate::event_loop` multiplexes many nonblocking sockets over the
//! same dispatch. The loop is panic-free by construction (enforced by
//! `cluster_check lint`'s no-panic rule over this crate): every
//! failure becomes a typed error response, and only transport I/O
//! errors — the peer vanishing — end a connection.
//!
//! `run` and `batch` requests fan their `caches` × `clusters`
//! matrices onto the existing work-stealing pool
//! ([`cluster_study::parallel::run_items`]); `cursor` requests use
//! [`cluster_study::parallel::run_items_streamed`] so every finished
//! cell is emitted the moment it (and everything before it) is done.
//! The result store's single-flight discipline keeps concurrent
//! requests from duplicating work.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cluster_study::checkpoint::JournalEntry;
use cluster_study::manifest::{RunRecord, ServedBy};
use cluster_study::parallel::{run_items, run_items_streamed, RunStatus};
use cluster_study::run_config;
use coherence::config::CacheSpec;
use simcore::fault::IoFaultPlan;
use simcore::ops::Trace;
use simcore::Json;

use crate::chaos::ChaosCounters;
use crate::protocol::{
    parse_request, read_bounded_line, write_response, BatchJob, CellResult, ErrorKind, JobSpec,
    LineRead, Op, ProtoVersion, ProtocolError, Request, Response, ServeStats, DEFAULT_MAX_LINE,
    PROTOCOL_SCHEMA_V2,
};
use crate::store::{size_label, ResultStore, TraceStore};

/// Default bound on concurrently executing `run` requests.
pub const DEFAULT_QUEUE: usize = 4;

/// Default per-connection pipelined-op budget (the event loop sheds
/// parsed-but-unserved requests beyond it with `overloaded`).
pub const DEFAULT_OP_BUDGET: usize = 256;

/// Backoff hint carried by `queue_full` (v2 only) and `overloaded`
/// responses.
pub const RETRY_AFTER_MS: u64 = 25;

/// Tunables for a server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads per `run` request (the `run_items` pool width).
    pub jobs: usize,
    /// Per-line byte cap; longer lines answer `oversized`.
    pub max_line: usize,
    /// Bound on concurrently executing `run` requests; excess answers
    /// `queue_full` instead of piling unbounded work onto the pool.
    pub queue: usize,
    /// Per-connection bound on pipelined ops parsed but not yet
    /// served; excess requests are shed with `overloaded` instead of
    /// accumulating unbounded state for one greedy peer.
    pub op_budget: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: cluster_study::resolve_jobs(None),
            max_line: DEFAULT_MAX_LINE,
            queue: DEFAULT_QUEUE,
            op_budget: DEFAULT_OP_BUDGET,
        }
    }
}

/// One connection's protocol state: the negotiated version. Every
/// connection starts at [`ProtoVersion::V1`] (full PR 6
/// compatibility) until a `hello` upgrades it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Session {
    version: ProtoVersion,
}

impl Session {
    /// A fresh v1 session.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session pinned at `version` (the event loop's worker threads
    /// dispatch with a snapshot of the connection's session).
    pub fn with_version(version: ProtoVersion) -> Session {
        Session { version }
    }

    /// The version currently in force.
    pub fn version(&self) -> ProtoVersion {
        self.version
    }
}

/// Shared server state: stores, counters, and the job-queue gate.
pub struct ServeState {
    store: ResultStore,
    traces: TraceStore,
    opts: ServeOptions,
    active: AtomicUsize,
    requests: AtomicU64,
    shutdown: AtomicBool,
    shed: AtomicU64,
    chaos: Mutex<IoFaultPlan>,
    chaos_counters: Arc<ChaosCounters>,
}

/// Releases a job-queue slot when a `run` request finishes, on every
/// path including panicked simulations.
struct SlotGuard<'a> {
    state: &'a ServeState,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ServeState {
    /// Builds a server over an opened store.
    pub fn new(store: ResultStore, opts: ServeOptions) -> ServeState {
        ServeState {
            store,
            traces: TraceStore::new(),
            opts,
            active: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            chaos: Mutex::new(IoFaultPlan::disabled()),
            chaos_counters: Arc::new(ChaosCounters::default()),
        }
    }

    /// Installs (or replaces) the chaos plan. Socket faults apply to
    /// connections accepted *after* this call; disk faults are
    /// forwarded to the store and apply to every later append.
    pub fn set_chaos_plan(&self, plan: IoFaultPlan) {
        *self.chaos.lock().unwrap_or_else(|e| e.into_inner()) = plan;
        self.store.set_fault_plan(plan);
    }

    /// The chaos plan in force for newly accepted connections.
    pub fn chaos_plan(&self) -> IoFaultPlan {
        *self.chaos.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counters the event loop's [`crate::chaos::ChaosStream`]s share.
    pub fn chaos_counters(&self) -> Arc<ChaosCounters> {
        Arc::clone(&self.chaos_counters)
    }

    /// The underlying result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The server's options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// True once a `shutdown` op has been acknowledged.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let sc = self.store.counters();
        let tc = self.traces.counters();
        ServeStats::new(
            self.requests.load(Ordering::SeqCst),
            sc.hits + sc.misses,
            sc.hits,
            sc.misses,
        )
        .traces(tc.hits, tc.gens)
        .store(sc.entries as u64, sc.bytes, sc.shards as u64)
        .eviction(sc.evictions, sc.compactions)
        .faults(
            self.shed.load(Ordering::SeqCst),
            self.chaos_counters.total(),
            sc.disk_faults,
            sc.append_failures,
        )
    }

    /// Counts one request (any op, including unparseable and
    /// oversized lines).
    pub(crate) fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::SeqCst);
    }

    /// The typed response for a line that blew the byte cap.
    pub(crate) fn oversized(&self, length: usize) -> Json {
        Response::Error {
            id: None,
            err: ProtocolError::new(
                ErrorKind::Oversized,
                format!(
                    "line of {length} bytes exceeds the {} byte cap",
                    self.opts.max_line
                ),
            ),
        }
        .to_json()
    }

    fn acquire_slot(&self, version: ProtoVersion) -> Result<SlotGuard<'_>, ProtocolError> {
        let prev = self.active.fetch_add(1, Ordering::SeqCst);
        if prev >= self.opts.queue {
            self.active.fetch_sub(1, Ordering::SeqCst);
            let mut err = ProtocolError::new(
                ErrorKind::QueueFull,
                format!("job queue full ({} run requests active)", self.opts.queue),
            );
            // Additive backoff hint: v2 only, so v1 responses stay
            // byte-identical to the PR 6 shape.
            if version == ProtoVersion::V2 {
                err = err.with_retry_after(RETRY_AFTER_MS);
            }
            return Err(err);
        }
        Ok(SlotGuard { state: self })
    }

    /// The typed response for a request shed under the per-connection
    /// op budget; counts the shed. `overloaded` is a new (v2-era)
    /// error kind, so it always carries the backoff hint.
    pub(crate) fn shed_response(&self, line: &str) -> Json {
        self.shed.fetch_add(1, Ordering::SeqCst);
        Response::Error {
            id: lenient_id(line),
            err: ProtocolError::new(
                ErrorKind::Overloaded,
                format!(
                    "connection exceeded {} pipelined ops; request shed",
                    self.opts.op_budget
                ),
            )
            .with_retry_after(RETRY_AFTER_MS),
        }
        .to_json()
    }

    fn require_v2(&self, sess: &Session, op: &str) -> Result<(), ProtocolError> {
        if sess.version() == ProtoVersion::V2 {
            Ok(())
        } else {
            Err(ProtocolError::new(
                ErrorKind::Protocol,
                format!("op `{op}` requires {PROTOCOL_SCHEMA_V2}; negotiate with `hello` first"),
            ))
        }
    }

    /// Handles one request line against a session, emitting zero or
    /// more response lines through `emit` (exactly one for every op
    /// except `cursor`). Returns whether an orderly shutdown was
    /// requested.
    pub fn handle_line_session(
        &self,
        sess: &mut Session,
        line: &str,
        emit: &mut dyn FnMut(Json),
    ) -> bool {
        self.note_request();
        match parse_request(line) {
            Err(e) => {
                emit(
                    Response::Error {
                        id: lenient_id(line),
                        err: e,
                    }
                    .to_json(),
                );
                false
            }
            Ok(req) => self.handle_request(sess, req, emit),
        }
    }

    /// Dispatches one parsed request. The event loop calls this from
    /// worker threads with a pinned [`Session`] snapshot for heavy
    /// ops; blocking transports call it inline via
    /// [`ServeState::handle_line_session`].
    pub fn handle_request(
        &self,
        sess: &mut Session,
        req: Request,
        emit: &mut dyn FnMut(Json),
    ) -> bool {
        let id = req.id;
        match req.op {
            Op::Ping => {
                emit(Response::Pong { id }.to_json());
                false
            }
            Op::Stats => {
                emit(
                    Response::Stats {
                        id,
                        stats: self.stats(),
                        version: sess.version(),
                    }
                    .to_json(),
                );
                false
            }
            Op::Health => {
                let sc = self.store.counters();
                emit(
                    Response::Health {
                        id,
                        active: self.active.load(Ordering::SeqCst) as u64,
                        queue: self.opts.queue as u64,
                        shed: self.shed.load(Ordering::SeqCst),
                        net_faults: self.chaos_counters.total(),
                        disk_faults: sc.disk_faults,
                        append_failures: sc.append_failures,
                        store_entries: sc.entries as u64,
                        store_bytes: sc.bytes,
                    }
                    .to_json(),
                );
                false
            }
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                emit(Response::ShutdownAck { id }.to_json());
                true
            }
            Op::Hello(version) => {
                *sess = Session::with_version(version);
                emit(Response::Hello { id, version }.to_json());
                false
            }
            Op::Run(spec) => {
                emit(self.run_json(id, &spec, sess.version()));
                false
            }
            Op::Batch(specs) => {
                emit(match self.require_v2(sess, "batch") {
                    Ok(()) => self.batch_json(id, &specs),
                    Err(e) => Response::Error { id, err: e }.to_json(),
                });
                false
            }
            Op::Cursor { spec, from } => {
                match self.require_v2(sess, "cursor") {
                    Ok(()) => self.handle_cursor(id, &spec, from, emit),
                    Err(e) => emit(Response::Error { id, err: e }.to_json()),
                }
                false
            }
        }
    }

    /// Handles one request line under a throwaway v1 session,
    /// returning the single response line — the PR 6 surface, kept
    /// for harnesses that drive the server line by line.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        let mut sess = Session::new();
        let mut out: Option<Json> = None;
        let shutdown = self.handle_line_session(&mut sess, line, &mut |j| {
            out.get_or_insert(j);
        });
        let resp = out.unwrap_or_else(|| {
            Response::Error {
                id: None,
                err: ProtocolError::new(ErrorKind::Internal, "request produced no response"),
            }
            .to_json()
        });
        (resp, shutdown)
    }

    fn unknown_app(&self, spec: &JobSpec) -> ProtocolError {
        ProtocolError::new(
            ErrorKind::UnknownApp,
            format!("unknown application `{}`", spec.app),
        )
    }

    fn cell_items(spec: &JobSpec) -> Vec<(CacheSpec, u32)> {
        spec.caches
            .iter()
            .flat_map(|&c| spec.clusters.iter().map(move |&cl| (c, cl)))
            .collect()
    }

    /// Serves one cell of `spec` — store hit or fresh simulation —
    /// building the response-side [`CellResult`] (with the full
    /// journal document attached when `with_journal`).
    fn compute_cell(
        &self,
        spec: &JobSpec,
        trace: &Trace,
        size: &str,
        cache: CacheSpec,
        cluster: u32,
        with_journal: bool,
    ) -> Result<CellResult, String> {
        let label = cache.label();
        let key = self.store.key(&spec.app, size, spec.procs, &label, cluster);
        self.store
            .serve_cell(&key, size, spec.procs, || {
                let start = Instant::now();
                let stats = run_config(trace, cluster, cache);
                JournalEntry {
                    app: spec.app.clone(),
                    cache: label.clone(),
                    cluster,
                    stats,
                    wall: Some(start.elapsed()),
                    status: RunStatus::Ok,
                    attempts: 1,
                    sampling: None,
                }
            })
            .map(|(cell, hit)| {
                let journal = with_journal.then(|| cell.to_json());
                let served_by = if hit { ServedBy::Cache } else { ServedBy::Sim };
                let rec = RunRecord {
                    app: cell.app,
                    cache: cell.cache,
                    cluster: cell.cluster,
                    stats: cell.stats,
                    wall: cell.wall,
                    status: cell.status,
                    attempts: cell.attempts,
                    served_by,
                    sampling: cell.sampling,
                };
                let mut out = CellResult::new(label.clone(), cluster, key, rec.to_json(false));
                if hit {
                    out = out.served_from_cache();
                }
                if let Some(j) = journal {
                    out = out.with_journal(j);
                }
                out
            })
            .map_err(|e| e.to_string())
    }

    /// Runs one spec's full matrix on the pool; the shared body of
    /// `run` and `batch`.
    fn run_cells(&self, spec: &JobSpec) -> Result<Vec<CellResult>, ProtocolError> {
        let trace = self
            .traces
            .get_or_generate(&spec.app, spec.size, spec.procs)
            .ok_or_else(|| self.unknown_app(spec))?;
        let size = size_label(spec.size);
        let items = Self::cell_items(spec);
        let results = run_items(&items, self.opts.jobs, |&(cache, cluster)| {
            self.compute_cell(spec, &trace, size, cache, cluster, false)
        });
        let mut cells = Vec::with_capacity(results.len());
        for r in results {
            cells.push(r.map_err(|e| ProtocolError::new(ErrorKind::Internal, e))?);
        }
        Ok(cells)
    }

    fn run_json(&self, id: Option<u64>, spec: &JobSpec, version: ProtoVersion) -> Json {
        let _slot = match self.acquire_slot(version) {
            Ok(s) => s,
            Err(e) => return Response::Error { id, err: e }.to_json(),
        };
        match self.run_cells(spec) {
            Ok(cells) => Response::Run {
                id,
                app: spec.app.clone(),
                cells,
            }
            .to_json(),
            Err(e) => Response::Error { id, err: e }.to_json(),
        }
    }

    /// Runs every spec of a batch under one queue slot. The batch is
    /// atomic: the first failing spec fails the whole request with a
    /// single error line (specs are already schema-validated, so the
    /// only failures left are `unknown_app` and store I/O).
    fn batch_json(&self, id: Option<u64>, specs: &[JobSpec]) -> Json {
        // Batch is v2-only, so the queue-full hint is unconditional.
        let _slot = match self.acquire_slot(ProtoVersion::V2) {
            Ok(s) => s,
            Err(e) => return Response::Error { id, err: e }.to_json(),
        };
        let mut jobs = Vec::with_capacity(specs.len());
        for spec in specs {
            match self.run_cells(spec) {
                Ok(cells) => jobs.push(BatchJob {
                    app: spec.app.clone(),
                    cells,
                }),
                Err(e) => return Response::Error { id, err: e }.to_json(),
            }
        }
        Response::Batch { id, jobs }.to_json()
    }

    /// Streams one spec's matrix: a `cursor` start line, one `cell`
    /// line per finished cell **in request order** (each carrying the
    /// full journal document), inline error lines for failed cells,
    /// and a `cursor_done` trailer.
    ///
    /// A resume request (`from > 0`) skips the first `from` cells —
    /// the client already acked them on a previous connection, and
    /// content-addressed keys make recomputing the rest idempotent —
    /// then streams the remainder with their original `seq` numbers.
    fn handle_cursor(
        &self,
        id: Option<u64>,
        spec: &JobSpec,
        from: u64,
        emit: &mut dyn FnMut(Json),
    ) {
        let _slot = match self.acquire_slot(ProtoVersion::V2) {
            Ok(s) => s,
            Err(e) => return emit(Response::Error { id, err: e }.to_json()),
        };
        let trace = match self
            .traces
            .get_or_generate(&spec.app, spec.size, spec.procs)
        {
            Some(t) => t,
            None => {
                return emit(
                    Response::Error {
                        id,
                        err: self.unknown_app(spec),
                    }
                    .to_json(),
                )
            }
        };
        let size = size_label(spec.size);
        let items = Self::cell_items(spec);
        if from > items.len() as u64 {
            return emit(
                Response::Error {
                    id,
                    err: ProtocolError::new(
                        ErrorKind::Protocol,
                        format!("`from` ({from}) beyond the {}-cell matrix", items.len()),
                    ),
                }
                .to_json(),
            );
        }
        emit(
            Response::CursorStart {
                id,
                app: spec.app.clone(),
                total: items.len() as u64,
            }
            .to_json(),
        );
        let rest = &items[from as usize..];
        let mut hits = 0u64;
        let mut sims = 0u64;
        let mut failed = 0u64;
        let results = run_items_streamed(
            rest,
            self.opts.jobs,
            |&(cache, cluster)| self.compute_cell(spec, &trace, size, cache, cluster, true),
            |i, result| match result {
                Ok(cell) => {
                    if cell.cache_hit() {
                        hits += 1;
                    } else {
                        sims += 1;
                    }
                    emit(
                        Response::CursorCell {
                            id,
                            seq: i as u64 + from,
                            cell: cell.clone(),
                        }
                        .to_json(),
                    );
                }
                Err(e) => {
                    failed += 1;
                    emit(
                        Response::Error {
                            id,
                            err: ProtocolError::new(ErrorKind::Internal, e.clone()),
                        }
                        .to_json(),
                    );
                }
            },
        );
        drop(results);
        emit(
            Response::CursorDone {
                id,
                cells: items.len() as u64,
                cache_hits: hits,
                sims,
                failed,
                skipped: from,
            }
            .to_json(),
        );
    }
}

/// Dispatches one already-parsed heavy request (`run`/`batch`/
/// `cursor`) against a pinned session version, emitting response
/// lines through `emit`. The event loop's worker threads call this;
/// `hello`/`ping`/`stats`/`shutdown` stay on the loop thread.
pub fn dispatch_heavy(
    state: &Arc<ServeState>,
    version: ProtoVersion,
    req: Request,
    emit: &mut dyn FnMut(Json),
) {
    let mut sess = Session::with_version(version);
    let _ = state.handle_request(&mut sess, req, emit);
}

/// Best-effort correlation id for error responses: when the offending
/// line still parses as an object with an unsigned `id`, echo it.
pub(crate) fn lenient_id(line: &str) -> Option<u64> {
    simcore::json::parse(line)
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_u64))
}

/// Drives one request stream to completion on a blocking transport.
/// Responses (including incremental `cursor` lines) are written and
/// flushed as they are produced. Returns `Ok(true)` when the peer
/// asked for an orderly shutdown, `Ok(false)` on EOF.
pub fn serve_connection(
    state: &ServeState,
    r: &mut dyn BufRead,
    w: &mut dyn Write,
) -> std::io::Result<bool> {
    let mut sess = Session::new();
    loop {
        match read_bounded_line(r, state.opts.max_line)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversized { length } => {
                state.note_request();
                write_response(w, &state.oversized(length))?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let mut io_err: Option<std::io::Error> = None;
                let shutdown = state.handle_line_session(&mut sess, &line, &mut |j| {
                    if io_err.is_none() {
                        if let Err(e) = write_response(w, &j) {
                            io_err = Some(e);
                        }
                    }
                });
                if let Some(e) = io_err {
                    return Err(e);
                }
                if shutdown {
                    return Ok(true);
                }
            }
        }
    }
}
