//! The serve loop: protocol in, study cells out.
//!
//! [`ServeState`] owns the result store, the trace store, and a
//! bounded job queue; [`serve_connection`] drives one line-delimited
//! request stream against it. The loop is panic-free by construction
//! (enforced by `cluster_check lint`'s no-panic rule over this crate):
//! every failure becomes a typed error response, and only transport
//! I/O errors — the peer vanishing — end a connection.
//!
//! `run` requests fan their `caches` × `clusters` matrix onto the
//! existing work-stealing pool ([`cluster_study::parallel::run_items`]),
//! so a single request saturates the machine exactly like a
//! `paper_run` sweep would, while the result store's single-flight
//! discipline keeps concurrent requests from duplicating work.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use cluster_study::checkpoint::JournalEntry;
use cluster_study::manifest::{RunRecord, ServedBy};
use cluster_study::parallel::{run_items, RunStatus};
use cluster_study::run_config;
use coherence::config::CacheSpec;
use simcore::Json;

use crate::protocol::{
    error_response, parse_request, pong, read_bounded_line, run_response, shutdown_ack,
    stats_response, write_response, CellResult, ErrorKind, JobSpec, LineRead, Op, ProtocolError,
    ServeStats, DEFAULT_MAX_LINE,
};
use crate::store::{size_label, ResultStore, TraceStore};

/// Default bound on concurrently executing `run` requests.
pub const DEFAULT_QUEUE: usize = 4;

/// Tunables for a server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads per `run` request (the `run_items` pool width).
    pub jobs: usize,
    /// Per-line byte cap; longer lines answer `oversized`.
    pub max_line: usize,
    /// Bound on concurrently executing `run` requests; excess answers
    /// `queue_full` instead of piling unbounded work onto the pool.
    pub queue: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: cluster_study::resolve_jobs(None),
            max_line: DEFAULT_MAX_LINE,
            queue: DEFAULT_QUEUE,
        }
    }
}

/// Shared server state: stores, counters, and the job-queue gate.
pub struct ServeState {
    store: ResultStore,
    traces: TraceStore,
    opts: ServeOptions,
    active: AtomicUsize,
    requests: AtomicU64,
    shutdown: AtomicBool,
}

/// Releases a job-queue slot when a `run` request finishes, on every
/// path including panicked simulations.
struct SlotGuard<'a> {
    state: &'a ServeState,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ServeState {
    /// Builds a server over an opened store.
    pub fn new(store: ResultStore, opts: ServeOptions) -> ServeState {
        ServeState {
            store,
            traces: TraceStore::new(),
            opts,
            active: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The underlying result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The server's options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// True once a `shutdown` op has been acknowledged.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let sc = self.store.counters();
        let tc = self.traces.counters();
        ServeStats {
            requests: self.requests.load(Ordering::SeqCst),
            cells_served: sc.hits + sc.misses,
            cache_hits: sc.hits,
            sims_run: sc.misses,
            trace_hits: tc.hits,
            trace_gens: tc.gens,
            store_entries: sc.entries as u64,
        }
    }

    fn acquire_slot(&self) -> Result<SlotGuard<'_>, ProtocolError> {
        let prev = self.active.fetch_add(1, Ordering::SeqCst);
        if prev >= self.opts.queue {
            self.active.fetch_sub(1, Ordering::SeqCst);
            return Err(ProtocolError::new(
                ErrorKind::QueueFull,
                format!("job queue full ({} run requests active)", self.opts.queue),
            ));
        }
        Ok(SlotGuard { state: self })
    }

    /// Handles one request line, returning the response and whether an
    /// orderly shutdown was requested.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        self.requests.fetch_add(1, Ordering::SeqCst);
        match parse_request(line) {
            Err(e) => (error_response(lenient_id(line), &e), false),
            Ok(req) => match req.op {
                Op::Ping => (pong(req.id), false),
                Op::Stats => (stats_response(req.id, &self.stats()), false),
                Op::Shutdown => {
                    self.shutdown.store(true, Ordering::SeqCst);
                    (shutdown_ack(req.id), true)
                }
                Op::Run(spec) => (self.handle_run(req.id, &spec), false),
            },
        }
    }

    fn handle_run(&self, id: Option<u64>, spec: &JobSpec) -> Json {
        let _slot = match self.acquire_slot() {
            Ok(s) => s,
            Err(e) => return error_response(id, &e),
        };
        let trace = match self
            .traces
            .get_or_generate(&spec.app, spec.size, spec.procs)
        {
            Some(t) => t,
            None => {
                return error_response(
                    id,
                    &ProtocolError::new(
                        ErrorKind::UnknownApp,
                        format!("unknown application `{}`", spec.app),
                    ),
                )
            }
        };
        let size = size_label(spec.size);
        let items: Vec<(CacheSpec, u32)> = spec
            .caches
            .iter()
            .flat_map(|&c| spec.clusters.iter().map(move |&cl| (c, cl)))
            .collect();
        let results = run_items(&items, self.opts.jobs, |&(cache, cluster)| {
            let label = cache.label();
            let key = self.store.key(&spec.app, size, spec.procs, &label, cluster);
            self.store
                .serve_cell(&key, size, spec.procs, || {
                    let start = Instant::now();
                    let stats = run_config(&trace, cluster, cache);
                    JournalEntry {
                        app: spec.app.clone(),
                        cache: label.clone(),
                        cluster,
                        stats,
                        wall: Some(start.elapsed()),
                        status: RunStatus::Ok,
                        attempts: 1,
                        sampling: None,
                    }
                })
                .map(|(cell, hit)| {
                    let served_by = if hit { ServedBy::Cache } else { ServedBy::Sim };
                    let rec = RunRecord {
                        app: cell.app,
                        cache: cell.cache,
                        cluster: cell.cluster,
                        stats: cell.stats,
                        wall: cell.wall,
                        status: cell.status,
                        attempts: cell.attempts,
                        served_by,
                        sampling: cell.sampling,
                    };
                    CellResult {
                        cache: label.clone(),
                        cluster,
                        key,
                        cache_hit: hit,
                        served_by: served_by.label(),
                        stats: rec.to_json(false),
                    }
                })
        });
        let mut cells = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(c) => cells.push(c),
                Err(e) => {
                    return error_response(
                        id,
                        &ProtocolError::new(ErrorKind::Internal, e.to_string()),
                    )
                }
            }
        }
        run_response(id, &spec.app, &cells)
    }
}

/// Best-effort correlation id for error responses: when the offending
/// line still parses as an object with an unsigned `id`, echo it.
fn lenient_id(line: &str) -> Option<u64> {
    simcore::json::parse(line)
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_u64))
}

/// Drives one request stream to completion. Returns `Ok(true)` when
/// the peer asked for an orderly shutdown, `Ok(false)` on EOF.
pub fn serve_connection(
    state: &ServeState,
    r: &mut dyn BufRead,
    w: &mut dyn Write,
) -> std::io::Result<bool> {
    loop {
        match read_bounded_line(r, state.opts.max_line)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversized { length } => {
                state.requests.fetch_add(1, Ordering::SeqCst);
                let err = ProtocolError::new(
                    ErrorKind::Oversized,
                    format!(
                        "line of {length} bytes exceeds the {} byte cap",
                        state.opts.max_line
                    ),
                );
                write_response(w, &error_response(None, &err))?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (resp, shutdown) = state.handle_line(&line);
                write_response(w, &resp)?;
                if shutdown {
                    return Ok(true);
                }
            }
        }
    }
}
