//! `cluster_serve` — the study service binary.
//!
//! Speaks the line-delimited JSON protocol of `DESIGN.md` §12 over
//! stdin/stdout (default), a TCP listener (`--listen`, nonblocking
//! multi-client event loop), or a Unix socket (`--socket`), backed by
//! the sharded content-addressed result store in `--store DIR`.
//!
//! `SERVE_KILL_AFTER_RECORDS=N` arms the crash-injection hook: the
//! process exits with code 42 immediately after the Nth store append,
//! which the concurrency suite uses to prove restart recovery.

use std::io::BufWriter;
use std::sync::Arc;

use cluster_serve::event_loop::serve_poll;
use cluster_serve::protocol::DEFAULT_MAX_LINE;
use cluster_serve::server::{
    serve_connection, ServeOptions, ServeState, DEFAULT_OP_BUDGET, DEFAULT_QUEUE,
};
use cluster_serve::store::{KeyMode, ResultStore, StoreConfig, DEFAULT_SHARDS};
use simcore::fault::IoFaultPlan;

const USAGE: &str = "\
cluster_serve — study service with a content-addressed result cache

USAGE:
    cluster_serve --store DIR [OPTIONS]

OPTIONS:
    --store DIR            result store directory (required; created if absent)
    --shards N             journal shards for a NEW store [default: 4]
                           (an existing store keeps its on-disk shard count)
    --store-budget BYTES   evict least-recently-served cells once a shard's
                           journal exceeds its share of this budget
                           [default: unbounded]
    --jobs N               worker threads per run request [default: cores, STUDY_JOBS]
    --queue N              max concurrently executing run requests [default: 4]
    --op-budget N          per-connection pipelined-op bound; overflow is shed
                           with a typed `overloaded` response [default: 256]
    --max-line BYTES       per-request line cap [default: 1048576]
    --listen ADDR          serve a TCP listener (nonblocking event loop,
                           many concurrent clients) instead of stdin/stdout
    --socket PATH          serve a Unix socket instead of stdin/stdout
    --help                 print this help

ENVIRONMENT:
    SERVE_KILL_AFTER_RECORDS=N  exit 42 after the Nth store append (crash drill)
    STUDY_JOBS=N                default for --jobs
    SERVE_FAULT_SEED=N          seed for the deterministic chaos plan
    SERVE_FAULT_NET_RATE=P      per-I/O-call fault probability (short reads/
                                writes, EINTR/WouldBlock storms)
    SERVE_FAULT_DROP_RATE=P     per-connection mid-stream drop probability
    SERVE_FAULT_ACCEPT_RATE=P   per-connection accept-refusal probability
    SERVE_FAULT_DISK_RATE=P     per-append store fault probability
    SERVE_FAULT_DISK_KIND=K     write | fsync | torn | mix [default: mix]

One JSON request per line. Sessions start at clustered-smp/serve/v1
(one response line per request); `hello` upgrades to v2, which adds
`batch` and the streaming `cursor` op. See DESIGN.md §12.
";

struct Args {
    store: String,
    shards: usize,
    store_budget: Option<u64>,
    jobs: Option<usize>,
    queue: usize,
    op_budget: usize,
    max_line: usize,
    listen: Option<String>,
    socket: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut store = None;
    let mut shards = DEFAULT_SHARDS;
    let mut store_budget = None;
    let mut jobs = None;
    let mut queue = DEFAULT_QUEUE;
    let mut op_budget = DEFAULT_OP_BUDGET;
    let mut max_line = DEFAULT_MAX_LINE;
    let mut listen = None;
    let mut socket = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--store" => store = Some(value("--store")?),
            "--shards" => {
                shards = value("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=256).contains(&n))
                    .ok_or("--shards wants an integer in 1..=256")?
            }
            "--store-budget" => {
                store_budget = Some(
                    value("--store-budget")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--store-budget wants a positive byte count")?,
                )
            }
            "--jobs" => {
                jobs = Some(
                    value("--jobs")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--jobs wants a positive integer")?,
                )
            }
            "--queue" => {
                queue = value("--queue")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--queue wants a positive integer")?
            }
            "--op-budget" => {
                op_budget = value("--op-budget")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--op-budget wants a positive integer")?
            }
            "--max-line" => {
                max_line = value("--max-line")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 64)
                    .ok_or("--max-line wants an integer >= 64")?
            }
            "--listen" => listen = Some(value("--listen")?),
            "--socket" => socket = Some(value("--socket")?),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let store = store.ok_or("--store DIR is required (try --help)")?;
    if listen.is_some() && socket.is_some() {
        return Err("--listen and --socket are mutually exclusive".to_string());
    }
    Ok(Args {
        store,
        shards,
        store_budget,
        jobs,
        queue,
        op_budget,
        max_line,
        listen,
        socket,
    })
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let cfg = StoreConfig {
        shards: args.shards,
        byte_budget: args.store_budget,
        mode: KeyMode::Full,
    };
    let store = ResultStore::open_with_config(std::path::Path::new(&args.store), cfg)
        .map_err(|e| format!("opening store {}: {e}", args.store))?;
    if let Ok(v) = std::env::var("SERVE_KILL_AFTER_RECORDS") {
        let n = v
            .parse::<usize>()
            .map_err(|_| "SERVE_KILL_AFTER_RECORDS wants an integer".to_string())?;
        store.set_kill_after(n);
    }
    let opts = ServeOptions {
        jobs: cluster_study::resolve_jobs(args.jobs),
        max_line: args.max_line,
        queue: args.queue,
        op_budget: args.op_budget,
    };
    let state = ServeState::new(store, opts);
    let chaos = IoFaultPlan::from_env();
    if chaos.is_active() {
        state.set_chaos_plan(chaos);
        eprintln!(
            "cluster_serve: chaos plan armed (seed {}, net {}, drop {}, accept {}, disk {})",
            chaos.seed, chaos.net_rate, chaos.drop_rate, chaos.accept_rate, chaos.disk_rate
        );
    }

    if let Some(addr) = &args.listen {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        // Tests bind port 0; print the resolved address so they can
        // find us.
        match listener.local_addr() {
            Ok(local) => eprintln!("cluster_serve: listening on {local}"),
            Err(_) => eprintln!("cluster_serve: listening on {addr}"),
        }
        serve_poll(&Arc::new(state), listener).map_err(|e| format!("event loop: {e}"))
    } else if let Some(path) = &args.socket {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("binding {path}: {e}"))?;
        eprintln!("cluster_serve: listening on {path}");
        serve_unix(&state, listener)
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut r = stdin.lock();
        let mut w = BufWriter::new(stdout.lock());
        serve_connection(&state, &mut r, &mut w)
            .map(|_| ())
            .map_err(|e| format!("stdio transport: {e}"))
    }
}

/// Accepts Unix-socket connections until one requests shutdown,
/// serving them one at a time over the blocking path. TCP gets the
/// multi-client event loop; the Unix transport stays the simple
/// local-pipe escape hatch.
fn serve_unix(
    state: &ServeState,
    listener: std::os::unix::net::UnixListener,
) -> Result<(), String> {
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                // `&UnixStream` is duplex: shared borrows give
                // independent read and write halves.
                let mut r = std::io::BufReader::new(&stream);
                let mut w = &stream;
                match serve_connection(state, &mut r, &mut w) {
                    Ok(true) => return Ok(()),
                    Ok(false) => {}
                    Err(e) => eprintln!("cluster_serve: connection error: {e}"),
                }
            }
            Err(e) => eprintln!("cluster_serve: accept error: {e}"),
        }
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = run(&argv) {
        if msg.is_empty() {
            print!("{USAGE}");
            return;
        }
        eprintln!("cluster_serve: {msg}");
        std::process::exit(2);
    }
}
