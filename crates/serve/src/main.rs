//! `cluster_serve` — the study service binary.
//!
//! Speaks the line-delimited JSON protocol of `DESIGN.md` §12 over
//! stdin/stdout (default), a TCP listener (`--listen`), or a Unix
//! socket (`--socket`), backed by the content-addressed result store
//! in `--store DIR`.
//!
//! `SERVE_KILL_AFTER_RECORDS=N` arms the crash-injection hook: the
//! process exits with code 42 immediately after the Nth store append,
//! which the concurrency suite uses to prove restart recovery.

use std::io::{BufReader, BufWriter};

use cluster_serve::protocol::DEFAULT_MAX_LINE;
use cluster_serve::server::{serve_connection, ServeOptions, ServeState, DEFAULT_QUEUE};
use cluster_serve::store::ResultStore;

const USAGE: &str = "\
cluster_serve — study service with a content-addressed result cache

USAGE:
    cluster_serve --store DIR [OPTIONS]

OPTIONS:
    --store DIR       result store directory (required; created if absent)
    --jobs N          worker threads per run request [default: cores, STUDY_JOBS]
    --queue N         max concurrently executing run requests [default: 4]
    --max-line BYTES  per-request line cap [default: 1048576]
    --listen ADDR     serve a TCP listener instead of stdin/stdout
    --socket PATH     serve a Unix socket instead of stdin/stdout
    --help            print this help

ENVIRONMENT:
    SERVE_KILL_AFTER_RECORDS=N  exit 42 after the Nth store append (crash drill)
    STUDY_JOBS=N                default for --jobs

One JSON request per line; one response line per request. See
DESIGN.md §12 for the request/response schema.
";

struct Args {
    store: String,
    jobs: Option<usize>,
    queue: usize,
    max_line: usize,
    listen: Option<String>,
    socket: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut store = None;
    let mut jobs = None;
    let mut queue = DEFAULT_QUEUE;
    let mut max_line = DEFAULT_MAX_LINE;
    let mut listen = None;
    let mut socket = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--store" => store = Some(value("--store")?),
            "--jobs" => {
                jobs = Some(
                    value("--jobs")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--jobs wants a positive integer")?,
                )
            }
            "--queue" => {
                queue = value("--queue")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--queue wants a positive integer")?
            }
            "--max-line" => {
                max_line = value("--max-line")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 64)
                    .ok_or("--max-line wants an integer >= 64")?
            }
            "--listen" => listen = Some(value("--listen")?),
            "--socket" => socket = Some(value("--socket")?),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let store = store.ok_or("--store DIR is required (try --help)")?;
    if listen.is_some() && socket.is_some() {
        return Err("--listen and --socket are mutually exclusive".to_string());
    }
    Ok(Args {
        store,
        jobs,
        queue,
        max_line,
        listen,
        socket,
    })
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let store = ResultStore::open(std::path::Path::new(&args.store))
        .map_err(|e| format!("opening store {}: {e}", args.store))?;
    if let Ok(v) = std::env::var("SERVE_KILL_AFTER_RECORDS") {
        let n = v
            .parse::<usize>()
            .map_err(|_| "SERVE_KILL_AFTER_RECORDS wants an integer".to_string())?;
        store.set_kill_after(n);
    }
    let opts = ServeOptions {
        jobs: cluster_study::resolve_jobs(args.jobs),
        max_line: args.max_line,
        queue: args.queue,
    };
    let state = ServeState::new(store, opts);

    if let Some(addr) = &args.listen {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        eprintln!("cluster_serve: listening on {addr}");
        serve_listener(&state, listener.incoming())
    } else if let Some(path) = &args.socket {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("binding {path}: {e}"))?;
        eprintln!("cluster_serve: listening on {path}");
        serve_listener(&state, listener.incoming())
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut r = stdin.lock();
        let mut w = BufWriter::new(stdout.lock());
        serve_connection(&state, &mut r, &mut w)
            .map(|_| ())
            .map_err(|e| format!("stdio transport: {e}"))
    }
}

/// Accepts connections until one requests shutdown. Connections are
/// served one at a time: the protocol is request/response and the
/// run pool already spans the machine, so connection-level
/// parallelism would only thrash the worker pool.
fn serve_listener<S>(
    state: &ServeState,
    incoming: impl Iterator<Item = std::io::Result<S>>,
) -> Result<(), String>
where
    for<'a> &'a S: std::io::Read + std::io::Write,
{
    for conn in incoming {
        match conn {
            Ok(stream) => {
                // `&TcpStream` / `&UnixStream` are duplex: shared
                // borrows give independent read and write halves.
                let mut r = BufReader::new(&stream);
                let mut w = &stream;
                match serve_connection(state, &mut r, &mut w) {
                    Ok(true) => return Ok(()),
                    Ok(false) => {}
                    Err(e) => eprintln!("cluster_serve: connection error: {e}"),
                }
            }
            Err(e) => eprintln!("cluster_serve: accept error: {e}"),
        }
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = run(&argv) {
        if msg.is_empty() {
            print!("{USAGE}");
            return;
        }
        eprintln!("cluster_serve: {msg}");
        std::process::exit(2);
    }
}
