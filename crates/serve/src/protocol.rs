//! The `cluster_serve` wire protocol: line-delimited JSON.
//!
//! One request per line, one response line per request, in order.
//! Requests are parsed *strictly* — unknown fields, wrong types,
//! out-of-range values and malformed JSON all produce a typed error
//! response (see [`ErrorKind`]) and never terminate the serve loop.
//! Oversized lines are drained to the next newline and answered with
//! an `oversized` error, so one hostile client line cannot wedge the
//! stream. The full grammar is documented in `DESIGN.md` §12.
//!
//! Every response-body key the server can emit is written in this
//! module and nowhere else; `cluster_check lint`'s schema-sync rule
//! pairs this file against the conformance suite
//! (`crates/serve/tests/protocol.rs`) so the two cannot drift apart
//! silently.

use std::io::{BufRead, Write};

use coherence::config::CacheSpec;
use simcore::Json;
use splash::ProblemSize;

/// Protocol identifier, for logs and future negotiation.
pub const PROTOCOL_SCHEMA: &str = "clustered-smp/serve/v1";

/// Default cap on one request line, in bytes.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// Hard cap on simulated processors per request.
pub const MAX_PROCS: usize = 256;

/// Hard cap on entries in a request's `caches` / `clusters` lists.
pub const MAX_LIST: usize = 16;

/// Typed failure categories carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON.
    Parse,
    /// Valid JSON that violates the request schema.
    Protocol,
    /// The line exceeded the server's line cap.
    Oversized,
    /// The bounded job queue is full; retry later.
    QueueFull,
    /// The requested application is not in the registry.
    UnknownApp,
    /// The server failed internally (e.g. store I/O).
    Internal,
}

impl ErrorKind {
    /// Wire label of this kind.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Oversized => "oversized",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::UnknownApp => "unknown_app",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A request that could not be honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl ProtocolError {
    /// Shorthand constructor.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> ProtocolError {
        ProtocolError {
            kind,
            detail: detail.into(),
        }
    }
}

/// The study cells one `run` request asks for: the cross product of
/// `caches` × `clusters` over a single generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Application name (validated against the registry by the server).
    pub app: String,
    /// Problem size.
    pub size: ProblemSize,
    /// Simulated processors.
    pub procs: usize,
    /// Cache configurations to sweep.
    pub caches: Vec<CacheSpec>,
    /// Cluster sizes to sweep.
    pub clusters: Vec<u32>,
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Simulate (or serve from cache) a matrix of study cells.
    Run(JobSpec),
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Orderly stop: acknowledged, then the connection closes.
    Shutdown,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// Parses a size label.
pub fn parse_size(s: &str) -> Option<ProblemSize> {
    match s {
        "small" => Some(ProblemSize::Small),
        "paper" => Some(ProblemSize::Paper),
        _ => None,
    }
}

/// Parses a cache label: `"inf"` or `"<N>k"` (per-processor KiB).
/// Inverse of [`CacheSpec::label`] over the shapes the study sweeps.
pub fn parse_cache(s: &str) -> Option<CacheSpec> {
    if s == "inf" {
        return Some(CacheSpec::Infinite);
    }
    let kib: u64 = s.strip_suffix('k')?.parse().ok()?;
    if kib == 0 || kib > 1 << 20 {
        return None;
    }
    Some(CacheSpec::PerProcBytes(kib * 1024))
}

fn bad(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::new(ErrorKind::Protocol, detail)
}

fn check_fields(j: &Json, allowed: &[&str], what: &str) -> Result<(), ProtocolError> {
    match j {
        Json::Obj(pairs) => {
            for (k, _) in pairs {
                if !allowed.contains(&k.as_str()) {
                    return Err(bad(format!("unknown {what} field `{k}`")));
                }
            }
            Ok(())
        }
        _ => Err(bad(format!("{what} must be a JSON object"))),
    }
}

fn parse_spec(j: &Json) -> Result<JobSpec, ProtocolError> {
    check_fields(j, &["app", "size", "procs", "caches", "clusters"], "spec")?;
    let app = match j.get("app") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("`app` must be a string"))?
            .to_string(),
        None => return Err(bad("missing required field `app`")),
    };
    if app.is_empty() || app.len() > 64 {
        return Err(bad("`app` must be 1..=64 characters"));
    }
    let size = match j.get("size") {
        Some(v) => {
            let s = v.as_str().ok_or_else(|| bad("`size` must be a string"))?;
            parse_size(s).ok_or_else(|| bad(format!("unknown size `{s}` (small|paper)")))?
        }
        None => ProblemSize::Small,
    };
    let procs = match j.get("procs") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad("`procs` must be an integer"))? as usize,
        None => 8,
    };
    if procs == 0 || procs > MAX_PROCS {
        return Err(bad(format!("`procs` must be 1..={MAX_PROCS}")));
    }
    let caches = match j.get("caches") {
        Some(v) => {
            let xs = v.as_arr().ok_or_else(|| bad("`caches` must be an array"))?;
            if xs.is_empty() || xs.len() > MAX_LIST {
                return Err(bad(format!("`caches` must hold 1..={MAX_LIST} labels")));
            }
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let s = x
                    .as_str()
                    .ok_or_else(|| bad("`caches` entries must be strings"))?;
                out.push(
                    parse_cache(s)
                        .ok_or_else(|| bad(format!("unknown cache label `{s}` (inf|<N>k)")))?,
                );
            }
            out
        }
        None => cluster_study::study::section5_caches(),
    };
    let clusters = match j.get("clusters") {
        Some(v) => {
            let xs = v
                .as_arr()
                .ok_or_else(|| bad("`clusters` must be an array"))?;
            if xs.is_empty() || xs.len() > MAX_LIST {
                return Err(bad(format!("`clusters` must hold 1..={MAX_LIST} sizes")));
            }
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let c = x
                    .as_u64()
                    .ok_or_else(|| bad("`clusters` entries must be integers"))?;
                if c == 0 || c > MAX_PROCS as u64 {
                    return Err(bad(format!("cluster sizes must be 1..={MAX_PROCS}")));
                }
                // The engine requires clusters to tile the machine; an
                // unvalidated size would panic a worker thread.
                if !(procs as u64).is_multiple_of(c) {
                    return Err(bad(format!("cluster size {c} must divide procs ({procs})")));
                }
                out.push(c as u32);
            }
            out
        }
        None => cluster_study::study::CLUSTER_SIZES
            .iter()
            .copied()
            .filter(|&c| procs % c as usize == 0)
            .collect(),
    };
    Ok(JobSpec {
        app,
        size,
        procs,
        caches,
        clusters,
    })
}

/// Parses one request line. Any failure maps to a typed error the
/// serve loop answers with — never a panic, never a dropped stream.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let j = simcore::json::parse(line)
        .map_err(|e| ProtocolError::new(ErrorKind::Parse, e.to_string()))?;
    check_fields(&j, &["op", "id", "spec"], "request")?;
    let id = match j.get("id") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("`id` must be an unsigned integer"))?,
        ),
        None => None,
    };
    let op = j
        .get("op")
        .ok_or_else(|| bad("missing required field `op`"))?
        .as_str()
        .ok_or_else(|| bad("`op` must be a string"))?;
    let op = match op {
        "run" => {
            let spec = j
                .get("spec")
                .ok_or_else(|| bad("op `run` requires a `spec` object"))?;
            Op::Run(parse_spec(spec)?)
        }
        "ping" | "stats" | "shutdown" => {
            if j.get("spec").is_some() {
                return Err(bad(format!("op `{op}` takes no `spec`")));
            }
            match op {
                "ping" => Op::Ping,
                "stats" => Op::Stats,
                _ => Op::Shutdown,
            }
        }
        other => return Err(bad(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, op })
}

/// One served cell in a `run` response.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cache label of this cell.
    pub cache: String,
    /// Cluster size of this cell.
    pub cluster: u32,
    /// Content-addressed store key.
    pub key: String,
    /// True when the cell was served from the result store.
    pub cache_hit: bool,
    /// `"cache"` or `"sim"`.
    pub served_by: &'static str,
    /// The deterministic stats view (`RunRecord::to_json(false)`),
    /// byte-identical between a fresh simulation and a cache hit.
    pub stats: Json,
}

/// Counter snapshot rendered by [`stats_response`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests handled (any op, including failed ones).
    pub requests: u64,
    /// Study cells served (hits + fresh simulations).
    pub cells_served: u64,
    /// Cells served from the result store.
    pub cache_hits: u64,
    /// Cells that ran a fresh simulation.
    pub sims_run: u64,
    /// Traces served from the trace store.
    pub trace_hits: u64,
    /// Traces generated fresh.
    pub trace_gens: u64,
    /// Entries currently in the result store.
    pub store_entries: u64,
}

fn ok_base(id: Option<u64>, op: &str) -> Json {
    let mut j = Json::obj();
    if let Some(id) = id {
        j.push("id", id);
    }
    j.push("ok", true);
    j.push("op", op);
    j
}

/// `ping` acknowledgement.
pub fn pong(id: Option<u64>) -> Json {
    ok_base(id, "ping")
}

/// `shutdown` acknowledgement; the connection closes after this line.
pub fn shutdown_ack(id: Option<u64>) -> Json {
    ok_base(id, "shutdown")
}

/// Error response for any failed request.
pub fn error_response(id: Option<u64>, err: &ProtocolError) -> Json {
    let mut j = Json::obj();
    if let Some(id) = id {
        j.push("id", id);
    }
    j.push("ok", false);
    j.push(
        "error",
        Json::obj()
            .with("kind", err.kind.label())
            .with("detail", err.detail.as_str()),
    );
    j
}

/// Successful `run` response: one entry per requested cell, in
/// `caches` × `clusters` request order.
pub fn run_response(id: Option<u64>, app: &str, cells: &[CellResult]) -> Json {
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    let mut arr = Vec::with_capacity(cells.len());
    for c in cells {
        arr.push(
            Json::obj()
                .with("cache", c.cache.as_str())
                .with("cluster", c.cluster)
                .with("key", c.key.as_str())
                .with("cache_hit", c.cache_hit)
                .with("served_by", c.served_by)
                .with("stats", c.stats.clone()),
        );
    }
    ok_base(id, "run")
        .with("app", app)
        .with("cache_hits", hits)
        .with("sims", cells.len() - hits)
        .with("cells", Json::Arr(arr))
}

/// `stats` response.
pub fn stats_response(id: Option<u64>, s: &ServeStats) -> Json {
    ok_base(id, "stats")
        .with("requests", s.requests)
        .with("cells_served", s.cells_served)
        .with("cache_hits", s.cache_hits)
        .with("sims_run", s.sims_run)
        .with("trace_hits", s.trace_hits)
        .with("trace_gens", s.trace_gens)
        .with("store_entries", s.store_entries)
}

/// One read from the request stream.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (newline stripped). A torn final line at EOF is
    /// also surfaced here, so the parser can answer it with a typed
    /// error instead of dropping it silently.
    Line(String),
    /// A line longer than the cap; the stream has been drained to the
    /// next newline (or EOF) and is safe to keep reading.
    Oversized {
        /// Bytes the line held before the terminator.
        length: usize,
    },
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line, holding at most `max` bytes in
/// memory. Invalid UTF-8 is replaced, never fatal.
pub fn read_bounded_line(r: &mut dyn BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut overflow = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::Oversized { length: total }
            } else if buf.is_empty() && total == 0 {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                buf.extend_from_slice(&chunk[..pos]);
            }
            total += pos;
            r.consume(pos + 1);
            if total > max {
                overflow = true;
            }
            return Ok(if overflow {
                LineRead::Oversized { length: total }
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let n = chunk.len();
        if !overflow {
            buf.extend_from_slice(chunk);
        }
        total += n;
        r.consume(n);
        if total > max {
            overflow = true;
            buf = Vec::new();
        }
    }
}

/// Writes one response line and flushes, so pipelined clients see
/// answers promptly.
pub fn write_response(w: &mut dyn Write, resp: &Json) -> std::io::Result<()> {
    writeln!(w, "{resp}")?;
    w.flush()
}
