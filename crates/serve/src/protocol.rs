//! The `cluster_serve` wire protocol: line-delimited JSON.
//!
//! One request per line; responses come back on the same stream in
//! request order. Requests are parsed *strictly* — unknown fields,
//! wrong types, out-of-range values and malformed JSON all produce a
//! typed error response (see [`ErrorKind`]) and never terminate the
//! serve loop. Oversized lines are drained to the next newline and
//! answered with an `oversized` error, so one hostile client line
//! cannot wedge the stream. The full grammar is documented in
//! `DESIGN.md` §12.
//!
//! Two protocol versions share this surface. Every connection starts
//! in [`ProtoVersion::V1`], where the PR 6 ops (`run`, `ping`,
//! `stats`, `shutdown`) behave byte-identically to the original
//! release. A `hello` handshake naming [`PROTOCOL_SCHEMA_V2`]
//! upgrades the session and unlocks `batch` (many specs, one
//! response line) and `cursor` (per-cell streaming) plus extended
//! `stats` counters.
//!
//! Every response-body key the server can emit is written in this
//! module and nowhere else; `cluster_check lint`'s schema-sync rule
//! pairs this file against the conformance suite
//! (`crates/serve/tests/protocol.rs`) so the two cannot drift apart
//! silently.

use std::io::{BufRead, Write};

use coherence::config::CacheSpec;
use simcore::Json;
use splash::ProblemSize;

/// Protocol identifier of the original (PR 6) surface.
pub const PROTOCOL_SCHEMA: &str = "clustered-smp/serve/v1";

/// Protocol identifier of the negotiated v2 surface.
pub const PROTOCOL_SCHEMA_V2: &str = "clustered-smp/serve/v2";

/// Default cap on one request line, in bytes.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// Hard cap on simulated processors per request.
pub const MAX_PROCS: usize = 256;

/// Hard cap on entries in a request's `caches` / `clusters` /
/// `specs` lists.
pub const MAX_LIST: usize = 16;

/// A negotiated protocol version. Connections start at [`V1`] and
/// may upgrade with a `hello` request; see [`Op::Hello`].
///
/// [`V1`]: ProtoVersion::V1
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoVersion {
    /// The PR 6 surface: `run`/`ping`/`stats`/`shutdown`.
    #[default]
    V1,
    /// Adds `batch`, `cursor` and extended `stats` counters.
    V2,
}

impl ProtoVersion {
    /// Wire schema string of this version.
    pub fn schema(self) -> &'static str {
        match self {
            ProtoVersion::V1 => PROTOCOL_SCHEMA,
            ProtoVersion::V2 => PROTOCOL_SCHEMA_V2,
        }
    }

    /// Parses a schema string offered in a `hello` request.
    pub fn from_schema(s: &str) -> Option<ProtoVersion> {
        match s {
            PROTOCOL_SCHEMA => Some(ProtoVersion::V1),
            PROTOCOL_SCHEMA_V2 => Some(ProtoVersion::V2),
            _ => None,
        }
    }
}

/// Typed failure categories carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON.
    Parse,
    /// Valid JSON that violates the request schema.
    Protocol,
    /// The `op` names no operation in either protocol version.
    UnknownOp,
    /// The line exceeded the server's line cap.
    Oversized,
    /// The bounded job queue is full; retry later.
    QueueFull,
    /// The connection exceeded its pipelined-op budget and this
    /// request was shed; retry later (v2 responses carry a
    /// `retry_after_ms` hint).
    Overloaded,
    /// The requested application is not in the registry.
    UnknownApp,
    /// The server failed internally (e.g. store I/O).
    Internal,
}

impl ErrorKind {
    /// Wire label of this kind.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::UnknownOp => "unknown_op",
            ErrorKind::Oversized => "oversized",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownApp => "unknown_app",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A request that could not be honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable specifics.
    pub detail: String,
    /// Backoff hint for retryable kinds (`queue_full`, `overloaded`);
    /// additive — v1 responses never carry it.
    pub retry_after_ms: Option<u64>,
}

impl ProtocolError {
    /// Shorthand constructor.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> ProtocolError {
        ProtocolError {
            kind,
            detail: detail.into(),
            retry_after_ms: None,
        }
    }

    /// Attaches a backoff hint, rendered as `retry_after_ms` inside
    /// the error object.
    pub fn with_retry_after(mut self, ms: u64) -> ProtocolError {
        self.retry_after_ms = Some(ms);
        self
    }
}

/// The study cells one `run` request asks for: the cross product of
/// `caches` × `clusters` over a single generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Application name (validated against the registry by the server).
    pub app: String,
    /// Problem size.
    pub size: ProblemSize,
    /// Simulated processors.
    pub procs: usize,
    /// Cache configurations to sweep.
    pub caches: Vec<CacheSpec>,
    /// Cluster sizes to sweep.
    pub clusters: Vec<u32>,
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Simulate (or serve from cache) a matrix of study cells.
    Run(JobSpec),
    /// Simulate several specs, answered as one response line
    /// (v2 only).
    Batch(Vec<JobSpec>),
    /// Simulate one spec, streaming each finished cell as its own
    /// response line (v2 only).
    Cursor {
        /// The spec to stream.
        spec: JobSpec,
        /// Resume point: cells with `seq < from` are skipped (their
        /// content-addressed results were already acked downstream).
        /// 0 — the default when the request omits `from` — streams
        /// the whole matrix.
        from: u64,
    },
    /// Negotiate the protocol version for the rest of the session.
    Hello(ProtoVersion),
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Load/degradation probe: queue depth, shed count, fault
    /// counters, store pressure. Available in every version.
    Health,
    /// Orderly stop: acknowledged, then the connection closes.
    Shutdown,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// Parses a size label.
pub fn parse_size(s: &str) -> Option<ProblemSize> {
    match s {
        "small" => Some(ProblemSize::Small),
        "paper" => Some(ProblemSize::Paper),
        _ => None,
    }
}

/// Parses a cache label: `"inf"` or `"<N>k"` (per-processor KiB).
/// Inverse of [`CacheSpec::label`] over the shapes the study sweeps.
pub fn parse_cache(s: &str) -> Option<CacheSpec> {
    if s == "inf" {
        return Some(CacheSpec::Infinite);
    }
    let kib: u64 = s.strip_suffix('k')?.parse().ok()?;
    if kib == 0 || kib > 1 << 20 {
        return None;
    }
    Some(CacheSpec::PerProcBytes(kib * 1024))
}

fn bad(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::new(ErrorKind::Protocol, detail)
}

fn check_fields(j: &Json, allowed: &[&str], what: &str) -> Result<(), ProtocolError> {
    match j {
        Json::Obj(pairs) => {
            for (k, _) in pairs {
                if !allowed.contains(&k.as_str()) {
                    return Err(bad(format!("unknown {what} field `{k}`")));
                }
            }
            Ok(())
        }
        _ => Err(bad(format!("{what} must be a JSON object"))),
    }
}

fn parse_spec(j: &Json) -> Result<JobSpec, ProtocolError> {
    check_fields(j, &["app", "size", "procs", "caches", "clusters"], "spec")?;
    let app = match j.get("app") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("`app` must be a string"))?
            .to_string(),
        None => return Err(bad("missing required field `app`")),
    };
    if app.is_empty() || app.len() > 64 {
        return Err(bad("`app` must be 1..=64 characters"));
    }
    let size = match j.get("size") {
        Some(v) => {
            let s = v.as_str().ok_or_else(|| bad("`size` must be a string"))?;
            parse_size(s).ok_or_else(|| bad(format!("unknown size `{s}` (small|paper)")))?
        }
        None => ProblemSize::Small,
    };
    let procs = match j.get("procs") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad("`procs` must be an integer"))? as usize,
        None => 8,
    };
    if procs == 0 || procs > MAX_PROCS {
        return Err(bad(format!("`procs` must be 1..={MAX_PROCS}")));
    }
    let caches = match j.get("caches") {
        Some(v) => {
            let xs = v.as_arr().ok_or_else(|| bad("`caches` must be an array"))?;
            if xs.is_empty() || xs.len() > MAX_LIST {
                return Err(bad(format!("`caches` must hold 1..={MAX_LIST} labels")));
            }
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let s = x
                    .as_str()
                    .ok_or_else(|| bad("`caches` entries must be strings"))?;
                out.push(
                    parse_cache(s)
                        .ok_or_else(|| bad(format!("unknown cache label `{s}` (inf|<N>k)")))?,
                );
            }
            out
        }
        None => cluster_study::study::section5_caches(),
    };
    let clusters = match j.get("clusters") {
        Some(v) => {
            let xs = v
                .as_arr()
                .ok_or_else(|| bad("`clusters` must be an array"))?;
            if xs.is_empty() || xs.len() > MAX_LIST {
                return Err(bad(format!("`clusters` must hold 1..={MAX_LIST} sizes")));
            }
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let c = x
                    .as_u64()
                    .ok_or_else(|| bad("`clusters` entries must be integers"))?;
                if c == 0 || c > MAX_PROCS as u64 {
                    return Err(bad(format!("cluster sizes must be 1..={MAX_PROCS}")));
                }
                // The engine requires clusters to tile the machine; an
                // unvalidated size would panic a worker thread.
                if !(procs as u64).is_multiple_of(c) {
                    return Err(bad(format!("cluster size {c} must divide procs ({procs})")));
                }
                out.push(c as u32);
            }
            out
        }
        None => cluster_study::study::CLUSTER_SIZES
            .iter()
            .copied()
            .filter(|&c| procs % c as usize == 0)
            .collect(),
    };
    Ok(JobSpec {
        app,
        size,
        procs,
        caches,
        clusters,
    })
}

/// Rejects payload fields an op does not take. `spec`, `specs`,
/// `schema` and `from` are all legal *request* fields, but each
/// belongs to specific ops; carrying one elsewhere is a schema
/// violation.
fn reject_extras(j: &Json, op: &str, takes: &[&str]) -> Result<(), ProtocolError> {
    for field in ["spec", "specs", "schema", "from"] {
        if j.get(field).is_some() && !takes.contains(&field) {
            return Err(bad(format!("op `{op}` takes no `{field}`")));
        }
    }
    Ok(())
}

fn required<'a>(j: &'a Json, op: &str, field: &str, what: &str) -> Result<&'a Json, ProtocolError> {
    j.get(field)
        .ok_or_else(|| bad(format!("op `{op}` requires a `{field}` {what}")))
}

/// Parses one request line. Any failure maps to a typed error the
/// serve loop answers with — never a panic, never a dropped stream.
///
/// Parsing is version-independent: `batch` and `cursor` parse under
/// a v1 session too, and the server rejects them *after* parsing if
/// the session has not negotiated v2. An op name neither version
/// knows yields [`ErrorKind::UnknownOp`], not shutdown semantics.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let j = simcore::json::parse(line)
        .map_err(|e| ProtocolError::new(ErrorKind::Parse, e.to_string()))?;
    check_fields(
        &j,
        &["op", "id", "spec", "specs", "schema", "from"],
        "request",
    )?;
    let id = match j.get("id") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("`id` must be an unsigned integer"))?,
        ),
        None => None,
    };
    let op = j
        .get("op")
        .ok_or_else(|| bad("missing required field `op`"))?
        .as_str()
        .ok_or_else(|| bad("`op` must be a string"))?;
    let op = match op {
        "run" => {
            reject_extras(&j, op, &["spec"])?;
            Op::Run(parse_spec(required(&j, op, "spec", "object")?)?)
        }
        "cursor" => {
            reject_extras(&j, op, &["spec", "from"])?;
            let from = match j.get("from") {
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad("`from` must be an unsigned integer"))?,
                None => 0,
            };
            Op::Cursor {
                spec: parse_spec(required(&j, op, "spec", "object")?)?,
                from,
            }
        }
        "batch" => {
            reject_extras(&j, op, &["specs"])?;
            let xs = required(&j, op, "specs", "array")?
                .as_arr()
                .ok_or_else(|| bad("`specs` must be an array"))?;
            if xs.is_empty() || xs.len() > MAX_LIST {
                return Err(bad(format!(
                    "`specs` must hold 1..={MAX_LIST} spec objects"
                )));
            }
            let mut specs = Vec::with_capacity(xs.len());
            for x in xs {
                specs.push(parse_spec(x)?);
            }
            Op::Batch(specs)
        }
        "hello" => {
            reject_extras(&j, op, &["schema"])?;
            let s = required(&j, op, "schema", "string")?
                .as_str()
                .ok_or_else(|| bad("`schema` must be a string"))?;
            let v = ProtoVersion::from_schema(s).ok_or_else(|| {
                bad(format!(
                    "unsupported schema `{s}` ({PROTOCOL_SCHEMA}|{PROTOCOL_SCHEMA_V2})"
                ))
            })?;
            Op::Hello(v)
        }
        "ping" | "stats" | "health" | "shutdown" => {
            reject_extras(&j, op, &[])?;
            match op {
                "ping" => Op::Ping,
                "stats" => Op::Stats,
                "health" => Op::Health,
                _ => Op::Shutdown,
            }
        }
        other => {
            return Err(ProtocolError::new(
                ErrorKind::UnknownOp,
                format!("unknown op `{other}`"),
            ))
        }
    };
    Ok(Request { id, op })
}

/// One served cell in a `run`, `batch` or `cursor` response.
///
/// Built with [`CellResult::new`] (required fields) plus the
/// builder-style refinements [`served_from_cache`] and
/// [`with_journal`]; fields are private so every construction names
/// what it must.
///
/// [`served_from_cache`]: CellResult::served_from_cache
/// [`with_journal`]: CellResult::with_journal
#[derive(Debug, Clone)]
pub struct CellResult {
    cache: String,
    cluster: u32,
    key: String,
    cache_hit: bool,
    served_by: &'static str,
    stats: Json,
    journal: Option<Json>,
}

impl CellResult {
    /// A freshly simulated cell (`served_by: "sim"`). `stats` is the
    /// deterministic stats view (`RunRecord::to_json(false)`),
    /// byte-identical between a fresh simulation and a cache hit.
    pub fn new(
        cache: impl Into<String>,
        cluster: u32,
        key: impl Into<String>,
        stats: Json,
    ) -> CellResult {
        CellResult {
            cache: cache.into(),
            cluster,
            key: key.into(),
            cache_hit: false,
            served_by: "sim",
            stats,
            journal: None,
        }
    }

    /// Marks the cell as answered from the result store.
    pub fn served_from_cache(mut self) -> CellResult {
        self.cache_hit = true;
        self.served_by = "cache";
        self
    }

    /// Attaches the full journal-entry document (v2 cursor cells
    /// carry it so clients can prefill their own stores).
    pub fn with_journal(mut self, journal: Json) -> CellResult {
        self.journal = Some(journal);
        self
    }

    /// Cache label of this cell.
    pub fn cache(&self) -> &str {
        &self.cache
    }

    /// Cluster size of this cell.
    pub fn cluster(&self) -> u32 {
        self.cluster
    }

    /// Content-addressed store key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// True when the cell was served from the result store.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// `"cache"` or `"sim"`.
    pub fn served_by(&self) -> &'static str {
        self.served_by
    }

    /// The deterministic stats view.
    pub fn stats(&self) -> &Json {
        &self.stats
    }
}

/// Counter snapshot rendered by [`Response::Stats`]. Built with
/// [`ServeStats::new`] (the required request/cell counters) plus the
/// builder-style [`traces`], [`store`], [`eviction`] and [`faults`]
/// refinements.
///
/// [`traces`]: ServeStats::traces
/// [`store`]: ServeStats::store
/// [`eviction`]: ServeStats::eviction
/// [`faults`]: ServeStats::faults
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    requests: u64,
    cells_served: u64,
    cache_hits: u64,
    sims_run: u64,
    trace_hits: u64,
    trace_gens: u64,
    store_entries: u64,
    store_bytes: u64,
    evictions: u64,
    compactions: u64,
    shards: u64,
    shed: u64,
    net_faults: u64,
    disk_faults: u64,
    append_failures: u64,
}

impl ServeStats {
    /// Required counters: requests handled (any op, including failed
    /// ones), study cells served, cache hits, fresh simulations.
    pub fn new(requests: u64, cells_served: u64, cache_hits: u64, sims_run: u64) -> ServeStats {
        ServeStats {
            requests,
            cells_served,
            cache_hits,
            sims_run,
            ..ServeStats::default()
        }
    }

    /// Trace-store counters: hits and fresh generations.
    pub fn traces(mut self, hits: u64, gens: u64) -> ServeStats {
        self.trace_hits = hits;
        self.trace_gens = gens;
        self
    }

    /// Result-store shape: live entries, on-disk bytes, shard count.
    pub fn store(mut self, entries: u64, bytes: u64, shards: u64) -> ServeStats {
        self.store_entries = entries;
        self.store_bytes = bytes;
        self.shards = shards;
        self
    }

    /// Eviction/compaction counters.
    pub fn eviction(mut self, evictions: u64, compactions: u64) -> ServeStats {
        self.evictions = evictions;
        self.compactions = compactions;
        self
    }

    /// Degradation counters: requests shed under overload, injected
    /// network faults, injected disk faults, and appends that failed
    /// to reach disk durably (injected or real).
    pub fn faults(
        mut self,
        shed: u64,
        net_faults: u64,
        disk_faults: u64,
        append_failures: u64,
    ) -> ServeStats {
        self.shed = shed;
        self.net_faults = net_faults;
        self.disk_faults = disk_faults;
        self.append_failures = append_failures;
        self
    }

    /// Requests handled (any op, including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Study cells served (hits + fresh simulations).
    pub fn cells_served(&self) -> u64 {
        self.cells_served
    }

    /// Cells served from the result store.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Cells that ran a fresh simulation.
    pub fn sims_run(&self) -> u64 {
        self.sims_run
    }

    /// Entries currently in the result store.
    pub fn store_entries(&self) -> u64 {
        self.store_entries
    }

    /// Bytes the result store holds on disk.
    pub fn store_bytes(&self) -> u64 {
        self.store_bytes
    }

    /// Entries evicted under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Shard-journal compaction rewrites.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Requests shed under the per-connection op budget.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Injected network faults (shorts, storms, drops, refusals).
    pub fn net_faults(&self) -> u64 {
        self.net_faults
    }

    /// Injected disk faults.
    pub fn disk_faults(&self) -> u64 {
        self.disk_faults
    }

    /// Appends that failed to reach disk durably.
    pub fn append_failures(&self) -> u64 {
        self.append_failures
    }
}

/// One spec's worth of cells inside a `batch` response.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Application name of this spec.
    pub app: String,
    /// Served cells, in `caches` × `clusters` request order.
    pub cells: Vec<CellResult>,
}

/// Every line the server can write, rendered by one [`to_json`].
///
/// The v1 shapes (`Pong`, `ShutdownAck`, `Error`, `Run`, and `Stats`
/// under [`ProtoVersion::V1`]) are byte-identical to the PR 6
/// free-function writers they replace.
///
/// [`to_json`]: Response::to_json
#[derive(Debug, Clone)]
pub enum Response {
    /// `ping` acknowledgement.
    Pong {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// `shutdown` acknowledgement; the connection closes after this
    /// line.
    ShutdownAck {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// `hello` acknowledgement carrying the negotiated schema.
    Hello {
        /// Echoed request id.
        id: Option<u64>,
        /// The version now in force for the session.
        version: ProtoVersion,
    },
    /// Any failed request.
    Error {
        /// Echoed request id, when one could be recovered.
        id: Option<u64>,
        /// What went wrong.
        err: ProtocolError,
    },
    /// Successful `run`: one entry per requested cell, in `caches` ×
    /// `clusters` request order.
    Run {
        /// Echoed request id.
        id: Option<u64>,
        /// Application name.
        app: String,
        /// Served cells.
        cells: Vec<CellResult>,
    },
    /// Successful `batch`: one job per spec, in request order.
    Batch {
        /// Echoed request id.
        id: Option<u64>,
        /// Per-spec results.
        jobs: Vec<BatchJob>,
    },
    /// `stats` snapshot. V1 sessions see exactly the PR 6 counters;
    /// v2 sessions additionally get store bytes/eviction/shard
    /// counters.
    Stats {
        /// Echoed request id.
        id: Option<u64>,
        /// The counters.
        stats: ServeStats,
        /// Controls whether extended counters are emitted.
        version: ProtoVersion,
    },
    /// First line of a `cursor` stream: announces the cell count.
    CursorStart {
        /// Echoed request id.
        id: Option<u64>,
        /// Application name.
        app: String,
        /// Cells the stream will attempt.
        total: u64,
    },
    /// One streamed cell (op `cell`), tagged with its position.
    CursorCell {
        /// Echoed request id.
        id: Option<u64>,
        /// 0-based position in `caches` × `clusters` request order.
        seq: u64,
        /// The cell.
        cell: CellResult,
    },
    /// Final line of a `cursor` stream (op `cursor_done`).
    CursorDone {
        /// Echoed request id.
        id: Option<u64>,
        /// Cells in the full matrix (skipped ones included).
        cells: u64,
        /// Cells served from the store.
        cache_hits: u64,
        /// Cells freshly simulated.
        sims: u64,
        /// Cells that failed (each was reported as an inline error
        /// line before `cursor_done`).
        failed: u64,
        /// Cells skipped by a resume `from` (the `skipped` key is
        /// emitted only when nonzero, keeping from-0 streams
        /// byte-identical to their pre-resume shape).
        skipped: u64,
    },
    /// `health` probe answer: load and degradation counters.
    Health {
        /// Echoed request id.
        id: Option<u64>,
        /// Run requests executing right now.
        active: u64,
        /// Max concurrently executing run requests.
        queue: u64,
        /// Requests shed under the per-connection op budget.
        shed: u64,
        /// Injected network faults.
        net_faults: u64,
        /// Injected disk faults.
        disk_faults: u64,
        /// Appends that failed to reach disk durably.
        append_failures: u64,
        /// Entries in the result store.
        store_entries: u64,
        /// Bytes the result store holds on disk.
        store_bytes: u64,
    },
}

fn ok_base(id: Option<u64>, op: &str) -> Json {
    let mut j = Json::obj();
    if let Some(id) = id {
        j.push("id", id);
    }
    j.push("ok", true);
    j.push("op", op);
    j
}

fn cell_json(c: &CellResult) -> Json {
    let mut j = Json::obj()
        .with("cache", c.cache.as_str())
        .with("cluster", c.cluster)
        .with("key", c.key.as_str())
        .with("cache_hit", c.cache_hit)
        .with("served_by", c.served_by)
        .with("stats", c.stats.clone());
    if let Some(journal) = &c.journal {
        j.push("journal", journal.clone());
    }
    j
}

fn job_json(app: &str, cells: &[CellResult]) -> Json {
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    let mut arr = Vec::with_capacity(cells.len());
    for c in cells {
        arr.push(cell_json(c));
    }
    Json::obj()
        .with("app", app)
        .with("cache_hits", hits)
        .with("sims", cells.len() - hits)
        .with("cells", Json::Arr(arr))
}

impl Response {
    /// Renders this response as its wire JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong { id } => ok_base(*id, "ping"),
            Response::ShutdownAck { id } => ok_base(*id, "shutdown"),
            Response::Hello { id, version } => {
                ok_base(*id, "hello").with("schema", version.schema())
            }
            Response::Error { id, err } => {
                let mut j = Json::obj();
                if let Some(id) = id {
                    j.push("id", *id);
                }
                j.push("ok", false);
                let mut e = Json::obj()
                    .with("kind", err.kind.label())
                    .with("detail", err.detail.as_str());
                if let Some(ms) = err.retry_after_ms {
                    e.push("retry_after_ms", ms);
                }
                j.push("error", e);
                j
            }
            Response::Run { id, app, cells } => {
                // Flatten the single job into the v1 shape: the keys
                // live directly on the response line.
                let job = job_json(app, cells);
                let mut j = ok_base(*id, "run");
                if let Json::Obj(pairs) = job {
                    for (k, v) in pairs {
                        j.push(&k, v);
                    }
                }
                j
            }
            Response::Batch { id, jobs } => {
                let mut arr = Vec::with_capacity(jobs.len());
                for job in jobs {
                    arr.push(job_json(&job.app, &job.cells));
                }
                ok_base(*id, "batch").with("jobs", Json::Arr(arr))
            }
            Response::Stats { id, stats, version } => {
                let mut j = ok_base(*id, "stats")
                    .with("requests", stats.requests)
                    .with("cells_served", stats.cells_served)
                    .with("cache_hits", stats.cache_hits)
                    .with("sims_run", stats.sims_run)
                    .with("trace_hits", stats.trace_hits)
                    .with("trace_gens", stats.trace_gens)
                    .with("store_entries", stats.store_entries);
                if *version == ProtoVersion::V2 {
                    j.push("store_bytes", stats.store_bytes);
                    j.push("evictions", stats.evictions);
                    j.push("compactions", stats.compactions);
                    j.push("shards", stats.shards);
                    j.push("shed", stats.shed);
                    j.push("net_faults", stats.net_faults);
                    j.push("disk_faults", stats.disk_faults);
                    j.push("append_failures", stats.append_failures);
                }
                j
            }
            Response::CursorStart { id, app, total } => ok_base(*id, "cursor")
                .with("app", app.as_str())
                .with("total", *total),
            Response::CursorCell { id, seq, cell } => ok_base(*id, "cell")
                .with("seq", *seq)
                .with("cell", cell_json(cell)),
            Response::CursorDone {
                id,
                cells,
                cache_hits,
                sims,
                failed,
                skipped,
            } => {
                let mut j = ok_base(*id, "cursor_done")
                    .with("cells", *cells)
                    .with("cache_hits", *cache_hits)
                    .with("sims", *sims)
                    .with("failed", *failed);
                if *skipped > 0 {
                    j.push("skipped", *skipped);
                }
                j
            }
            Response::Health {
                id,
                active,
                queue,
                shed,
                net_faults,
                disk_faults,
                append_failures,
                store_entries,
                store_bytes,
            } => ok_base(*id, "health")
                .with("active", *active)
                .with("queue", *queue)
                .with("shed", *shed)
                .with("net_faults", *net_faults)
                .with("disk_faults", *disk_faults)
                .with("append_failures", *append_failures)
                .with("store_entries", *store_entries)
                .with("store_bytes", *store_bytes),
        }
    }
}

/// `ping` acknowledgement.
#[deprecated(note = "use `Response::Pong { id }.to_json()`")]
pub fn pong(id: Option<u64>) -> Json {
    Response::Pong { id }.to_json()
}

/// `shutdown` acknowledgement; the connection closes after this line.
#[deprecated(note = "use `Response::ShutdownAck { id }.to_json()`")]
pub fn shutdown_ack(id: Option<u64>) -> Json {
    Response::ShutdownAck { id }.to_json()
}

/// Error response for any failed request.
#[deprecated(note = "use `Response::Error { id, err }.to_json()`")]
pub fn error_response(id: Option<u64>, err: &ProtocolError) -> Json {
    Response::Error {
        id,
        err: err.clone(),
    }
    .to_json()
}

/// Successful `run` response.
#[deprecated(note = "use `Response::Run { id, app, cells }.to_json()`")]
pub fn run_response(id: Option<u64>, app: &str, cells: &[CellResult]) -> Json {
    Response::Run {
        id,
        app: app.to_string(),
        cells: cells.to_vec(),
    }
    .to_json()
}

/// `stats` response (v1 shape).
#[deprecated(note = "use `Response::Stats { id, stats, version }.to_json()`")]
pub fn stats_response(id: Option<u64>, s: &ServeStats) -> Json {
    Response::Stats {
        id,
        stats: *s,
        version: ProtoVersion::V1,
    }
    .to_json()
}

/// One read from the request stream.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (newline stripped; one trailing `\r` is also
    /// stripped, so CRLF clients work). A torn final line at EOF is
    /// also surfaced here, so the parser can answer it with a typed
    /// error instead of dropping it silently.
    Line(String),
    /// A line longer than the cap; the stream has been drained to the
    /// next newline (or EOF) and is safe to keep reading.
    Oversized {
        /// Bytes the line held before the terminator.
        length: usize,
    },
    /// End of stream.
    Eof,
}

fn finish_line(buf: &mut Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    LineRead::Line(String::from_utf8_lossy(buf).into_owned())
}

/// Incremental line accumulator for nonblocking transports.
///
/// The poll loop feeds whatever bytes a readiness wakeup produced;
/// complete lines come out as [`LineRead`] events with exactly the
/// [`read_bounded_line`] semantics (byte cap counted before the
/// newline, CRLF stripped, oversized lines swallowed until their
/// terminating newline so the stream never desyncs). Partial lines
/// persist across `feed` calls until their newline arrives.
#[derive(Debug)]
pub struct LineAccum {
    max: usize,
    buf: Vec<u8>,
    total: usize,
    overflow: bool,
}

impl LineAccum {
    /// An empty accumulator with a `max`-byte line cap.
    pub fn new(max: usize) -> LineAccum {
        LineAccum {
            max,
            buf: Vec::new(),
            total: 0,
            overflow: false,
        }
    }

    /// Consumes one chunk of stream bytes, returning every line event
    /// it completes (never [`LineRead::Eof`]).
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<LineRead> {
        let mut out = Vec::new();
        for &b in chunk {
            if b == b'\n' {
                out.push(if self.overflow {
                    LineRead::Oversized { length: self.total }
                } else {
                    finish_line(&mut self.buf)
                });
                self.buf.clear();
                self.total = 0;
                self.overflow = false;
            } else {
                self.total += 1;
                if !self.overflow {
                    self.buf.push(b);
                    if self.total > self.max {
                        self.overflow = true;
                        self.buf.clear();
                    }
                }
            }
        }
        out
    }

    /// Surfaces a torn (unterminated) final line at EOF, if any, and
    /// resets the accumulator.
    pub fn finish(&mut self) -> Option<LineRead> {
        let ev = if self.overflow {
            Some(LineRead::Oversized { length: self.total })
        } else if self.total == 0 {
            None
        } else {
            Some(finish_line(&mut self.buf))
        };
        self.buf.clear();
        self.total = 0;
        self.overflow = false;
        ev
    }

    /// True when no partial line is pending.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Reads one `\n`-terminated line, holding at most `max` bytes in
/// memory. Invalid UTF-8 is replaced, never fatal. One trailing `\r`
/// is stripped.
pub fn read_bounded_line(r: &mut dyn BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut overflow = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::Oversized { length: total }
            } else if buf.is_empty() && total == 0 {
                LineRead::Eof
            } else {
                finish_line(&mut buf)
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                buf.extend_from_slice(&chunk[..pos]);
            }
            total += pos;
            r.consume(pos + 1);
            if total > max {
                overflow = true;
            }
            return Ok(if overflow {
                LineRead::Oversized { length: total }
            } else {
                finish_line(&mut buf)
            });
        }
        let n = chunk.len();
        if !overflow {
            buf.extend_from_slice(chunk);
        }
        total += n;
        r.consume(n);
        if total > max {
            overflow = true;
            buf = Vec::new();
        }
    }
}

/// Writes one response line and flushes, so pipelined clients see
/// answers promptly.
pub fn write_response(w: &mut dyn Write, resp: &Json) -> std::io::Result<()> {
    writeln!(w, "{resp}")?;
    w.flush()
}
