//! `cluster_serve`: a long-lived study service in front of the
//! clustering study's executor, with a content-addressed result cache.
//!
//! A sweep like the paper's Section 5 matrix re-simulates nothing
//! that has ever been simulated before under the same inputs: every
//! finished cell is recorded in an on-disk store keyed by a stable
//! hash of `(app, size, procs, cache, cluster, seed scheme)`, and a
//! re-submitted cell is served from the store byte-identically to a
//! fresh run — with a `cache_hit` marker so clients and manifests can
//! tell the difference. Traces are memoized in memory by
//! `(app, size, procs)`, so sweeps that vary only the cluster
//! configuration never regenerate them.
//!
//! * [`protocol`] — the line-delimited JSON request/response schema,
//!   strict parsing, typed error kinds, bounded line reading.
//! * [`store`] — the content-addressed [`store::ResultStore`] (JSONL,
//!   torn-tail recovery, single-flight dogpile breaking) and the
//!   in-memory [`store::TraceStore`].
//! * [`server`] — [`server::ServeState`] and the panic-free
//!   [`server::serve_connection`] loop that binds them together.
//!
//! The binary (`cluster_serve`) speaks the protocol over
//! stdin/stdout, a TCP listener, or a Unix socket; `paper_run
//! --cache DIR` uses the same store in-process as a client-side
//! memo. Protocol and layout are documented in `DESIGN.md` §12, and
//! every behavior above is pinned by the serving-layer test suite in
//! `crates/serve/tests/`.

pub mod protocol;
pub mod server;
pub mod store;

pub use protocol::{
    parse_request, ErrorKind, JobSpec, Op, ProtocolError, Request, DEFAULT_MAX_LINE,
    PROTOCOL_SCHEMA,
};
pub use server::{serve_connection, ServeOptions, ServeState, DEFAULT_QUEUE};
pub use store::{
    cell_key, cell_key_sampled, scan_store, size_label, KeyMode, ResultStore, StoreEntry,
    StoreError, TraceStore, KILL_EXIT_CODE, STORE_FILE, STORE_SCHEMA,
};
