//! `cluster_serve`: a long-lived study service in front of the
//! clustering study's executor, with a content-addressed result cache.
//!
//! A sweep like the paper's Section 5 matrix re-simulates nothing
//! that has ever been simulated before under the same inputs: every
//! finished cell is recorded in an on-disk store keyed by a stable
//! hash of `(app, size, procs, cache, cluster, seed scheme)`, and a
//! re-submitted cell is served from the store byte-identically to a
//! fresh run — with a `cache_hit` marker so clients and manifests can
//! tell the difference. Traces are memoized in memory by
//! `(app, size, procs)`, so sweeps that vary only the cluster
//! configuration never regenerate them.
//!
//! * [`protocol`] — the line-delimited JSON request/response surface
//!   (v1 and the negotiated `clustered-smp/serve/v2`), strict
//!   parsing, the [`protocol::Response`] enum, typed error kinds,
//!   bounded line reading for blocking ([`protocol::read_bounded_line`])
//!   and nonblocking ([`protocol::LineAccum`]) transports.
//! * [`store`] — the sharded content-addressed [`store::ResultStore`]
//!   (JSONL shards, torn-tail recovery, per-shard single-flight,
//!   LRU-by-last-served eviction with journal-rewrite compaction)
//!   and the in-memory [`store::TraceStore`].
//! * [`server`] — [`server::ServeState`], per-connection
//!   [`server::Session`] version state, and the panic-free dispatch
//!   shared by every transport.
//! * [`event_loop`] — the nonblocking poll-based TCP loop
//!   ([`event_loop::serve_poll`]) multiplexing many clients over the
//!   worker pool with explicit backpressure.
//! * [`client`] — a typed TCP client ([`client::ServeClient`]) used
//!   by `paper_run --serve`, the soak harness, and the test suites,
//!   with socket deadlines, seeded-jitter retry, transparent
//!   reconnect, and cursor resume ([`client::ClientConfig`]).
//! * [`chaos`] — deterministic socket-level fault injection
//!   ([`chaos::ChaosStream`]) driven by `simcore`'s seeded
//!   [`simcore::fault::IoFaultPlan`] (`SERVE_FAULT_*`).
//!
//! The binary (`cluster_serve`) speaks the protocol over
//! stdin/stdout, a TCP listener (nonblocking event loop), or a Unix
//! socket; `paper_run --cache DIR` uses the same store in-process as
//! a client-side memo. Protocol and layout are documented in
//! `DESIGN.md` §12, and every behavior above is pinned by the
//! serving-layer test suite in `crates/serve/tests/`.

pub mod chaos;
pub mod client;
pub mod event_loop;
pub mod protocol;
pub mod server;
pub mod store;

pub use chaos::{ChaosCounters, ChaosStream};
pub use client::{ClientConfig, ClientError, CursorSummary, ServeClient};
pub use event_loop::{serve_poll, OUTBOX_HIGH_WATERMARK};
pub use protocol::{
    parse_request, ErrorKind, JobSpec, LineAccum, Op, ProtoVersion, ProtocolError, Request,
    Response, DEFAULT_MAX_LINE, PROTOCOL_SCHEMA, PROTOCOL_SCHEMA_V2,
};
pub use server::{serve_connection, ServeOptions, ServeState, Session, DEFAULT_QUEUE};
pub use store::{
    cell_key, cell_key_sampled, scan_store, scan_store_dir, shard_file_name, size_label, KeyMode,
    ResultStore, StoreConfig, StoreEntry, StoreError, TraceStore, DEFAULT_SHARDS, KILL_EXIT_CODE,
    STORE_FILE, STORE_FILE_V1_BACKUP, STORE_SCHEMA, STORE_SCHEMA_V2,
};
