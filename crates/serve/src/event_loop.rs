//! Nonblocking poll-based TCP event loop.
//!
//! One thread owns every socket: it accepts, reads, parses, answers
//! light ops (`ping`/`stats`/`hello`/`shutdown`/errors) inline, and
//! hands heavy ops (`run`/`batch`/`cursor`) to a per-connection
//! worker thread so hundreds of idle clients cost nothing while the
//! `run_items` pool does the real work. Request order is preserved
//! per connection: at most one worker is in flight per connection,
//! and buffered lines behind it wait their turn.
//!
//! Backpressure is explicit in both directions. A worker that
//! produces faster than the peer drains (a `cursor` against a warm
//! store) blocks in [`Outbox::push`] once the connection's outbox
//! passes its high-watermark; the loop thread never blocks — it
//! simply stops reading from (and parsing for) connections whose
//! outbox is above the watermark, which in turn stalls the peer's
//! TCP window. Everything here is panic-free (no-panic lint applies
//! to this file).

use std::collections::VecDeque;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use simcore::Json;

use crate::chaos::ChaosStream;
use crate::protocol::{parse_request, LineAccum, LineRead, Op};
use crate::server::{dispatch_heavy, lenient_id, ServeState, Session};

/// Outbox high-watermark: a worker pushing response lines blocks once
/// this many bytes are queued unwritten, and the loop stops reading
/// request bytes from the connection until it drains below it.
pub const OUTBOX_HIGH_WATERMARK: usize = 4 << 20;

/// How long the loop sleeps when a full pass made no progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Bytes read per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct OutboxInner {
    queue: VecDeque<Vec<u8>>,
    bytes: usize,
    closed: bool,
}

/// The queue of serialized response lines between a worker thread and
/// the loop thread.
struct Outbox {
    inner: Mutex<OutboxInner>,
    space: Condvar,
}

impl Outbox {
    fn new() -> Arc<Outbox> {
        Arc::new(Outbox {
            inner: Mutex::new(OutboxInner::default()),
            space: Condvar::new(),
        })
    }

    /// Queues one line, blocking while the outbox is over the
    /// high-watermark. Lines pushed after [`Outbox::close`] are
    /// dropped (the peer is gone; the worker just drains).
    fn push(&self, line: Vec<u8>) {
        let mut g = lock(&self.inner);
        while g.bytes >= OUTBOX_HIGH_WATERMARK && !g.closed {
            g = self.space.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.closed {
            return;
        }
        g.bytes += line.len();
        g.queue.push_back(line);
    }

    /// Moves queued lines into the connection's write buffer, at most
    /// `max` bytes worth, and wakes any worker blocked on space.
    fn drain_into(&self, wr: &mut Vec<u8>, max: usize) {
        let mut g = lock(&self.inner);
        while wr.len() < max {
            match g.queue.pop_front() {
                Some(line) => {
                    g.bytes -= line.len();
                    wr.extend_from_slice(&line);
                }
                None => break,
            }
        }
        drop(g);
        self.space.notify_all();
    }

    fn bytes(&self) -> usize {
        lock(&self.inner).bytes
    }

    fn is_empty(&self) -> bool {
        let g = lock(&self.inner);
        g.queue.is_empty()
    }

    /// Marks the peer gone: pending lines are dropped and future
    /// pushes become no-ops, so a blocked worker always unsticks.
    fn close(&self) {
        let mut g = lock(&self.inner);
        g.closed = true;
        g.queue.clear();
        g.bytes = 0;
        drop(g);
        self.space.notify_all();
    }
}

/// A buffered input line awaiting dispatch, in arrival order.
enum Pending {
    Line(String),
    Oversized(usize),
}

/// Releases a connection's worker slot when the worker thread ends —
/// even by panic (simulation code outside this crate can panic). An
/// abandoned run answers an `internal` error instead of wedging the
/// connection behind a `busy` flag nothing will ever clear.
struct WorkerSlot {
    busy: Arc<AtomicBool>,
    outbox: Arc<Outbox>,
    completed: bool,
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        if !self.completed {
            let resp = crate::protocol::Response::Error {
                id: None,
                err: crate::protocol::ProtocolError::new(
                    crate::protocol::ErrorKind::Internal,
                    "worker thread panicked mid-request",
                ),
            }
            .to_json();
            self.outbox.push(line_bytes(&resp));
        }
        self.busy.store(false, Ordering::SeqCst);
    }
}

struct Conn {
    stream: ChaosStream,
    accum: LineAccum,
    pending: VecDeque<Pending>,
    outbox: Arc<Outbox>,
    /// Write buffer: drained outbox bytes not yet accepted by the
    /// socket.
    wr: Vec<u8>,
    wr_pos: usize,
    session: Session,
    /// True while this connection's worker thread is in flight.
    busy: Arc<AtomicBool>,
    read_eof: bool,
    /// Read error or worker-spawn failure: drop once drained.
    dead: bool,
    /// This connection sent `shutdown`; the loop exits once its
    /// acknowledgment is flushed.
    initiated_shutdown: bool,
}

impl Conn {
    fn new(stream: ChaosStream, max_line: usize) -> Conn {
        Conn {
            stream,
            accum: LineAccum::new(max_line),
            pending: VecDeque::new(),
            outbox: Outbox::new(),
            wr: Vec::new(),
            wr_pos: 0,
            session: Session::new(),
            busy: Arc::new(AtomicBool::new(false)),
            read_eof: false,
            dead: false,
            initiated_shutdown: false,
        }
    }

    fn has_unwritten(&self) -> bool {
        self.wr_pos < self.wr.len() || !self.outbox.is_empty()
    }

    /// Everything parsed, dispatched, and flushed?
    fn finished(&self) -> bool {
        (self.read_eof || self.dead)
            && !self.busy.load(Ordering::SeqCst)
            && self.pending.is_empty()
            && !self.has_unwritten()
    }
}

fn line_bytes(j: &Json) -> Vec<u8> {
    let mut v = j.to_string().into_bytes();
    v.push(b'\n');
    v
}

/// Reads as much as the socket offers. Returns true on progress.
fn pump_read(conn: &mut Conn) -> bool {
    let mut progressed = false;
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_eof = true;
                if let Some(tail) = conn.accum.finish() {
                    match tail {
                        LineRead::Line(l) => conn.pending.push_back(Pending::Line(l)),
                        LineRead::Oversized { length } => {
                            conn.pending.push_back(Pending::Oversized(length))
                        }
                        LineRead::Eof => {}
                    }
                }
                return true;
            }
            Ok(n) => {
                progressed = true;
                for line in conn.accum.feed(&buf[..n]) {
                    match line {
                        LineRead::Line(l) => conn.pending.push_back(Pending::Line(l)),
                        LineRead::Oversized { length } => {
                            conn.pending.push_back(Pending::Oversized(length))
                        }
                        LineRead::Eof => {}
                    }
                }
                // Don't monopolize the loop on one chatty peer.
                if conn.pending.len() >= 256 {
                    return true;
                }
            }
            Err(e) if e.kind() == IoKind::WouldBlock => return progressed,
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                conn.read_eof = true;
                return true;
            }
        }
    }
}

/// Writes as much of the buffered output as the socket accepts.
/// Returns true on progress.
fn pump_write(conn: &mut Conn) -> bool {
    let mut progressed = false;
    loop {
        if conn.wr_pos == conn.wr.len() {
            conn.wr.clear();
            conn.wr_pos = 0;
            conn.outbox.drain_into(&mut conn.wr, OUTBOX_HIGH_WATERMARK);
            if conn.wr.is_empty() {
                return progressed;
            }
        }
        match conn.stream.write(&conn.wr[conn.wr_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.wr_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == IoKind::WouldBlock => return progressed,
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
}

/// Dispatches buffered lines in order until a heavy op takes the
/// connection's worker slot, the outbox passes the watermark, or the
/// buffer runs dry. Returns true if the whole server should shut
/// down once this connection's output is flushed.
fn dispatch_pending(state: &Arc<ServeState>, conn: &mut Conn) -> bool {
    while !conn.busy.load(Ordering::SeqCst)
        && !conn.dead
        && conn.outbox.bytes() < OUTBOX_HIGH_WATERMARK
    {
        let item = match conn.pending.pop_front() {
            Some(p) => p,
            None => return false,
        };
        match item {
            Pending::Oversized(length) => {
                state.note_request();
                conn.outbox.push(line_bytes(&state.oversized(length)));
            }
            Pending::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                state.note_request();
                match parse_request(&line) {
                    Err(e) => {
                        let resp = crate::protocol::Response::Error {
                            id: lenient_id(&line),
                            err: e,
                        }
                        .to_json();
                        conn.outbox.push(line_bytes(&resp));
                    }
                    Ok(req) => match req.op {
                        Op::Run(_) | Op::Batch(_) | Op::Cursor { .. } => {
                            conn.busy.store(true, Ordering::SeqCst);
                            let state = Arc::clone(state);
                            let version = conn.session.version();
                            let outbox = Arc::clone(&conn.outbox);
                            let busy = Arc::clone(&conn.busy);
                            let spawned = std::thread::Builder::new()
                                .name("serve-worker".to_string())
                                .spawn(move || {
                                    let mut slot = WorkerSlot {
                                        busy,
                                        outbox: Arc::clone(&outbox),
                                        completed: false,
                                    };
                                    dispatch_heavy(&state, version, req, &mut |j| {
                                        outbox.push(line_bytes(&j));
                                    });
                                    slot.completed = true;
                                });
                            if let Err(e) = spawned {
                                conn.busy.store(false, Ordering::SeqCst);
                                let resp = crate::protocol::Response::Error {
                                    id: None,
                                    err: crate::protocol::ProtocolError::new(
                                        crate::protocol::ErrorKind::Internal,
                                        format!("spawning worker: {e}"),
                                    ),
                                }
                                .to_json();
                                conn.outbox.push(line_bytes(&resp));
                            }
                            // One heavy op in flight per connection:
                            // later lines wait so responses stay in
                            // request order.
                            return false;
                        }
                        _ => {
                            let mut sess = conn.session;
                            let outbox = Arc::clone(&conn.outbox);
                            let shutdown = state.handle_request(&mut sess, req, &mut |j| {
                                outbox.push(line_bytes(&j));
                            });
                            conn.session = sess;
                            if shutdown {
                                conn.initiated_shutdown = true;
                                return true;
                            }
                        }
                    },
                }
            }
        }
    }
    false
}

/// Serves `listener` with the nonblocking event loop until a client
/// requests an orderly shutdown (its acknowledgment is flushed before
/// the loop returns) or the listener dies.
pub fn serve_poll(state: &Arc<ServeState>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    let mut shutting_down = false;
    let counters = state.chaos_counters();
    let mut next_conn: u64 = 0;

    loop {
        let mut progressed = false;

        // Accept every waiting connection (unless winding down).
        if !shutting_down {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let id = next_conn;
                        next_conn += 1;
                        // Snapshot the plan per accept: each
                        // connection's fault schedule is pinned for
                        // its lifetime.
                        let plan = state.chaos_plan();
                        if plan.refuse_accept(id) {
                            counters.refusals.fetch_add(1, Ordering::Relaxed);
                            drop(stream); // injected accept refusal
                            progressed = true;
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let stream = ChaosStream::new(stream, plan, id, Arc::clone(&counters));
                        conns.push(Conn::new(stream, state.options().max_line));
                        progressed = true;
                    }
                    Err(e) if e.kind() == IoKind::WouldBlock => break,
                    Err(e) if e.kind() == IoKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }

        for conn in conns.iter_mut() {
            // Write first: frees outbox space, unblocks workers.
            progressed |= pump_write(conn);
            // Read only while the peer's output is keeping up.
            if !conn.read_eof && !conn.dead && conn.outbox.bytes() < OUTBOX_HIGH_WATERMARK {
                progressed |= pump_read(conn);
            }
            // Load shedding: a peer that pipelines past its op budget
            // gets the newest overflow answered `overloaded` (with a
            // retry hint) instead of growing unbounded server state.
            while conn.pending.len() > state.options().op_budget {
                match conn.pending.pop_back() {
                    Some(Pending::Line(line)) => {
                        state.note_request();
                        conn.outbox.push(line_bytes(&state.shed_response(&line)));
                        progressed = true;
                    }
                    Some(Pending::Oversized(length)) => {
                        // Answering oversized is already O(1); no need
                        // to reclassify it as overload.
                        state.note_request();
                        conn.outbox.push(line_bytes(&state.oversized(length)));
                        progressed = true;
                    }
                    None => break,
                }
            }
            if !conn.pending.is_empty() {
                let had = conn.pending.len();
                if dispatch_pending(state, conn) {
                    shutting_down = true;
                }
                progressed |= conn.pending.len() != had;
            }
            progressed |= pump_write(conn);
        }

        if shutting_down {
            // The shutdown acknowledgment must reach its peer; other
            // connections are torn down.
            let mut acked = true;
            for conn in conns.iter_mut() {
                if conn.initiated_shutdown && !conn.dead {
                    progressed |= pump_write(conn);
                    acked &= !conn.has_unwritten();
                }
            }
            if acked {
                for conn in conns.iter() {
                    conn.outbox.close();
                }
                return Ok(());
            }
        }

        conns.retain(|c| {
            let done = c.finished() || (c.dead && !c.busy.load(Ordering::SeqCst));
            if done {
                c.outbox.close();
            }
            !done
        });

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
