//! The content-addressed result store and the in-memory trace store.
//!
//! # Result store
//!
//! [`ResultStore`] memoizes finished study cells on disk. The unit of
//! storage is one *cell*: a single simulation of `(app, size, procs,
//! cache, cluster)` under the workspace's deterministic seeding scheme
//! ([`SEED_SCHEME`]). The key is content-addressed: a stable 128-bit
//! FNV-1a hash ([`simcore::stable_key`]) of a canonical JSON document
//! naming every input that can change the result — see [`cell_key`].
//! Anything *not* in the key (wall-clock, jobs, host) must never
//! change simulated statistics; that invariant is what the
//! serving-layer test suite proves end to end.
//!
//! # Shards
//!
//! On disk the store is a directory of `N` JSONL *shard journals*
//! (`shard-000.jsonl` …), each cell routed by an FNV-1a hash of its
//! key. Line 1 of each shard is a header object carrying
//! [`STORE_SCHEMA_V2`] plus the shard index and count; every further
//! line is one [`StoreEntry`] — the key plus the complete
//! [`JournalEntry`] (full `RunStats`, so a cache hit can reproduce the
//! manifest's deterministic view byte for byte). Appends are a single
//! `write(2)` followed by `fdatasync`, exactly like the checkpoint
//! journal, and recovery tolerates exactly one torn *final* line per
//! shard — it is dropped and the shard healed through `write_atomic`;
//! a malformed line anywhere earlier is a hard error. The shard count
//! on disk wins over the configured one, so reopening an existing
//! store with a different [`StoreConfig::shards`] never re-routes
//! keys. A PR 6 single-file store (`store.jsonl`, [`STORE_SCHEMA`])
//! found at open time is migrated into shards and kept as
//! `store.jsonl.v1`.
//!
//! # Eviction
//!
//! With a [`StoreConfig::byte_budget`], each shard holds at most
//! `budget / N` bytes. When an append (or a reopen) pushes a shard
//! over, least-recently-*served* entries are evicted until the shard
//! is comfortably under its slice, and the shard journal is rewritten
//! through `write_atomic` (a *compaction*). Eviction is loss-correct
//! by construction: an evicted cell simply recomputes — and, keys
//! being content addresses, recomputes bit-identically.
//!
//! # Single flight
//!
//! [`ResultStore::serve_cell`] is the dogpile breaker: concurrent
//! requests for the same key produce exactly one simulation. The first
//! caller claims the key in the shard's in-flight set and computes
//! outside the lock; later callers block on the shard's condvar and
//! are served from the freshly recorded entry. A panicking compute
//! releases its claim via a drop guard, so a poisoned cell never
//! wedges other clients.
//!
//! # Key modes
//!
//! [`KeyMode::Truncated`] deliberately shortens keys to a prefix. It
//! exists only as a planted-bug lever for the property suite, which
//! must detect the resulting key collisions and shrink them to a
//! minimal colliding spec pair. Production callers use
//! [`KeyMode::Full`].

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cluster_study::checkpoint::JournalEntry;
use cluster_study::manifest::{write_atomic, SEED_SCHEME};
use simcore::fault::{DiskFault, IoFaultPlan};
use simcore::ops::Trace;
use simcore::{stable_key, Json};
use splash::ProblemSize;

/// Schema identifier on a PR 6 single-file store's header line.
pub const STORE_SCHEMA: &str = "clustered-smp/result-store/v1";

/// Schema identifier on every shard journal's header line.
pub const STORE_SCHEMA_V2: &str = "clustered-smp/result-store/v2";

/// Schema identifier inside every cell key document.
pub const CELL_KEY_SCHEMA: &str = "clustered-smp/cell-key/v1";

/// File name of the legacy (v1) single-file store.
pub const STORE_FILE: &str = "store.jsonl";

/// Name the legacy store file is parked under after shard migration.
pub const STORE_FILE_V1_BACKUP: &str = "store.jsonl.v1";

/// Shard count a fresh store is created with.
pub const DEFAULT_SHARDS: usize = 4;

/// Exit code of the `kill_after` crash-injection hook (the serving
/// analogue of the journal's `STUDY_KILL_AFTER_RECORDS`), shared with
/// the checkpoint journal so harnesses treat both alike.
pub const KILL_EXIT_CODE: i32 = cluster_study::checkpoint::KILL_EXIT_CODE;

/// File name of shard `i` inside the store directory.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:03}.jsonl")
}

/// How cell keys are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyMode {
    /// The full 32-hex-digit stable key. Production mode.
    #[default]
    Full,
    /// Only the first `n` hex digits — a *planted bug* that makes
    /// distinct cells collide, used by the property suite to prove
    /// collisions are caught and shrunk. Never use outside tests.
    Truncated(usize),
}

/// How a [`ResultStore`] is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Shard journals a *fresh* store is split into (an existing
    /// store keeps its on-disk count). Clamped to at least 1.
    pub shards: usize,
    /// Total on-disk byte budget across all shards; `None` grows
    /// without bound (the PR 6 behavior).
    pub byte_budget: Option<u64>,
    /// Key derivation; tests only ever change this.
    pub mode: KeyMode,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            shards: DEFAULT_SHARDS,
            byte_budget: None,
            mode: KeyMode::Full,
        }
    }
}

/// The canonical key document for one study cell. Everything that can
/// change the simulated statistics is named here; nothing else is:
/// app, problem size, processor count, cache spec, cluster size, the
/// seeding scheme — and, for sampled runs, the full sampling
/// configuration (mode, rate, warmup, interval, seed via
/// `SampleSpec::key_label`), so a sampled and a full run of the same
/// cell never alias in the store. A full-trace run (`sampling: None`)
/// omits the field entirely, keeping every pre-sampling key valid.
pub fn cell_key_doc_sampled(
    app: &str,
    size: &str,
    procs: usize,
    cache: &str,
    cluster: u32,
    sampling: Option<&str>,
) -> Json {
    let mut doc = Json::obj()
        .with("schema", CELL_KEY_SCHEMA)
        .with("app", app)
        .with("size", size)
        .with("procs", procs)
        .with("cache", cache)
        .with("cluster", cluster)
        .with("seed_scheme", SEED_SCHEME);
    if let Some(s) = sampling {
        doc.push("sampling", s);
    }
    doc
}

/// [`cell_key_doc_sampled`] for a full-trace (unsampled) cell.
pub fn cell_key_doc(app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> Json {
    cell_key_doc_sampled(app, size, procs, cache, cluster, None)
}

/// The content-addressed key of one study cell under [`KeyMode::Full`],
/// `sampling` being a `SampleSpec::key_label` for sampled runs.
pub fn cell_key_sampled(
    app: &str,
    size: &str,
    procs: usize,
    cache: &str,
    cluster: u32,
    sampling: Option<&str>,
) -> String {
    stable_key(&cell_key_doc_sampled(
        app, size, procs, cache, cluster, sampling,
    ))
}

/// The content-addressed key of one full-trace study cell under
/// [`KeyMode::Full`].
pub fn cell_key(app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> String {
    cell_key_sampled(app, size, procs, cache, cluster, None)
}

/// Label for a [`ProblemSize`], matching the journal header's `size`.
pub fn size_label(size: ProblemSize) -> &'static str {
    match size {
        ProblemSize::Paper => "paper",
        ProblemSize::Small => "small",
    }
}

/// One persisted cell: the content address plus the complete result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Content-addressed cell key (hex).
    pub key: String,
    /// Problem-size label (`"small"` / `"paper"`).
    pub size: String,
    /// Simulated processors.
    pub procs: usize,
    /// The complete result, identical in shape to a journal entry.
    pub cell: JournalEntry,
}

impl StoreEntry {
    /// One JSONL line of a shard journal.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("store_key", self.key.as_str())
            .with("size", self.size.as_str())
            .with("procs", self.procs)
            .with("cell", self.cell.to_json())
    }

    /// Parses one store line.
    pub fn from_json(j: &Json) -> Result<StoreEntry, String> {
        let key = j
            .get("store_key")
            .and_then(Json::as_str)
            .ok_or("missing string field `store_key`")?
            .to_string();
        let size = j
            .get("size")
            .and_then(Json::as_str)
            .ok_or("missing string field `size`")?
            .to_string();
        let procs = j
            .get("procs")
            .and_then(Json::as_u64)
            .ok_or("missing integer field `procs`")? as usize;
        let cell = JournalEntry::from_json(j.get("cell").ok_or("missing object field `cell`")?)?;
        Ok(StoreEntry {
            key,
            size,
            procs,
            cell,
        })
    }
}

/// A store operation that failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// A line that does not parse as the schema demands.
    Malformed {
        /// 1-based line number in the store file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Malformed { line, reason } => {
                write!(f, "store line {line} malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Counters a store exposes for the `stats` op and CI artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Cells served straight from the store.
    pub hits: u64,
    /// Cells that required a fresh simulation.
    pub misses: u64,
    /// Entries currently held (disk + this process's appends).
    pub entries: usize,
    /// On-disk bytes across all shard journals (headers included).
    pub bytes: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Shard-journal compaction rewrites.
    pub compactions: u64,
    /// Shard journals backing the store.
    pub shards: usize,
    /// Disk faults injected by the chaos plan (`SERVE_FAULT_DISK_*`).
    pub disk_faults: u64,
    /// Appends that failed to reach disk durably (injected or real);
    /// each degraded to a memory-only entry instead of an error.
    pub append_failures: u64,
}

struct Slot {
    entry: StoreEntry,
    line_len: u64,
    last_served: u64,
}

struct ShardInner {
    file: File,
    map: HashMap<String, Slot>,
    inflight: HashSet<String>,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    compactions: u64,
    appends: u64,
}

struct Shard {
    idx: usize,
    path: PathBuf,
    header: Json,
    inner: Mutex<ShardInner>,
    done: Condvar,
}

/// The on-disk content-addressed result cache. Thread safe; each
/// shard mutates under its own mutex, with computes running outside
/// it under single-flight claims, so requests for different shards
/// never contend.
pub struct ResultStore {
    dir: PathBuf,
    mode: KeyMode,
    byte_budget: Option<u64>,
    shards: Vec<Shard>,
    clock: AtomicU64,
    appended: AtomicUsize,
    kill_after: AtomicUsize, // 0 = disarmed
    fault: Mutex<IoFaultPlan>,
    disk_faults: AtomicU64,
    append_failures: AtomicU64,
}

/// Recovers poisoned locks: a panic inside a lock scope here can only
/// abandon counters mid-update, never corrupt the on-disk format.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a over the key string routes a cell to its shard. Hashing the
/// key *string* (not the key document) keeps routing well-defined for
/// truncated test keys too.
fn shard_of(key: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

fn shard_header(i: usize, shards: usize) -> Json {
    Json::obj()
        .with("schema", STORE_SCHEMA_V2)
        .with("shard", i)
        .with("shards", shards)
}

fn entry_line(e: &StoreEntry) -> String {
    format!("{}\n", e.to_json())
}

/// Rewrites one shard journal as header + survivors (LRU order, so a
/// reopen reconstructs the same eviction order) and reopens the
/// append handle. The caller updates counters.
fn rewrite_shard(inner: &mut ShardInner, path: &Path, header: &Json) -> Result<(), StoreError> {
    let mut order: Vec<(u64, String)> = inner
        .map
        .iter()
        .map(|(k, s)| (s.last_served, k.clone()))
        .collect();
    order.sort();
    let mut body = format!("{header}\n");
    for (_, key) in &order {
        if let Some(s) = inner.map.get_mut(key) {
            let line = entry_line(&s.entry);
            // A memory-only entry (degraded append, line_len 0) is
            // persisted by this rewrite; refresh its byte accounting.
            s.line_len = line.len() as u64;
            body.push_str(&line);
        }
    }
    write_atomic(path, body.as_bytes())?;
    inner.file = OpenOptions::new().append(true).open(path)?;
    inner.bytes = body.len() as u64;
    inner.compactions += 1;
    Ok(())
}

/// Evicts least-recently-served entries until the shard holds at most
/// `low` bytes (or nothing but its header), then compacts. No-op when
/// already under `high`.
fn enforce_budget(
    inner: &mut ShardInner,
    path: &Path,
    header: &Json,
    high: u64,
    low: u64,
) -> Result<(), StoreError> {
    if inner.bytes <= high || inner.map.is_empty() {
        return Ok(());
    }
    let mut order: Vec<(u64, String)> = inner
        .map
        .iter()
        .map(|(k, s)| (s.last_served, k.clone()))
        .collect();
    order.sort();
    for (_, key) in order {
        if inner.bytes <= low {
            break;
        }
        if let Some(slot) = inner.map.remove(&key) {
            inner.bytes = inner.bytes.saturating_sub(slot.line_len);
            inner.evictions += 1;
        }
    }
    rewrite_shard(inner, path, header)
}

/// Clears a single-flight claim if the compute panics, so waiting
/// clients retry instead of blocking forever.
struct FlightGuard<'a> {
    shard: &'a Shard,
    key: String,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut g = lock(&self.shard.inner);
            g.inflight.remove(&self.key);
            drop(g);
            self.shard.done.notify_all();
        }
    }
}

impl ResultStore {
    /// Opens (or creates) the store in `dir` with production keys and
    /// default sharding, no byte budget.
    pub fn open(dir: &Path) -> Result<ResultStore, StoreError> {
        ResultStore::open_with_config(dir, StoreConfig::default())
    }

    /// Opens the store with an explicit [`KeyMode`]. Only tests pass
    /// anything but [`KeyMode::Full`].
    pub fn open_with_mode(dir: &Path, mode: KeyMode) -> Result<ResultStore, StoreError> {
        ResultStore::open_with_config(
            dir,
            StoreConfig {
                mode,
                ..StoreConfig::default()
            },
        )
    }

    /// Opens the store with full control over sharding and budget.
    pub fn open_with_config(dir: &Path, cfg: StoreConfig) -> Result<ResultStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut on_disk = 0usize;
        while dir.join(shard_file_name(on_disk)).exists() {
            on_disk += 1;
        }
        let shards = if on_disk > 0 {
            on_disk // the on-disk count wins; re-routing keys would orphan entries
        } else {
            let n = cfg.shards.max(1);
            let legacy = dir.join(STORE_FILE);
            let mut buckets: Vec<Vec<StoreEntry>> = (0..n).map(|_| Vec::new()).collect();
            if legacy.exists() {
                let text = std::fs::read_to_string(&legacy)?;
                let (entries, _torn) = scan_store(&text)?;
                for e in entries {
                    buckets[shard_of(&e.key, n)].push(e);
                }
            }
            for (i, bucket) in buckets.iter().enumerate() {
                let mut body = format!("{}\n", shard_header(i, n));
                for e in bucket {
                    body.push_str(&entry_line(e));
                }
                write_atomic(&dir.join(shard_file_name(i)), body.as_bytes())?;
            }
            if legacy.exists() {
                std::fs::rename(&legacy, dir.join(STORE_FILE_V1_BACKUP))?;
            }
            n
        };

        let per_high = cfg.byte_budget.map(|b| (b / shards as u64).max(1));
        let mut clock = 0u64;
        let mut loaded = Vec::with_capacity(shards);
        for i in 0..shards {
            let path = dir.join(shard_file_name(i));
            let header = shard_header(i, shards);
            let text = std::fs::read_to_string(&path)?;
            let (entries, torn) = scan_store(&text)?;
            let mut inner = ShardInner {
                file: OpenOptions::new().append(true).open(&path)?,
                map: HashMap::new(),
                inflight: HashSet::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                compactions: 0,
                appends: 0,
            };
            for e in entries {
                let line_len = entry_line(&e).len() as u64;
                clock += 1;
                inner.map.insert(
                    e.key.clone(),
                    Slot {
                        entry: e,
                        line_len,
                        last_served: clock,
                    },
                );
            }
            if torn {
                // Heal: rewrite the clean prefix atomically, then append.
                rewrite_shard(&mut inner, &path, &header)?;
                inner.compactions = 0; // healing is not a budget compaction
            } else {
                inner.bytes = std::fs::metadata(&path)?.len();
            }
            if let Some(high) = per_high {
                let low = high.saturating_sub(high / 4);
                enforce_budget(&mut inner, &path, &header, high, low)?;
            }
            loaded.push(Shard {
                idx: i,
                path,
                header,
                inner: Mutex::new(inner),
                done: Condvar::new(),
            });
        }
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            mode: cfg.mode,
            byte_budget: cfg.byte_budget,
            shards: loaded,
            clock: AtomicU64::new(clock + 1),
            appended: AtomicUsize::new(0),
            kill_after: AtomicUsize::new(0),
            fault: Mutex::new(IoFaultPlan::disabled()),
            disk_faults: AtomicU64::new(0),
            append_failures: AtomicU64::new(0),
        })
    }

    /// Directory holding the shard journals.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shard journals backing this store.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cell key under this store's [`KeyMode`].
    pub fn key(&self, app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> String {
        self.key_sampled(app, size, procs, cache, cluster, None)
    }

    /// The cell key under this store's [`KeyMode`], for a sampled run
    /// (`sampling` = the run's `SampleSpec::key_label`).
    pub fn key_sampled(
        &self,
        app: &str,
        size: &str,
        procs: usize,
        cache: &str,
        cluster: u32,
        sampling: Option<&str>,
    ) -> String {
        let full = cell_key_sampled(app, size, procs, cache, cluster, sampling);
        match self.mode {
            KeyMode::Full => full,
            KeyMode::Truncated(n) => full[..n.min(full.len())].to_string(),
        }
    }

    /// Arms the crash-injection hook: the process exits with
    /// [`KILL_EXIT_CODE`] immediately after the `n`-th append
    /// (counted across all shards).
    pub fn set_kill_after(&self, n: usize) {
        self.kill_after.store(n, Ordering::SeqCst);
    }

    /// Installs (or replaces) the chaos plan consulted on every
    /// append. Disk faults degrade the append to a memory-only entry
    /// — the cell is still served, and a later compaction or restart
    /// recomputation makes it durable — so an injected (or real) disk
    /// failure can never corrupt the journal or kill the server.
    pub fn set_fault_plan(&self, plan: IoFaultPlan) {
        *lock(&self.fault) = plan;
    }

    /// The currently installed chaos plan (disabled by default).
    pub fn fault_plan(&self) -> IoFaultPlan {
        *lock(&self.fault)
    }

    fn shard(&self, key: &str) -> &Shard {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Looks a key up without counting a hit or miss (and without
    /// refreshing its eviction age).
    pub fn peek(&self, key: &str) -> Option<StoreEntry> {
        lock(&self.shard(key).inner)
            .map
            .get(key)
            .map(|s| s.entry.clone())
    }

    /// All entries. Iteration order is unspecified; callers sort by
    /// key when order matters.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(lock(&shard.inner).map.values().map(|s| s.entry.clone()));
        }
        out
    }

    /// Current counters, aggregated across shards.
    pub fn counters(&self) -> StoreCounters {
        let mut c = StoreCounters {
            shards: self.shards.len(),
            ..StoreCounters::default()
        };
        for shard in &self.shards {
            let g = lock(&shard.inner);
            c.hits += g.hits;
            c.misses += g.misses;
            c.entries += g.map.len();
            c.bytes += g.bytes;
            c.evictions += g.evictions;
            c.compactions += g.compactions;
        }
        c.disk_faults = self.disk_faults.load(Ordering::Relaxed);
        c.append_failures = self.append_failures.load(Ordering::Relaxed);
        c
    }

    /// Serves one cell: from the store when present (a *cache hit*),
    /// otherwise by running `compute` exactly once per key across all
    /// concurrent callers, durably recording the result before any
    /// waiter sees it. Returns the entry and whether it was a hit.
    pub fn serve_cell(
        &self,
        key: &str,
        size: &str,
        procs: usize,
        compute: impl FnOnce() -> JournalEntry,
    ) -> Result<(JournalEntry, bool), StoreError> {
        let shard = self.shard(key);
        let mut g = lock(&shard.inner);
        loop {
            if let Some(slot) = g.map.get_mut(key) {
                slot.last_served = self.clock.fetch_add(1, Ordering::Relaxed);
                let cell = slot.entry.cell.clone();
                g.hits += 1;
                return Ok((cell, true));
            }
            if !g.inflight.contains(key) {
                g.inflight.insert(key.to_string());
                break;
            }
            g = shard.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g.misses += 1;
        drop(g);

        let guard = FlightGuard {
            shard,
            key: key.to_string(),
            armed: true,
        };
        let cell = compute();
        let entry = StoreEntry {
            key: key.to_string(),
            size: size.to_string(),
            procs,
            cell,
        };
        self.record_entry(entry.clone(), guard)?;
        Ok((entry.cell, false))
    }

    /// Records an externally computed cell (the `--cache` client path)
    /// if the key is absent. Returns whether the entry was appended.
    pub fn record(
        &self,
        key: &str,
        size: &str,
        procs: usize,
        cell: &JournalEntry,
    ) -> Result<bool, StoreError> {
        let shard = self.shard(key);
        let mut g = lock(&shard.inner);
        if g.map.contains_key(key) {
            return Ok(false);
        }
        // Claim so a concurrent serve_cell of the same key waits for
        // this append instead of double-simulating.
        if g.inflight.contains(key) {
            // Someone is computing it right now; let them win.
            return Ok(false);
        }
        g.inflight.insert(key.to_string());
        drop(g);
        let guard = FlightGuard {
            shard,
            key: key.to_string(),
            armed: true,
        };
        let entry = StoreEntry {
            key: key.to_string(),
            size: size.to_string(),
            procs,
            cell: cell.clone(),
        };
        self.record_entry(entry, guard)?;
        Ok(true)
    }

    /// Appends an entry to its shard under the shard lock, publishes
    /// it to the map, releases the single-flight claim, and enforces
    /// the byte budget. Honors the kill hook and the chaos plan.
    ///
    /// A failed append — injected by the plan or a real I/O error —
    /// *degrades* instead of erroring: any partial line is truncated
    /// away (so the journal stays strictly parseable) and the entry
    /// is published in memory only, to be persisted by a later
    /// compaction or recomputed after a restart. The only hard error
    /// left is a failed truncation repair.
    fn record_entry(
        &self,
        entry: StoreEntry,
        mut guard: FlightGuard<'_>,
    ) -> Result<(), StoreError> {
        let shard = self.shard(&entry.key);
        let key = entry.key.clone();
        let mut g = lock(&shard.inner);
        let line = entry_line(&entry);
        g.appends += 1;
        let fault = self
            .fault_plan()
            .disk_fault(shard.idx as u64, g.appends, line.len());
        if fault.is_some() {
            self.disk_faults.fetch_add(1, Ordering::Relaxed);
        }

        // Phase 1: get the line onto disk. `on_disk` = the full line
        // landed; `durable` = its fdatasync succeeded too.
        let (on_disk, durable) = match fault {
            Some(DiskFault::WriteErr) => (false, false),
            Some(DiskFault::Torn { keep }) => {
                // A torn append: only a prefix reaches the file (the
                // write "failed" partway). Repaired by truncation
                // below, exactly like a real partial write.
                let _ = g.file.write_all(&line.as_bytes()[..keep]);
                (false, false)
            }
            Some(DiskFault::FsyncErr) => (g.file.write_all(line.as_bytes()).is_ok(), false),
            None => match g.file.write_all(line.as_bytes()) {
                Ok(()) => (true, g.file.sync_data().is_ok()),
                Err(_) => (false, false),
            },
        };

        if on_disk {
            g.bytes += line.len() as u64;
        } else {
            // Truncate any partial write so every line before EOF
            // stays well formed (a torn tail mid-journal would turn
            // later appends into malformed *middle* lines). `g.bytes`
            // tracks the exact pre-append file length.
            let repair_to = g.bytes;
            if let Err(e) = g.file.set_len(repair_to) {
                // The journal may hold a torn line we cannot remove;
                // reopen-time healing still recovers it, but this
                // append must report the failure.
                drop(g);
                return Err(StoreError::Io(e));
            }
        }
        if !durable {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
        }

        // Phase 2: publish. Even a failed append serves its cell —
        // the entry just lives in memory only (line_len 0: it holds
        // no journal bytes) until a compaction rewrite or a restart
        // recomputation makes it durable.
        g.map.insert(
            key.clone(),
            Slot {
                entry,
                line_len: if on_disk { line.len() as u64 } else { 0 },
                last_served: self.clock.fetch_add(1, Ordering::Relaxed),
            },
        );
        g.inflight.remove(&key);
        guard.armed = false;
        if on_disk {
            if let Some(budget) = self.byte_budget {
                let high = (budget / self.shards.len() as u64).max(1);
                let low = high.saturating_sub(high / 4);
                enforce_budget(&mut g, &shard.path, &shard.header, high, low)?;
            }
        }
        let kill = if on_disk {
            let appended = self.appended.fetch_add(1, Ordering::SeqCst) + 1;
            let target = self.kill_after.load(Ordering::SeqCst);
            target != 0 && appended >= target
        } else {
            false
        };
        drop(g);
        shard.done.notify_all();
        if kill {
            // Not eprintln!: a closed stderr (the harness may
            // have dropped the pipe) must not panic this
            // thread before the exit below gets to run.
            let _ = writeln!(
                std::io::stderr(),
                "cluster_serve: kill_after hook tripped; exiting {KILL_EXIT_CODE}"
            );
            std::process::exit(KILL_EXIT_CODE);
        }
        Ok(())
    }
}

/// Scans one store file's text — a shard journal or a legacy v1
/// store: returns the clean entries and whether a torn final line was
/// dropped. A malformed line that is *not* final is a hard error,
/// mirroring the checkpoint journal's contract.
pub fn scan_store(text: &str) -> Result<(Vec<StoreEntry>, bool), StoreError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err(StoreError::Malformed {
            line: 1,
            reason: "empty store file (missing header)".to_string(),
        });
    }
    let header = simcore::json::parse(lines[0]).map_err(|e| StoreError::Malformed {
        line: 1,
        reason: format!("header does not parse: {e}"),
    })?;
    match header.get("schema").and_then(Json::as_str) {
        Some(s) if s == STORE_SCHEMA || s == STORE_SCHEMA_V2 => {}
        other => {
            return Err(StoreError::Malformed {
                line: 1,
                reason: format!(
                    "header schema {other:?}, want {STORE_SCHEMA:?} or {STORE_SCHEMA_V2:?}"
                ),
            })
        }
    }
    let mut entries = Vec::new();
    let mut torn = false;
    for (i, raw) in lines.iter().enumerate().skip(1) {
        if raw.trim().is_empty() {
            continue;
        }
        let parsed = simcore::json::parse(raw)
            .map_err(|e| e.to_string())
            .and_then(|j| StoreEntry::from_json(&j));
        match parsed {
            Ok(e) => entries.push(e),
            Err(reason) => {
                if i == lines.len() - 1 {
                    // Torn final line: a kill landed mid-append.
                    torn = true;
                } else {
                    return Err(StoreError::Malformed {
                        line: i + 1,
                        reason,
                    });
                }
            }
        }
    }
    Ok((entries, torn))
}

/// Scans every shard journal (and a legacy `store.jsonl`, if still
/// unmigrated) in a store directory. Returns all entries plus whether
/// any file had a torn final line. Shard order, then file order.
pub fn scan_store_dir(dir: &Path) -> Result<(Vec<StoreEntry>, bool), StoreError> {
    let mut entries = Vec::new();
    let mut torn = false;
    let legacy = dir.join(STORE_FILE);
    if legacy.exists() {
        let (es, t) = scan_store(&std::fs::read_to_string(&legacy)?)?;
        entries.extend(es);
        torn |= t;
    }
    let mut i = 0usize;
    loop {
        let path = dir.join(shard_file_name(i));
        if !path.exists() {
            break;
        }
        let (es, t) = scan_store(&std::fs::read_to_string(&path)?)?;
        entries.extend(es);
        torn |= t;
        i += 1;
    }
    Ok((entries, torn))
}

/// Counters the trace store exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Traces served from memory.
    pub hits: u64,
    /// Traces generated fresh.
    pub gens: u64,
}

struct TraceInner {
    map: HashMap<(String, String, usize), Arc<Trace>>,
    inflight: HashSet<(String, String, usize)>,
    hits: u64,
    gens: u64,
}

/// In-memory memo of generated traces keyed by `(app, size, procs)`,
/// with the same single-flight discipline as the result store: a
/// sweep that varies only the cluster configuration generates each
/// trace exactly once, no matter how requests interleave.
pub struct TraceStore {
    inner: Mutex<TraceInner>,
    done: Condvar,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::new()
    }
}

impl TraceStore {
    /// An empty trace store.
    pub fn new() -> TraceStore {
        TraceStore {
            inner: Mutex::new(TraceInner {
                map: HashMap::new(),
                inflight: HashSet::new(),
                hits: 0,
                gens: 0,
            }),
            done: Condvar::new(),
        }
    }

    /// Returns the trace for `(app, size, procs)`, generating it at
    /// most once across all concurrent callers. `None` when the app
    /// name is unknown to the `splash` registry.
    pub fn get_or_generate(
        &self,
        app: &str,
        size: ProblemSize,
        procs: usize,
    ) -> Option<Arc<Trace>> {
        let key = (app.to_string(), size_label(size).to_string(), procs);
        let mut g = lock(&self.inner);
        loop {
            if let Some(t) = g.map.get(&key) {
                let t = Arc::clone(t);
                g.hits += 1;
                return Some(t);
            }
            if !g.inflight.contains(&key) {
                g.inflight.insert(key.clone());
                break;
            }
            g = self.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);

        // Generate outside the lock; release the claim on all paths.
        let generated = splash::by_name(app, size).map(|a| Arc::new(a.generate(procs)));
        let mut g = lock(&self.inner);
        g.inflight.remove(&key);
        match generated {
            Some(t) => {
                g.gens += 1;
                g.map.insert(key, Arc::clone(&t));
                drop(g);
                self.done.notify_all();
                Some(t)
            }
            None => {
                drop(g);
                self.done.notify_all();
                None
            }
        }
    }

    /// Current counters.
    pub fn counters(&self) -> TraceCounters {
        let g = lock(&self.inner);
        TraceCounters {
            hits: g.hits,
            gens: g.gens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_study::parallel::RunStatus;
    use cluster_study::run_config;
    use coherence::config::CacheSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_entry(app: &str, cluster: u32) -> JournalEntry {
        let trace = splash::by_name(app, ProblemSize::Small)
            .expect("known app")
            .generate(8);
        let stats = run_config(&trace, cluster, CacheSpec::Infinite);
        JournalEntry {
            app: app.to_string(),
            cache: CacheSpec::Infinite.label(),
            cluster,
            stats,
            wall: None,
            status: RunStatus::Ok,
            attempts: 1,
            sampling: None,
        }
    }

    #[test]
    fn cell_key_is_stable_and_input_sensitive() {
        let a = cell_key("ocean", "small", 8, "inf", 4);
        assert_eq!(a, cell_key("ocean", "small", 8, "inf", 4));
        assert_eq!(a.len(), 32);
        assert_ne!(a, cell_key("ocean", "small", 8, "inf", 2));
        assert_ne!(a, cell_key("ocean", "small", 8, "4k", 4));
        assert_ne!(a, cell_key("ocean", "paper", 8, "inf", 4));
        assert_ne!(a, cell_key("ocean", "small", 16, "inf", 4));
        assert_ne!(a, cell_key("lu", "small", 8, "inf", 4));
    }

    #[test]
    fn round_trips_entries_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let entry = sample_entry("ocean", 4);
        let key = cell_key("ocean", "small", 8, "inf", 4);
        {
            let store = ResultStore::open(&dir).expect("open");
            assert_eq!(store.shard_count(), DEFAULT_SHARDS);
            let (cell, hit) = store
                .serve_cell(&key, "small", 8, || entry.clone())
                .expect("serve");
            assert!(!hit);
            assert_eq!(cell.to_json().to_string(), entry.to_json().to_string());
        }
        let store = ResultStore::open(&dir).expect("reopen");
        let (cell, hit) = store
            .serve_cell(&key, "small", 8, || {
                unreachable!("must be served from disk")
            })
            .expect("serve");
        assert!(hit);
        assert_eq!(cell.to_json().to_string(), entry.to_json().to_string());
        assert_eq!(store.counters().hits, 1);
        assert_eq!(store.counters().entries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_healed_on_open() {
        let dir = tmp_dir("torn");
        let key = cell_key("ocean", "small", 8, "inf", 4);
        {
            let store = ResultStore::open(&dir).expect("open");
            store
                .serve_cell(&key, "small", 8, || sample_entry("ocean", 4))
                .expect("serve");
        }
        let path = dir.join(shard_file_name(shard_of(&key, DEFAULT_SHARDS)));
        let mut text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains(&key), "entry must land in its routed shard");
        text.push_str("{\"store_key\":\"deadbeef\",\"si"); // torn append
        std::fs::write(&path, &text).expect("tear");
        let store = ResultStore::open(&dir).expect("heal");
        assert_eq!(store.counters().entries, 1);
        let healed = std::fs::read_to_string(&path).expect("read healed");
        assert!(!healed.contains("deadbeef"));
        // A malformed line that is NOT final stays a hard error.
        let mut bad = String::new();
        bad.push_str(healed.lines().next().expect("header line"));
        bad.push_str("\ngarbage\n");
        bad.push_str(healed.lines().nth(1).expect("entry line"));
        bad.push('\n');
        std::fs::write(&path, &bad).expect("corrupt");
        assert!(matches!(
            ResultStore::open(&dir),
            Err(StoreError::Malformed { line: 2, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_store_migrates_into_shards() {
        let dir = tmp_dir("migrate");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let entry = sample_entry("ocean", 4);
        let keys: Vec<String> = (0..4)
            .map(|i| cell_key("ocean", "small", 8, "inf", 1 << i))
            .collect();
        let mut body = format!("{}\n", Json::obj().with("schema", STORE_SCHEMA));
        for k in &keys {
            body.push_str(&entry_line(&StoreEntry {
                key: k.clone(),
                size: "small".to_string(),
                procs: 8,
                cell: entry.clone(),
            }));
        }
        std::fs::write(dir.join(STORE_FILE), &body).expect("write legacy");
        let store = ResultStore::open(&dir).expect("migrate");
        assert_eq!(store.counters().entries, 4);
        for k in &keys {
            assert!(store.peek(k).is_some(), "migrated key must resolve");
        }
        assert!(!dir.join(STORE_FILE).exists(), "legacy file is parked");
        assert!(dir.join(STORE_FILE_V1_BACKUP).exists());
        // Reopen: entries come from shards now, not the backup.
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.counters().entries, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_shard_count_wins_over_config() {
        let dir = tmp_dir("shardcount");
        {
            let store = ResultStore::open_with_config(
                &dir,
                StoreConfig {
                    shards: 2,
                    ..StoreConfig::default()
                },
            )
            .expect("open");
            assert_eq!(store.shard_count(), 2);
        }
        let store = ResultStore::open_with_config(
            &dir,
            StoreConfig {
                shards: 8,
                ..StoreConfig::default()
            },
        )
        .expect("reopen");
        assert_eq!(store.shard_count(), 2, "disk layout wins");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_evicts_lru_and_compacts() {
        let dir = tmp_dir("evict");
        // One shard so the LRU order is fully deterministic.
        let cfg = StoreConfig {
            shards: 1,
            byte_budget: None,
            mode: KeyMode::Full,
        };
        let clusters = [1u32, 2, 4, 8];
        let keys: Vec<String> = clusters
            .iter()
            .map(|&c| cell_key("ocean", "small", 8, "inf", c))
            .collect();
        let line_bytes: u64;
        {
            let store = ResultStore::open_with_config(&dir, cfg).expect("open");
            for (&c, k) in clusters.iter().zip(&keys) {
                store
                    .serve_cell(k, "small", 8, || sample_entry("ocean", c))
                    .expect("serve");
            }
            line_bytes = store.counters().bytes;
        }
        // Re-serve cell 0 so it is the most recently served, then
        // reopen with a budget that can hold roughly half the store:
        // the LRU tail (not cell 0) must go.
        {
            let store = ResultStore::open_with_config(&dir, cfg).expect("reopen");
            store
                .serve_cell(&keys[0], "small", 8, || unreachable!("hit"))
                .expect("serve");
        }
        let budget = line_bytes / 2;
        let store = ResultStore::open_with_config(
            &dir,
            StoreConfig {
                byte_budget: Some(budget),
                ..cfg
            },
        )
        .expect("open with budget");
        let c = store.counters();
        assert!(c.evictions > 0, "must evict: {c:?}");
        assert!(c.compactions > 0, "eviction rewrites the shard: {c:?}");
        assert!(c.bytes <= budget, "stays under budget: {c:?}");
        assert!(c.entries < 4);
        // Whichever cells went, the loss-correctness contract holds:
        // an evicted cell recomputes bit-identically and the store
        // resumes serving it.
        let victim = keys
            .iter()
            .find(|k| store.peek(k).is_none())
            .expect("some cell was evicted");
        let victim_cluster = clusters[keys.iter().position(|k| k == victim).expect("pos")];
        let (cell, hit) = store
            .serve_cell(victim, "small", 8, || sample_entry("ocean", victim_cluster))
            .expect("recompute");
        assert!(!hit, "evicted cell must recompute");
        assert_eq!(
            cell.to_json().to_string(),
            sample_entry("ocean", victim_cluster).to_json().to_string(),
            "recompute is bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_bump_survives_compaction_within_one_process() {
        let dir = tmp_dir("lru");
        let cfg = StoreConfig {
            shards: 1,
            byte_budget: None,
            mode: KeyMode::Full,
        };
        let clusters = [1u32, 2, 4, 8];
        let keys: Vec<String> = clusters
            .iter()
            .map(|&c| cell_key("ocean", "small", 8, "inf", c))
            .collect();
        let total: u64;
        {
            let store = ResultStore::open_with_config(&dir, cfg).expect("open");
            for (&c, k) in clusters.iter().zip(&keys) {
                store
                    .serve_cell(k, "small", 8, || sample_entry("ocean", c))
                    .expect("serve");
            }
            total = store.counters().bytes;
        }
        // Budget of exactly the current size: the reopen stays under
        // it, the 5th append crosses it. Serving key[0] first bumps
        // it to most-recent, so the eviction pass that follows the
        // append must take key[1] (now LRU) and spare key[0].
        let store = ResultStore::open_with_config(
            &dir,
            StoreConfig {
                byte_budget: Some(total),
                ..cfg
            },
        )
        .expect("open with budget");
        store
            .serve_cell(&keys[0], "small", 8, || unreachable!("hit"))
            .expect("bump");
        let k5 = cell_key("lu", "small", 8, "inf", 4);
        store
            .serve_cell(&k5, "small", 8, || sample_entry("lu", 4))
            .expect("append 5th");
        let c = store.counters();
        assert!(c.evictions > 0, "{c:?}");
        assert!(store.peek(&keys[0]).is_some(), "recently served survives");
        assert!(store.peek(&keys[1]).is_none(), "LRU entry evicted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_key_mode_collides_full_mode_does_not() {
        let dir = tmp_dir("keymode");
        let weak = ResultStore::open_with_mode(&dir, KeyMode::Truncated(1)).expect("open");
        // With 1 hex digit there are only 16 possible keys; 17 distinct
        // cells must collide somewhere.
        let mut seen = HashSet::new();
        let mut collided = false;
        for cluster in 1..=17u32 {
            let k = weak.key("ocean", "small", 8, "inf", cluster);
            assert_eq!(k.len(), 1);
            collided |= !seen.insert(k);
        }
        assert!(collided, "truncated keys must collide");
        let full = cell_key("ocean", "small", 8, "inf", 1);
        assert_eq!(full.len(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_store_generates_each_key_once() {
        let ts = TraceStore::new();
        let a = ts
            .get_or_generate("ocean", ProblemSize::Small, 8)
            .expect("known app");
        let b = ts
            .get_or_generate("ocean", ProblemSize::Small, 8)
            .expect("known app");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ts.counters(), TraceCounters { hits: 1, gens: 1 });
        assert!(ts
            .get_or_generate("no-such-app", ProblemSize::Small, 8)
            .is_none());
        assert_eq!(ts.counters().gens, 1);
    }
}
