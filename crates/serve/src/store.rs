//! The content-addressed result store and the in-memory trace store.
//!
//! # Result store
//!
//! [`ResultStore`] memoizes finished study cells on disk. The unit of
//! storage is one *cell*: a single simulation of `(app, size, procs,
//! cache, cluster)` under the workspace's deterministic seeding scheme
//! ([`SEED_SCHEME`]). The key is content-addressed: a stable 128-bit
//! FNV-1a hash ([`simcore::stable_key`]) of a canonical JSON document
//! naming every input that can change the result — see [`cell_key`].
//! Anything *not* in the key (wall-clock, jobs, host) must never
//! change simulated statistics; that invariant is what the
//! serving-layer test suite proves end to end.
//!
//! On disk the store is a JSONL file (`store.jsonl`): line 1 is a
//! header object carrying [`STORE_SCHEMA`], and every further line is
//! one [`StoreEntry`] — the key plus the complete
//! [`JournalEntry`] (full `RunStats`, so a cache hit can reproduce the
//! manifest's deterministic view byte for byte). Appends are a single
//! `write(2)` followed by `fdatasync`, exactly like the checkpoint
//! journal, and recovery tolerates exactly one torn *final* line — it
//! is dropped and the file healed through `write_atomic`; a malformed
//! line anywhere earlier is a hard error.
//!
//! # Single flight
//!
//! [`ResultStore::serve_cell`] is the dogpile breaker: concurrent
//! requests for the same key produce exactly one simulation. The first
//! caller claims the key in an in-flight set and computes outside the
//! lock; later callers block on a condvar and are served from the
//! freshly recorded entry. A panicking compute releases its claim via
//! a drop guard, so a poisoned cell never wedges other clients.
//!
//! # Key modes
//!
//! [`KeyMode::Truncated`] deliberately shortens keys to a prefix. It
//! exists only as a planted-bug lever for the property suite, which
//! must detect the resulting key collisions and shrink them to a
//! minimal colliding spec pair. Production callers use
//! [`KeyMode::Full`].

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cluster_study::checkpoint::JournalEntry;
use cluster_study::manifest::{write_atomic, SEED_SCHEME};
use simcore::ops::Trace;
use simcore::{stable_key, Json};
use splash::ProblemSize;

/// Schema identifier on the store's header line.
pub const STORE_SCHEMA: &str = "clustered-smp/result-store/v1";

/// Schema identifier inside every cell key document.
pub const CELL_KEY_SCHEMA: &str = "clustered-smp/cell-key/v1";

/// File name of the store inside its directory.
pub const STORE_FILE: &str = "store.jsonl";

/// Exit code of the `kill_after` crash-injection hook (the serving
/// analogue of the journal's `STUDY_KILL_AFTER_RECORDS`), shared with
/// the checkpoint journal so harnesses treat both alike.
pub const KILL_EXIT_CODE: i32 = cluster_study::checkpoint::KILL_EXIT_CODE;

/// How cell keys are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyMode {
    /// The full 32-hex-digit stable key. Production mode.
    #[default]
    Full,
    /// Only the first `n` hex digits — a *planted bug* that makes
    /// distinct cells collide, used by the property suite to prove
    /// collisions are caught and shrunk. Never use outside tests.
    Truncated(usize),
}

/// The canonical key document for one study cell. Everything that can
/// change the simulated statistics is named here; nothing else is:
/// app, problem size, processor count, cache spec, cluster size, the
/// seeding scheme — and, for sampled runs, the full sampling
/// configuration (mode, rate, warmup, interval, seed via
/// `SampleSpec::key_label`), so a sampled and a full run of the same
/// cell never alias in the store. A full-trace run (`sampling: None`)
/// omits the field entirely, keeping every pre-sampling key valid.
pub fn cell_key_doc_sampled(
    app: &str,
    size: &str,
    procs: usize,
    cache: &str,
    cluster: u32,
    sampling: Option<&str>,
) -> Json {
    let mut doc = Json::obj()
        .with("schema", CELL_KEY_SCHEMA)
        .with("app", app)
        .with("size", size)
        .with("procs", procs)
        .with("cache", cache)
        .with("cluster", cluster)
        .with("seed_scheme", SEED_SCHEME);
    if let Some(s) = sampling {
        doc.push("sampling", s);
    }
    doc
}

/// [`cell_key_doc_sampled`] for a full-trace (unsampled) cell.
pub fn cell_key_doc(app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> Json {
    cell_key_doc_sampled(app, size, procs, cache, cluster, None)
}

/// The content-addressed key of one study cell under [`KeyMode::Full`],
/// `sampling` being a `SampleSpec::key_label` for sampled runs.
pub fn cell_key_sampled(
    app: &str,
    size: &str,
    procs: usize,
    cache: &str,
    cluster: u32,
    sampling: Option<&str>,
) -> String {
    stable_key(&cell_key_doc_sampled(
        app, size, procs, cache, cluster, sampling,
    ))
}

/// The content-addressed key of one full-trace study cell under
/// [`KeyMode::Full`].
pub fn cell_key(app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> String {
    cell_key_sampled(app, size, procs, cache, cluster, None)
}

/// Label for a [`ProblemSize`], matching the journal header's `size`.
pub fn size_label(size: ProblemSize) -> &'static str {
    match size {
        ProblemSize::Paper => "paper",
        ProblemSize::Small => "small",
    }
}

/// One persisted cell: the content address plus the complete result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Content-addressed cell key (hex).
    pub key: String,
    /// Problem-size label (`"small"` / `"paper"`).
    pub size: String,
    /// Simulated processors.
    pub procs: usize,
    /// The complete result, identical in shape to a journal entry.
    pub cell: JournalEntry,
}

impl StoreEntry {
    /// One JSONL line of the store file.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("store_key", self.key.as_str())
            .with("size", self.size.as_str())
            .with("procs", self.procs)
            .with("cell", self.cell.to_json())
    }

    /// Parses one store line.
    pub fn from_json(j: &Json) -> Result<StoreEntry, String> {
        let key = j
            .get("store_key")
            .and_then(Json::as_str)
            .ok_or("missing string field `store_key`")?
            .to_string();
        let size = j
            .get("size")
            .and_then(Json::as_str)
            .ok_or("missing string field `size`")?
            .to_string();
        let procs = j
            .get("procs")
            .and_then(Json::as_u64)
            .ok_or("missing integer field `procs`")? as usize;
        let cell = JournalEntry::from_json(j.get("cell").ok_or("missing object field `cell`")?)?;
        Ok(StoreEntry {
            key,
            size,
            procs,
            cell,
        })
    }
}

/// A store operation that failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// A line that does not parse as the schema demands.
    Malformed {
        /// 1-based line number in the store file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Malformed { line, reason } => {
                write!(f, "store line {line} malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Counters a store exposes for the `stats` op and CI artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Cells served straight from the store.
    pub hits: u64,
    /// Cells that required a fresh simulation.
    pub misses: u64,
    /// Entries currently held (disk + this process's appends).
    pub entries: usize,
}

struct StoreInner {
    file: File,
    map: HashMap<String, StoreEntry>,
    inflight: HashSet<String>,
    hits: u64,
    misses: u64,
    appended: usize,
    kill_after: Option<usize>,
}

/// The on-disk content-addressed result cache. Thread safe; all
/// mutation happens under one mutex, with computes running outside it
/// under single-flight claims.
pub struct ResultStore {
    path: PathBuf,
    mode: KeyMode,
    inner: Mutex<StoreInner>,
    done: Condvar,
}

/// Recovers poisoned locks: a panic inside a lock scope here can only
/// abandon counters mid-update, never corrupt the on-disk format.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears a single-flight claim if the compute panics, so waiting
/// clients retry instead of blocking forever.
struct FlightGuard<'a> {
    store: &'a ResultStore,
    key: String,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut g = lock(&self.store.inner);
            g.inflight.remove(&self.key);
            drop(g);
            self.store.done.notify_all();
        }
    }
}

impl ResultStore {
    /// Opens (or creates) the store in `dir` with production keys.
    pub fn open(dir: &Path) -> Result<ResultStore, StoreError> {
        ResultStore::open_with_mode(dir, KeyMode::Full)
    }

    /// Opens the store with an explicit [`KeyMode`]. Only tests pass
    /// anything but [`KeyMode::Full`].
    pub fn open_with_mode(dir: &Path, mode: KeyMode) -> Result<ResultStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);
        if !path.exists() {
            write_atomic(&path, format!("{}\n", store_header()).as_bytes())?;
        }
        let text = std::fs::read_to_string(&path)?;
        let (entries, torn) = scan_store(&text)?;
        if torn {
            // Heal: rewrite the clean prefix atomically, then append.
            let mut body = format!("{}\n", store_header());
            for e in &entries {
                body.push_str(&e.to_json().to_string());
                body.push('\n');
            }
            write_atomic(&path, body.as_bytes())?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        let map = entries.into_iter().map(|e| (e.key.clone(), e)).collect();
        Ok(ResultStore {
            path,
            mode,
            inner: Mutex::new(StoreInner {
                file,
                map,
                inflight: HashSet::new(),
                hits: 0,
                misses: 0,
                appended: 0,
                kill_after: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Path of the backing JSONL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cell key under this store's [`KeyMode`].
    pub fn key(&self, app: &str, size: &str, procs: usize, cache: &str, cluster: u32) -> String {
        self.key_sampled(app, size, procs, cache, cluster, None)
    }

    /// The cell key under this store's [`KeyMode`], for a sampled run
    /// (`sampling` = the run's `SampleSpec::key_label`).
    pub fn key_sampled(
        &self,
        app: &str,
        size: &str,
        procs: usize,
        cache: &str,
        cluster: u32,
        sampling: Option<&str>,
    ) -> String {
        let full = cell_key_sampled(app, size, procs, cache, cluster, sampling);
        match self.mode {
            KeyMode::Full => full,
            KeyMode::Truncated(n) => full[..n.min(full.len())].to_string(),
        }
    }

    /// Arms the crash-injection hook: the process exits with
    /// [`KILL_EXIT_CODE`] immediately after the `n`-th append.
    pub fn set_kill_after(&self, n: usize) {
        lock(&self.inner).kill_after = Some(n);
    }

    /// Looks a key up without counting a hit or miss.
    pub fn peek(&self, key: &str) -> Option<StoreEntry> {
        lock(&self.inner).map.get(key).cloned()
    }

    /// All entries. Iteration order is unspecified; callers sort by
    /// key when order matters.
    pub fn entries(&self) -> Vec<StoreEntry> {
        lock(&self.inner).map.values().cloned().collect()
    }

    /// Current counters.
    pub fn counters(&self) -> StoreCounters {
        let g = lock(&self.inner);
        StoreCounters {
            hits: g.hits,
            misses: g.misses,
            entries: g.map.len(),
        }
    }

    /// Serves one cell: from the store when present (a *cache hit*),
    /// otherwise by running `compute` exactly once per key across all
    /// concurrent callers, durably recording the result before any
    /// waiter sees it. Returns the entry and whether it was a hit.
    pub fn serve_cell(
        &self,
        key: &str,
        size: &str,
        procs: usize,
        compute: impl FnOnce() -> JournalEntry,
    ) -> Result<(JournalEntry, bool), StoreError> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(e) = g.map.get(key) {
                let cell = e.cell.clone();
                g.hits += 1;
                return Ok((cell, true));
            }
            if !g.inflight.contains(key) {
                g.inflight.insert(key.to_string());
                break;
            }
            g = self.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g.misses += 1;
        drop(g);

        let guard = FlightGuard {
            store: self,
            key: key.to_string(),
            armed: true,
        };
        let cell = compute();
        let entry = StoreEntry {
            key: key.to_string(),
            size: size.to_string(),
            procs,
            cell,
        };
        self.record_entry(entry.clone(), guard)?;
        Ok((entry.cell, false))
    }

    /// Records an externally computed cell (the `--cache` client path)
    /// if the key is absent. Returns whether the entry was appended.
    pub fn record(
        &self,
        key: &str,
        size: &str,
        procs: usize,
        cell: &JournalEntry,
    ) -> Result<bool, StoreError> {
        let mut g = lock(&self.inner);
        if g.map.contains_key(key) {
            return Ok(false);
        }
        // Claim so a concurrent serve_cell of the same key waits for
        // this append instead of double-simulating.
        if g.inflight.contains(key) {
            // Someone is computing it right now; let them win.
            return Ok(false);
        }
        g.inflight.insert(key.to_string());
        drop(g);
        let guard = FlightGuard {
            store: self,
            key: key.to_string(),
            armed: true,
        };
        let entry = StoreEntry {
            key: key.to_string(),
            size: size.to_string(),
            procs,
            cell: cell.clone(),
        };
        self.record_entry(entry, guard)?;
        Ok(true)
    }

    /// Appends an entry under the lock, publishes it to the map, and
    /// releases the single-flight claim. Honors the kill hook.
    fn record_entry(
        &self,
        entry: StoreEntry,
        mut guard: FlightGuard<'_>,
    ) -> Result<(), StoreError> {
        let key = entry.key.clone();
        let mut g = lock(&self.inner);
        let line = format!("{}\n", entry.to_json());
        let io = g
            .file
            .write_all(line.as_bytes())
            .and_then(|()| g.file.sync_data());
        match io {
            Ok(()) => {
                g.appended += 1;
                g.map.insert(key.clone(), entry);
                g.inflight.remove(&key);
                guard.armed = false;
                let kill = g.kill_after.is_some_and(|n| g.appended >= n);
                drop(g);
                self.done.notify_all();
                if kill {
                    eprintln!("cluster_serve: kill_after hook tripped; exiting {KILL_EXIT_CODE}");
                    std::process::exit(KILL_EXIT_CODE);
                }
                Ok(())
            }
            Err(e) => {
                // The guard (still armed) releases the claim on drop.
                drop(g);
                Err(StoreError::Io(e))
            }
        }
    }
}

fn store_header() -> Json {
    Json::obj().with("schema", STORE_SCHEMA)
}

/// Scans a store file's text: returns the clean entries and whether a
/// torn final line was dropped. A malformed line that is *not* final
/// is a hard error, mirroring the checkpoint journal's contract.
pub fn scan_store(text: &str) -> Result<(Vec<StoreEntry>, bool), StoreError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err(StoreError::Malformed {
            line: 1,
            reason: "empty store file (missing header)".to_string(),
        });
    }
    let header = simcore::json::parse(lines[0]).map_err(|e| StoreError::Malformed {
        line: 1,
        reason: format!("header does not parse: {e}"),
    })?;
    match header.get("schema").and_then(Json::as_str) {
        Some(s) if s == STORE_SCHEMA => {}
        other => {
            return Err(StoreError::Malformed {
                line: 1,
                reason: format!("header schema {other:?}, want {STORE_SCHEMA:?}"),
            })
        }
    }
    let mut entries = Vec::new();
    let mut torn = false;
    for (i, raw) in lines.iter().enumerate().skip(1) {
        if raw.trim().is_empty() {
            continue;
        }
        let parsed = simcore::json::parse(raw)
            .map_err(|e| e.to_string())
            .and_then(|j| StoreEntry::from_json(&j));
        match parsed {
            Ok(e) => entries.push(e),
            Err(reason) => {
                if i == lines.len() - 1 {
                    // Torn final line: a kill landed mid-append.
                    torn = true;
                } else {
                    return Err(StoreError::Malformed {
                        line: i + 1,
                        reason,
                    });
                }
            }
        }
    }
    Ok((entries, torn))
}

/// Counters the trace store exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Traces served from memory.
    pub hits: u64,
    /// Traces generated fresh.
    pub gens: u64,
}

struct TraceInner {
    map: HashMap<(String, String, usize), Arc<Trace>>,
    inflight: HashSet<(String, String, usize)>,
    hits: u64,
    gens: u64,
}

/// In-memory memo of generated traces keyed by `(app, size, procs)`,
/// with the same single-flight discipline as the result store: a
/// sweep that varies only the cluster configuration generates each
/// trace exactly once, no matter how requests interleave.
pub struct TraceStore {
    inner: Mutex<TraceInner>,
    done: Condvar,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::new()
    }
}

impl TraceStore {
    /// An empty trace store.
    pub fn new() -> TraceStore {
        TraceStore {
            inner: Mutex::new(TraceInner {
                map: HashMap::new(),
                inflight: HashSet::new(),
                hits: 0,
                gens: 0,
            }),
            done: Condvar::new(),
        }
    }

    /// Returns the trace for `(app, size, procs)`, generating it at
    /// most once across all concurrent callers. `None` when the app
    /// name is unknown to the `splash` registry.
    pub fn get_or_generate(
        &self,
        app: &str,
        size: ProblemSize,
        procs: usize,
    ) -> Option<Arc<Trace>> {
        let key = (app.to_string(), size_label(size).to_string(), procs);
        let mut g = lock(&self.inner);
        loop {
            if let Some(t) = g.map.get(&key) {
                let t = Arc::clone(t);
                g.hits += 1;
                return Some(t);
            }
            if !g.inflight.contains(&key) {
                g.inflight.insert(key.clone());
                break;
            }
            g = self.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);

        // Generate outside the lock; release the claim on all paths.
        let generated = splash::by_name(app, size).map(|a| Arc::new(a.generate(procs)));
        let mut g = lock(&self.inner);
        g.inflight.remove(&key);
        match generated {
            Some(t) => {
                g.gens += 1;
                g.map.insert(key, Arc::clone(&t));
                drop(g);
                self.done.notify_all();
                Some(t)
            }
            None => {
                drop(g);
                self.done.notify_all();
                None
            }
        }
    }

    /// Current counters.
    pub fn counters(&self) -> TraceCounters {
        let g = lock(&self.inner);
        TraceCounters {
            hits: g.hits,
            gens: g.gens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_study::parallel::RunStatus;
    use cluster_study::run_config;
    use coherence::config::CacheSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_entry(app: &str, cluster: u32) -> JournalEntry {
        let trace = splash::by_name(app, ProblemSize::Small)
            .expect("known app")
            .generate(8);
        let stats = run_config(&trace, cluster, CacheSpec::Infinite);
        JournalEntry {
            app: app.to_string(),
            cache: CacheSpec::Infinite.label(),
            cluster,
            stats,
            wall: None,
            status: RunStatus::Ok,
            attempts: 1,
            sampling: None,
        }
    }

    #[test]
    fn cell_key_is_stable_and_input_sensitive() {
        let a = cell_key("ocean", "small", 8, "inf", 4);
        assert_eq!(a, cell_key("ocean", "small", 8, "inf", 4));
        assert_eq!(a.len(), 32);
        assert_ne!(a, cell_key("ocean", "small", 8, "inf", 2));
        assert_ne!(a, cell_key("ocean", "small", 8, "4k", 4));
        assert_ne!(a, cell_key("ocean", "paper", 8, "inf", 4));
        assert_ne!(a, cell_key("ocean", "small", 16, "inf", 4));
        assert_ne!(a, cell_key("lu", "small", 8, "inf", 4));
    }

    #[test]
    fn round_trips_entries_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let entry = sample_entry("ocean", 4);
        let key = cell_key("ocean", "small", 8, "inf", 4);
        {
            let store = ResultStore::open(&dir).expect("open");
            let (cell, hit) = store
                .serve_cell(&key, "small", 8, || entry.clone())
                .expect("serve");
            assert!(!hit);
            assert_eq!(cell.to_json().to_string(), entry.to_json().to_string());
        }
        let store = ResultStore::open(&dir).expect("reopen");
        let (cell, hit) = store
            .serve_cell(&key, "small", 8, || {
                unreachable!("must be served from disk")
            })
            .expect("serve");
        assert!(hit);
        assert_eq!(cell.to_json().to_string(), entry.to_json().to_string());
        assert_eq!(store.counters().hits, 1);
        assert_eq!(store.counters().entries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_healed_on_open() {
        let dir = tmp_dir("torn");
        let key = cell_key("ocean", "small", 8, "inf", 4);
        {
            let store = ResultStore::open(&dir).expect("open");
            store
                .serve_cell(&key, "small", 8, || sample_entry("ocean", 4))
                .expect("serve");
        }
        let path = dir.join(STORE_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"store_key\":\"deadbeef\",\"si"); // torn append
        std::fs::write(&path, &text).expect("tear");
        let store = ResultStore::open(&dir).expect("heal");
        assert_eq!(store.counters().entries, 1);
        let healed = std::fs::read_to_string(&path).expect("read healed");
        assert!(!healed.contains("deadbeef"));
        // A malformed line that is NOT final stays a hard error.
        let mut bad = healed.clone();
        bad.push_str("garbage\n");
        bad.push_str(healed.lines().nth(1).expect("entry line"));
        bad.push('\n');
        std::fs::write(&path, &bad).expect("corrupt");
        assert!(matches!(
            ResultStore::open(&dir),
            Err(StoreError::Malformed { line: 3, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_key_mode_collides_full_mode_does_not() {
        let dir = tmp_dir("keymode");
        let weak = ResultStore::open_with_mode(&dir, KeyMode::Truncated(1)).expect("open");
        // With 1 hex digit there are only 16 possible keys; 17 distinct
        // cells must collide somewhere.
        let mut seen = HashSet::new();
        let mut collided = false;
        for cluster in 1..=17u32 {
            let k = weak.key("ocean", "small", 8, "inf", cluster);
            assert_eq!(k.len(), 1);
            collided |= !seen.insert(k);
        }
        assert!(collided, "truncated keys must collide");
        let full = cell_key("ocean", "small", 8, "inf", 1);
        assert_eq!(full.len(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_store_generates_each_key_once() {
        let ts = TraceStore::new();
        let a = ts
            .get_or_generate("ocean", ProblemSize::Small, 8)
            .expect("known app");
        let b = ts
            .get_or_generate("ocean", ProblemSize::Small, 8)
            .expect("known app");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ts.counters(), TraceCounters { hits: 1, gens: 1 });
        assert!(ts
            .get_or_generate("no-such-app", ProblemSize::Small, 8)
            .is_none());
        assert_eq!(ts.counters().gens, 1);
    }
}
