//! A small typed client for the serve protocol over TCP.
//!
//! Speaks v1 out of the box and upgrades to
//! [`PROTOCOL_SCHEMA_V2`](crate::protocol::PROTOCOL_SCHEMA_V2) via
//! [`ServeClient::hello_v2`]. Every request carries a fresh `id` and
//! the response's echo is checked, so a desynced stream surfaces as a
//! typed [`ClientError`] instead of silently mismatched data. The
//! bench harness (`paper_run --serve`, `serve_soak`) and the
//! concurrency suite both drive servers through this type.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use simcore::Json;

use crate::protocol::{PROTOCOL_SCHEMA, PROTOCOL_SCHEMA_V2};

/// Client-side failure: transport, malformed traffic, or a typed
/// error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server sent something the client cannot make sense of.
    Protocol(String),
    /// The server answered with a typed error response.
    Server {
        /// The error `kind` label (e.g. `unknown_op`, `queue_full`).
        kind: String,
        /// The human-readable detail string.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, detail } => write!(f, "server error [{kind}]: {detail}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Counters from a finished `cursor` stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorSummary {
    /// Cells the server enumerated (`total` from the start line).
    pub cells: u64,
    /// Cells served from the store.
    pub cache_hits: u64,
    /// Cells freshly simulated.
    pub sims: u64,
    /// Cells that failed (each produced an inline error line).
    pub failed: u64,
}

/// One TCP connection to a serve instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    schema: &'static str,
}

impl ServeClient {
    /// Connects to `addr` (a v1 session until [`ServeClient::hello_v2`]).
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request lines are small; leaving Nagle on costs a
        // delayed-ACK round trip (~40ms) per request.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            schema: PROTOCOL_SCHEMA,
        })
    }

    /// The schema currently negotiated.
    pub fn schema(&self) -> &'static str {
        self.schema
    }

    fn read_json(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-conversation".to_string(),
            ));
        }
        simcore::json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response line: {e}")))
    }

    fn server_error(j: &Json) -> ClientError {
        let err = j.get("error");
        let field = |k: &str| {
            err.and_then(|e| e.get(k))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        ClientError::Server {
            kind: field("kind"),
            detail: field("detail"),
        }
    }

    fn check_ok(&self, j: &Json, id: u64) -> Result<(), ClientError> {
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(Self::server_error(j));
        }
        match j.get("id").and_then(Json::as_u64) {
            Some(got) if got == id => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "response id {other:?} does not match request id {id}"
            ))),
        }
    }

    fn send(&mut self, mut req: Json) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        req.push("id", id);
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// One request, one checked response.
    fn round_trip(&mut self, req: Json) -> Result<Json, ClientError> {
        let id = self.send(req)?;
        let resp = self.read_json()?;
        self.check_ok(&resp, id)?;
        Ok(resp)
    }

    /// Upgrades the session to protocol v2.
    pub fn hello_v2(&mut self) -> Result<(), ClientError> {
        let resp = self.round_trip(
            Json::obj()
                .with("op", "hello")
                .with("schema", PROTOCOL_SCHEMA_V2),
        )?;
        match resp.get("schema").and_then(Json::as_str) {
            Some(s) if s == PROTOCOL_SCHEMA_V2 => {
                self.schema = PROTOCOL_SCHEMA_V2;
                Ok(())
            }
            other => Err(ClientError::Protocol(format!(
                "hello answered with schema {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip(Json::obj().with("op", "ping")).map(|_| ())
    }

    /// Counter snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.round_trip(Json::obj().with("op", "stats"))
    }

    /// One `run` request; returns the full response document.
    pub fn run(&mut self, spec: Json) -> Result<Json, ClientError> {
        self.round_trip(Json::obj().with("op", "run").with("spec", spec))
    }

    /// One v2 `batch` request; returns the full response document.
    pub fn batch(&mut self, specs: Vec<Json>) -> Result<Json, ClientError> {
        self.round_trip(
            Json::obj()
                .with("op", "batch")
                .with("specs", Json::Arr(specs)),
        )
    }

    /// One v2 `cursor` request: `on_cell(seq, cell_doc)` fires for
    /// every streamed cell line in order; inline error lines (failed
    /// cells) are counted, not fatal. Returns the trailer's counters.
    pub fn cursor(
        &mut self,
        spec: Json,
        mut on_cell: impl FnMut(u64, &Json),
    ) -> Result<CursorSummary, ClientError> {
        let id = self.send(Json::obj().with("op", "cursor").with("spec", spec))?;
        let start = self.read_json()?;
        self.check_ok(&start, id)?;
        if start.get("op").and_then(Json::as_str) != Some("cursor") {
            return Err(ClientError::Protocol(format!(
                "expected a cursor start line, got {start}"
            )));
        }
        let total = start.get("total").and_then(Json::as_u64).unwrap_or(0);
        let mut summary = CursorSummary::default();
        loop {
            let line = self.read_json()?;
            if line.get("ok").and_then(Json::as_bool) != Some(true) {
                // A failed cell: the server streams an error line and
                // keeps going; the trailer accounts for it.
                summary.failed += 1;
                continue;
            }
            match line.get("op").and_then(Json::as_str) {
                Some("cell") => {
                    let seq = line.get("seq").and_then(Json::as_u64).unwrap_or(0);
                    if let Some(cell) = line.get("cell") {
                        on_cell(seq, cell);
                    }
                }
                Some("cursor_done") => {
                    self.check_ok(&line, id)?;
                    let field = |k: &str| line.get(k).and_then(Json::as_u64).unwrap_or(0);
                    summary.cells = field("cells");
                    summary.cache_hits = field("cache_hits");
                    summary.sims = field("sims");
                    if field("failed") != summary.failed {
                        return Err(ClientError::Protocol(format!(
                            "cursor trailer reports {} failed cells, client saw {}",
                            field("failed"),
                            summary.failed
                        )));
                    }
                    if summary.cells != total {
                        return Err(ClientError::Protocol(format!(
                            "cursor trailer reports {} cells, start line promised {total}",
                            summary.cells
                        )));
                    }
                    return Ok(summary);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected op {other:?} inside a cursor stream"
                    )))
                }
            }
        }
    }

    /// Asks the server to shut down after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(Json::obj().with("op", "shutdown"))
            .map(|_| ())
    }
}
