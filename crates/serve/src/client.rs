//! A production-grade typed client for the serve protocol over TCP.
//!
//! Speaks v1 out of the box and upgrades to
//! [`PROTOCOL_SCHEMA_V2`](crate::protocol::PROTOCOL_SCHEMA_V2) via
//! [`ServeClient::hello_v2`]. Every request carries a fresh `id` and
//! the response's echo is checked, so a desynced stream surfaces as a
//! typed [`ClientError`] instead of silently mismatched data.
//!
//! Resilience ([`ClientConfig`]):
//!
//! * **Deadlines** — sockets carry read/write timeouts, so a stalled
//!   server surfaces as an I/O error instead of hanging forever.
//! * **Bounded retries with seeded jitter** — idempotent requests
//!   (everything except `shutdown`) retry transport and
//!   `queue_full`/`overloaded` failures with exponential backoff;
//!   the jitter RNG is seeded, so a test run's retry schedule is
//!   reproducible. Server `retry_after_ms` hints override the
//!   computed delay.
//! * **Transparent reconnect** — a broken connection is re-dialed and
//!   the v2 handshake re-negotiated before the request is re-sent.
//! * **Cursor resume** — a cursor cut mid-stream re-issues the
//!   request with `from` set to the first unacked `seq`, so the
//!   stream finishes instead of restarting; duplicate cells from
//!   overlap are dropped. Content-addressed cell keys make the
//!   re-issue idempotent.
//!
//! The bench harness (`paper_run --serve`, `serve_soak`), the chaos
//! torture suite and the concurrency suite all drive servers through
//! this type.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use simcore::rng::Rng64;
use simcore::Json;

use crate::protocol::{PROTOCOL_SCHEMA, PROTOCOL_SCHEMA_V2};

/// Client-side failure: transport, malformed traffic, or a typed
/// error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server sent something the client cannot make sense of.
    Protocol(String),
    /// The server answered with a typed error response.
    Server {
        /// The error `kind` label (e.g. `unknown_op`, `queue_full`).
        kind: String,
        /// The human-readable detail string.
        detail: String,
        /// Backoff hint from `queue_full`/`overloaded` responses.
        retry_after_ms: Option<u64>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, detail, .. } => {
                write!(f, "server error [{kind}]: {detail}")
            }
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Deadline and retry policy for a [`ServeClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-read socket deadline (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Retry budget per logical operation (0 = fail fast). Transport
    /// errors reconnect before re-sending; `queue_full`/`overloaded`
    /// just back off.
    pub retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter, so retry schedules replay
    /// deterministically.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            seed: 0,
        }
    }
}

/// Counters from a finished `cursor` stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorSummary {
    /// Cells the server enumerated (`total` from the start line).
    pub cells: u64,
    /// Cells served from the store.
    pub cache_hits: u64,
    /// Cells freshly simulated.
    pub sims: u64,
    /// Cells that failed (each produced an inline error line).
    pub failed: u64,
}

/// One TCP connection to a serve instance (re-dialed transparently
/// under the retry policy).
pub struct ServeClient {
    addr: String,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    schema: &'static str,
    rng: Rng64,
}

/// Whether a failed attempt is worth retrying, and how.
enum Retry {
    /// Back off (honoring any hint), then re-send on the same socket.
    Backoff(Option<u64>),
    /// Back off, re-dial (and re-negotiate v2), then re-send.
    Reconnect,
}

fn retry_mode(e: &ClientError) -> Option<Retry> {
    match e {
        ClientError::Io(_) | ClientError::Protocol(_) => Some(Retry::Reconnect),
        ClientError::Server {
            kind,
            retry_after_ms,
            ..
        } if kind == "queue_full" || kind == "overloaded" => Some(Retry::Backoff(*retry_after_ms)),
        ClientError::Server { .. } => None,
    }
}

fn dial(addr: &str, config: &ClientConfig) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    // Request lines are small; leaving Nagle on costs a delayed-ACK
    // round trip (~40ms) per request.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

impl ServeClient {
    /// Connects to `addr` with the default deadlines and retry policy
    /// (a v1 session until [`ServeClient::hello_v2`]).
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        ServeClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit [`ClientConfig`].
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<ServeClient, ClientError> {
        let (reader, writer) = dial(addr, &config)?;
        Ok(ServeClient {
            addr: addr.to_string(),
            config,
            reader,
            writer,
            next_id: 1,
            schema: PROTOCOL_SCHEMA,
            rng: Rng64::new(config.seed),
        })
    }

    /// The schema currently negotiated.
    pub fn schema(&self) -> &'static str {
        self.schema
    }

    /// Sleeps the attempt's backoff: the server hint when present,
    /// else `base << attempt` capped, both with seeded jitter in
    /// `[delay/2, delay]`.
    fn backoff(&mut self, attempt: u32, hint: Option<u64>) {
        let computed = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.backoff_cap);
        let ms = hint.unwrap_or(computed.as_millis() as u64);
        if ms == 0 {
            return;
        }
        let jittered = ms / 2 + self.rng.bounded_u64(ms / 2 + 1);
        std::thread::sleep(Duration::from_millis(jittered));
    }

    /// Re-dials the server and restores the session's negotiated
    /// version (one `hello` round trip when the session was v2).
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = dial(&self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        if self.schema == PROTOCOL_SCHEMA_V2 {
            self.hello_v2_once()?;
        }
        Ok(())
    }

    fn read_json(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-conversation".to_string(),
            ));
        }
        simcore::json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response line: {e}")))
    }

    fn server_error(j: &Json) -> ClientError {
        let err = j.get("error");
        let field = |k: &str| {
            err.and_then(|e| e.get(k))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        ClientError::Server {
            kind: field("kind"),
            detail: field("detail"),
            retry_after_ms: err
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_u64),
        }
    }

    fn check_ok(&self, j: &Json, id: u64) -> Result<(), ClientError> {
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(Self::server_error(j));
        }
        match j.get("id").and_then(Json::as_u64) {
            Some(got) if got == id => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "response id {other:?} does not match request id {id}"
            ))),
        }
    }

    fn send(&mut self, mut req: Json) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        req.push("id", id);
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// One request, one checked response; no retries.
    fn round_trip(&mut self, req: Json) -> Result<Json, ClientError> {
        let id = self.send(req)?;
        let resp = self.read_json()?;
        self.check_ok(&resp, id)?;
        Ok(resp)
    }

    /// [`round_trip`](Self::round_trip) under the retry policy. Only
    /// for idempotent requests: transport failures reconnect and
    /// re-send; `queue_full`/`overloaded` back off and re-send.
    fn round_trip_retrying(&mut self, req: Json) -> Result<Json, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.round_trip(req.clone()) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let mode = match retry_mode(&err) {
                Some(m) if attempt < self.config.retries => m,
                _ => return Err(err),
            };
            self.backoff(
                attempt,
                if let Retry::Backoff(h) = &mode {
                    *h
                } else {
                    None
                },
            );
            if matches!(mode, Retry::Reconnect) {
                // A failed reconnect burns this attempt; the loop
                // retries the dial until the budget runs out.
                if let Err(e) = self.reconnect() {
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                }
            }
            attempt += 1;
        }
    }

    fn hello_v2_once(&mut self) -> Result<(), ClientError> {
        let resp = self.round_trip(
            Json::obj()
                .with("op", "hello")
                .with("schema", PROTOCOL_SCHEMA_V2),
        )?;
        match resp.get("schema").and_then(Json::as_str) {
            Some(s) if s == PROTOCOL_SCHEMA_V2 => {
                self.schema = PROTOCOL_SCHEMA_V2;
                Ok(())
            }
            other => Err(ClientError::Protocol(format!(
                "hello answered with schema {other:?}"
            ))),
        }
    }

    /// Upgrades the session to protocol v2 (retried; after a
    /// reconnect the negotiated version sticks to the session).
    pub fn hello_v2(&mut self) -> Result<(), ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.hello_v2_once() {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            if attempt >= self.config.retries || retry_mode(&err).is_none() {
                return Err(err);
            }
            self.backoff(attempt, None);
            if let Err(e) = self.reconnect() {
                if attempt >= self.config.retries {
                    return Err(e);
                }
            }
            attempt += 1;
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip_retrying(Json::obj().with("op", "ping"))
            .map(|_| ())
    }

    /// Counter snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.round_trip_retrying(Json::obj().with("op", "stats"))
    }

    /// Load/degradation probe (queue depth, shed and fault counters,
    /// store pressure).
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.round_trip_retrying(Json::obj().with("op", "health"))
    }

    /// One `run` request; returns the full response document.
    pub fn run(&mut self, spec: Json) -> Result<Json, ClientError> {
        self.round_trip_retrying(Json::obj().with("op", "run").with("spec", spec))
    }

    /// One v2 `batch` request; returns the full response document.
    pub fn batch(&mut self, specs: Vec<Json>) -> Result<Json, ClientError> {
        self.round_trip_retrying(
            Json::obj()
                .with("op", "batch")
                .with("specs", Json::Arr(specs)),
        )
    }

    /// One v2 `cursor` request: `on_cell(seq, cell_doc)` fires for
    /// every streamed cell line in order; inline error lines (failed
    /// cells) are counted, not fatal. Returns the trailer's counters.
    ///
    /// Under the retry policy a stream cut mid-flight *resumes*: the
    /// request is re-issued with `from` set to the first unacked
    /// `seq`, already-delivered cells are never replayed to
    /// `on_cell`, and the summary merges client-side hit/sim counts
    /// across segments.
    pub fn cursor(
        &mut self,
        spec: Json,
        mut on_cell: impl FnMut(u64, &Json),
    ) -> Result<CursorSummary, ClientError> {
        let mut next_seq = 0u64;
        let mut hits = 0u64;
        let mut sims = 0u64;
        let mut attempt = 0u32;
        loop {
            let resumed = next_seq > 0;
            let err = match self.cursor_segment(
                spec.clone(),
                &mut next_seq,
                &mut hits,
                &mut sims,
                &mut on_cell,
            ) {
                Ok(mut summary) => {
                    if resumed {
                        // The trailer counts only the final segment;
                        // the client-side tallies span all of them.
                        summary.cache_hits = hits;
                        summary.sims = sims;
                    }
                    return Ok(summary);
                }
                Err(e) => e,
            };
            let mode = match retry_mode(&err) {
                Some(m) if attempt < self.config.retries => m,
                _ => return Err(err),
            };
            self.backoff(
                attempt,
                if let Retry::Backoff(h) = &mode {
                    *h
                } else {
                    None
                },
            );
            if matches!(mode, Retry::Reconnect) {
                if let Err(e) = self.reconnect() {
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                }
            }
            attempt += 1;
        }
    }

    /// Drives one cursor request from `*next_seq` to its trailer,
    /// advancing `*next_seq` past every delivered cell so a cut
    /// stream can resume where it stopped.
    fn cursor_segment(
        &mut self,
        spec: Json,
        next_seq: &mut u64,
        hits: &mut u64,
        sims: &mut u64,
        on_cell: &mut impl FnMut(u64, &Json),
    ) -> Result<CursorSummary, ClientError> {
        let from = *next_seq;
        let mut req = Json::obj().with("op", "cursor").with("spec", spec);
        if from > 0 {
            req.push("from", from);
        }
        let id = self.send(req)?;
        let start = self.read_json()?;
        self.check_ok(&start, id)?;
        if start.get("op").and_then(Json::as_str) != Some("cursor") {
            return Err(ClientError::Protocol(format!(
                "expected a cursor start line, got {start}"
            )));
        }
        let total = start.get("total").and_then(Json::as_u64).unwrap_or(0);
        let mut summary = CursorSummary::default();
        loop {
            let line = self.read_json()?;
            if line.get("ok").and_then(Json::as_bool) != Some(true) {
                // A failed cell: the server streams an error line and
                // keeps going; the trailer accounts for it.
                summary.failed += 1;
                continue;
            }
            match line.get("op").and_then(Json::as_str) {
                Some("cell") => {
                    let seq = line.get("seq").and_then(Json::as_u64).unwrap_or(0);
                    if seq < *next_seq {
                        continue; // overlap from a resume; already delivered
                    }
                    if let Some(cell) = line.get("cell") {
                        if cell.get("served_by").and_then(Json::as_str) == Some("cache") {
                            *hits += 1;
                        } else {
                            *sims += 1;
                        }
                        on_cell(seq, cell);
                    }
                    *next_seq = seq + 1;
                }
                Some("cursor_done") => {
                    self.check_ok(&line, id)?;
                    let field = |k: &str| line.get(k).and_then(Json::as_u64).unwrap_or(0);
                    summary.cells = field("cells");
                    summary.cache_hits = field("cache_hits");
                    summary.sims = field("sims");
                    if field("failed") != summary.failed {
                        return Err(ClientError::Protocol(format!(
                            "cursor trailer reports {} failed cells, client saw {}",
                            field("failed"),
                            summary.failed
                        )));
                    }
                    if summary.cells != total {
                        return Err(ClientError::Protocol(format!(
                            "cursor trailer reports {} cells, start line promised {total}",
                            summary.cells
                        )));
                    }
                    if from > 0 && field("skipped") != from {
                        return Err(ClientError::Protocol(format!(
                            "resumed cursor skipped {} cells, client asked for {from}",
                            field("skipped")
                        )));
                    }
                    return Ok(summary);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected op {other:?} inside a cursor stream"
                    )))
                }
            }
        }
    }

    /// Asks the server to shut down after acknowledging. Never
    /// retried: shutdown is not idempotent from the cluster's point
    /// of view, and a vanished peer usually *is* the shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(Json::obj().with("op", "shutdown"))
            .map(|_| ())
    }
}
