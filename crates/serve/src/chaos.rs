//! Deterministic socket-level fault injection for the event loop.
//!
//! [`ChaosStream`] wraps a nonblocking `TcpStream` and consults a
//! seeded [`IoFaultPlan`] before every read/write: it can clamp a
//! call to one byte (short read/write), fail with `Interrupted` or
//! `WouldBlock` (storms the pump loops must absorb), or hard-drop the
//! connection at a predetermined I/O-op index. Every decision is a
//! pure function of `(plan seed, connection id, op index)`, so a
//! chaos run replays bit-identically from its seed — no wall clock,
//! no real randomness.
//!
//! With a disabled plan the wrapper is pass-through, so the event
//! loop uses it unconditionally and production pays only an integer
//! increment per I/O call.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simcore::fault::{IoFaultPlan, NetFault};

/// Counters for injected network faults, shared between the event
/// loop's connections and the server's `stats`/`health` reporting.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Short reads/writes plus `Interrupted`/`WouldBlock` storms.
    pub net_faults: AtomicU64,
    /// Connections hard-dropped mid-stream.
    pub drops: AtomicU64,
    /// Connections refused at accept time.
    pub refusals: AtomicU64,
}

impl ChaosCounters {
    /// Total injected network-side faults (for v2 `stats`).
    pub fn total(&self) -> u64 {
        self.net_faults.load(Ordering::Relaxed)
            + self.drops.load(Ordering::Relaxed)
            + self.refusals.load(Ordering::Relaxed)
    }
}

/// A `TcpStream` with a seeded fault plan spliced into every I/O call.
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    plan: IoFaultPlan,
    conn: u64,
    ops: u64,
    drop_after: Option<u64>,
    dropped: bool,
    counters: Arc<ChaosCounters>,
}

impl ChaosStream {
    /// Wraps `stream` as connection `conn` under `plan`. The drop
    /// point (if this connection is selected to drop) is fixed here,
    /// up front, from the seed alone.
    pub fn new(
        stream: TcpStream,
        plan: IoFaultPlan,
        conn: u64,
        counters: Arc<ChaosCounters>,
    ) -> ChaosStream {
        let drop_after = plan.drop_after(conn);
        ChaosStream {
            inner: stream,
            plan,
            conn,
            ops: 0,
            drop_after,
            dropped: false,
            counters,
        }
    }

    /// The wrapped socket, for `set_nonblocking`/`shutdown` calls the
    /// event loop still makes directly.
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    /// Decides the fate of the next I/O call: `Err` injects a fault,
    /// `Ok(limit)` optionally clamps the transfer size.
    fn next_op(&mut self) -> std::io::Result<Option<usize>> {
        let op = self.ops;
        self.ops += 1;
        if let Some(at) = self.drop_after {
            if op >= at && !self.dropped {
                self.dropped = true;
                self.counters.drops.fetch_add(1, Ordering::Relaxed);
                let _ = self.inner.shutdown(std::net::Shutdown::Both);
            }
        }
        if self.dropped {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection drop",
            ));
        }
        match self.plan.net_op(self.conn, op) {
            None => Ok(None),
            Some(NetFault::Short) => {
                self.counters.net_faults.fetch_add(1, Ordering::Relaxed);
                Ok(Some(1))
            }
            Some(NetFault::Interrupted) => {
                self.counters.net_faults.fetch_add(1, Ordering::Relaxed);
                Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected EINTR",
                ))
            }
            Some(NetFault::WouldBlock) => {
                self.counters.net_faults.fetch_add(1, Ordering::Relaxed);
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected spurious readiness",
                ))
            }
        }
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let limit = self.next_op()?;
        let end = limit.map_or(buf.len(), |l| l.min(buf.len()));
        self.inner.read(&mut buf[..end])
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let limit = self.next_op()?;
        let end = limit.map_or(buf.len(), |l| l.min(buf.len()));
        self.inner.write(&buf[..end])
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn disabled_plan_is_pass_through() {
        let (client, mut server) = pair();
        let counters = Arc::new(ChaosCounters::default());
        let mut chaos = ChaosStream::new(client, IoFaultPlan::disabled(), 0, Arc::clone(&counters));
        chaos.write_all(b"hello\n").expect("write");
        let mut buf = [0u8; 6];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hello\n");
        assert_eq!(counters.total(), 0);
    }

    #[test]
    fn short_faults_clamp_to_one_byte() {
        let (client, mut server) = pair();
        let plan = IoFaultPlan {
            net_rate: 1.0,
            ..IoFaultPlan::disabled()
        };
        // Find a connection id whose op 0 is a Short fault so the
        // clamp (not an error) is what we exercise.
        let conn = (0..1000)
            .find(|&c| plan.net_op(c, 0) == Some(NetFault::Short))
            .expect("some conn shorts first");
        let counters = Arc::new(ChaosCounters::default());
        let mut chaos = ChaosStream::new(client, plan, conn, Arc::clone(&counters));
        let n = chaos.write(b"hello").expect("short write");
        assert_eq!(n, 1, "write clamped to one byte");
        let mut buf = [0u8; 1];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"h");
        assert!(counters.net_faults.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn injected_errors_surface_with_their_kinds() {
        let plan = IoFaultPlan {
            net_rate: 1.0,
            ..IoFaultPlan::disabled()
        };
        let conn = (0..1000)
            .find(|&c| plan.net_op(c, 0) == Some(NetFault::Interrupted))
            .expect("some conn EINTRs first");
        let (client, _server) = pair();
        let mut chaos = ChaosStream::new(client, plan, conn, Arc::new(ChaosCounters::default()));
        let err = chaos.write(b"x").expect_err("injected EINTR");
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    }

    #[test]
    fn drop_point_kills_the_connection_permanently() {
        let plan = IoFaultPlan {
            drop_rate: 1.0,
            ..IoFaultPlan::disabled()
        };
        let conn = 5u64;
        let at = plan.drop_after(conn).expect("rate 1 always drops");
        let (client, _server) = pair();
        let counters = Arc::new(ChaosCounters::default());
        let mut chaos = ChaosStream::new(client, plan, conn, Arc::clone(&counters));
        let mut buf = [0u8; 1];
        for _ in 0..at {
            // Ops before the drop point pass through (reads would
            // block, so use writes, which always succeed on a fresh
            // socket buffer).
            let n = chaos.write(b".").expect("op before drop point");
            assert_eq!(n, 1, "no net faults in this plan, so no short writes");
        }
        let err = chaos.read(&mut buf).expect_err("dropped");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        // And it stays dead: every later call fails the same way.
        let err = chaos.write(b".").expect_err("still dropped");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(counters.drops.load(Ordering::Relaxed), 1);
    }
}
