//! Property tests for the `simcore::json` writer/reader pair, on the
//! in-tree `propcheck` harness: arbitrary values round-trip through
//! serialization, numbers format locale-independently, and non-finite
//! floats can never leak into output.

use simcore::json::{parse, Json};
use simcore::prop_ensure;
use simcore::propcheck::{self, no_shrink, Gen};

/// Random unicode string: a mix of plain ASCII, escapables, controls
/// and non-BMP characters (forces surrogate-pair handling in the
/// reader when escaped input is exercised elsewhere).
fn gen_string(g: &mut Gen) -> String {
    g.vec_of(0..20, |g| match g.u8_in(0..5) {
        0 => char::from(g.u8_in(0x20..0x7f)),
        1 => g.pick(&['"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}']),
        2 => char::from_u32(g.u32_in(0..0x20)).unwrap(),
        3 => g.pick(&['é', 'Ω', '☂', '中', '\u{10348}', '😀']),
        _ => {
            // Arbitrary scalar value, skipping the surrogate range.
            let mut c = g.u32_in(0..0x11_0000);
            if (0xd800..0xe000).contains(&c) {
                c -= 0xd800;
            }
            char::from_u32(c).unwrap_or('?')
        }
    })
    .into_iter()
    .collect()
}

/// Random finite f64 drawn from raw bit patterns, so exponents and
/// subnormals are covered rather than just "nice" values.
fn gen_finite_f64(g: &mut Gen) -> f64 {
    loop {
        let x = f64::from_bits(g.rng().next_u64());
        if x.is_finite() {
            return x;
        }
    }
}

/// Random value tree, depth-bounded.
fn gen_json(g: &mut Gen, depth: u32) -> Json {
    let top = if depth == 0 { 6 } else { 8 };
    match g.u8_in(0..top) {
        0 => Json::Null,
        1 => Json::Bool(g.any_bool()),
        2 => Json::UInt(g.rng().next_u64()),
        3 => Json::Int(-(g.u64_in(1..1 << 62) as i64)),
        4 => Json::Float(gen_finite_f64(g)),
        5 => Json::Str(gen_string(g)),
        6 => Json::Arr(g.vec_of(0..5, |g| gen_json(g, depth - 1))),
        _ => {
            let pairs = g.vec_of(0..5, |g| (gen_string(g), gen_json(g, depth - 1)));
            Json::Obj(pairs)
        }
    }
}

#[test]
fn prop_values_roundtrip_compact_and_pretty() {
    propcheck::check(
        "json_roundtrip",
        |g| gen_json(g, 3),
        no_shrink,
        |v| {
            let compact = v.to_string();
            let back = parse(&compact).map_err(|e| format!("{e} in {compact:?}"))?;
            prop_ensure!(back == *v, "compact roundtrip changed value: {compact:?}");
            let pretty = v.pretty();
            let back = parse(&pretty).map_err(|e| format!("{e} in {pretty:?}"))?;
            prop_ensure!(back == *v, "pretty roundtrip changed value: {pretty:?}");
            Ok(())
        },
    );
}

#[test]
fn prop_strings_roundtrip_and_output_is_valid_utf8() {
    propcheck::check("json_string_roundtrip", gen_string, no_shrink, |s| {
        let v = Json::Str(s.clone());
        let ser = v.to_string();
        // `ser` is a Rust String, hence UTF-8 by construction; the
        // load-bearing check is that every control character was
        // escaped, so the bytes are also *valid JSON* UTF-8.
        prop_ensure!(
            ser.chars().all(|c| c as u32 >= 0x20),
            "unescaped control char in {ser:?}"
        );
        let back = parse(&ser).map_err(|e| format!("{e} in {ser:?}"))?;
        prop_ensure!(back == v, "string changed: {s:?} -> {ser:?}");
        Ok(())
    });
}

#[test]
fn prop_finite_floats_roundtrip_exactly_and_locale_independently() {
    propcheck::check("json_float_roundtrip", gen_finite_f64, no_shrink, |&x| {
        let ser = Json::Float(x).to_string();
        // Locale independence: the number token may contain only
        // ASCII digits, '.', '-', '+' and 'e' — never ',' or any
        // locale-specific separator.
        prop_ensure!(
            ser.chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')),
            "non-numeric character in float token {ser:?}"
        );
        let back = parse(&ser).map_err(|e| format!("{e} in {ser:?}"))?;
        let y = back
            .as_f64()
            .ok_or_else(|| format!("{ser:?} did not parse as a number"))?;
        prop_ensure!(
            y == x || (y == 0.0 && x == 0.0),
            "float not exact: {x:?} -> {ser} -> {y:?}"
        );
        Ok(())
    });
}

#[test]
fn prop_nonfinite_floats_never_leak() {
    propcheck::check(
        "json_no_nan_inf",
        |g| {
            // NaN, ±Inf, and random bit patterns forced non-finite.
            let exp_all_ones = 0x7ff0_0000_0000_0000u64;
            f64::from_bits(exp_all_ones | (g.rng().next_u64() & 0x800f_ffff_ffff_ffff))
        },
        no_shrink,
        |&x| {
            prop_ensure!(!x.is_finite(), "generator produced finite {x}");
            let doc = Json::obj()
                .with("bad", x)
                .with("arr", Json::Arr(vec![Json::Float(x)]));
            let ser = doc.to_string();
            for tok in ["NaN", "nan", "inf", "Inf"] {
                prop_ensure!(!ser.contains(tok), "{tok} leaked into {ser:?}");
            }
            // The emitted document is still valid JSON: the value
            // degraded to null instead of poisoning the manifest.
            let back = parse(&ser).map_err(|e| e.to_string())?;
            prop_ensure!(
                back.get("bad") == Some(&Json::Null),
                "expected null, got {ser:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn prop_integer_counters_stay_exact() {
    propcheck::check(
        "json_u64_exact",
        |g| g.rng().next_u64(),
        no_shrink,
        |&x| {
            // u64 counters above 2^53 lose precision through an f64
            // detour; the writer must keep them integral.
            let ser = Json::UInt(x).to_string();
            let back = parse(&ser).map_err(|e| e.to_string())?;
            prop_ensure!(
                back.as_u64() == Some(x),
                "u64 not exact: {x} -> {ser} -> {back:?}"
            );
            Ok(())
        },
    );
}
