//! Property tests of the sampling planner plus the golden schema of
//! the `sampling` provenance object. Runs on the in-tree
//! `simcore::propcheck` harness; `cluster_check`'s schema-sync lint
//! pairs this file with `crates/simcore/src/sample.rs`, so a writer
//! key added to [`SamplingStats::to_json`] without a matching check
//! here fails the workspace lint.
//!
//! The properties pin the sampling contract the rest of the stack
//! builds on: a plan is a pure function of (trace, spec) — same seed,
//! same interval set — rate 1.0 degenerates to the full replay, and
//! the Measure/Warm/Skip classes partition every operation with the
//! coverage counters agreeing exactly. The planted-bug test drives the
//! shrinker against a plan that illegally counts warmup operations
//! ([`SamplePlan::with_warm_counted`]) and must land on the smallest
//! trace that has a warmup window at all.

use simcore::json::Json;
use simcore::ops::{Trace, TraceBuilder};
use simcore::propcheck::{self, halves, shrink_to_minimal, shrink_u64, Gen};
use simcore::sample::{OpClass, SampleMode, SamplePlan, SampleSpec, SamplingStats};
use simcore::{prop_ensure, prop_ensure_eq};

const CASES: u32 = 48;

/// One scripted op: `(kind, value)` with kind 0=read line, 1=write
/// line, 2=compute cycles.
type Script = Vec<(u8, u64)>;

/// Random multi-processor scripts over a shared 64-line region.
fn arb_scripts(g: &mut Gen, n_procs: usize) -> Vec<Script> {
    (0..n_procs)
        .map(|_| {
            g.vec_of(1..400, |g| match g.u8_in(0..3) {
                0 => (0u8, g.u64_in(0..64)),
                1 => (1u8, g.u64_in(0..64)),
                _ => (2u8, g.u64_in(1..20)),
            })
        })
        .collect()
}

/// Shrink candidates: halve one processor's script at a time.
fn shrink_scripts(scripts: &[Script]) -> Vec<Vec<Script>> {
    let mut out = Vec::new();
    for (p, script) in scripts.iter().enumerate() {
        for smaller in halves(script) {
            if smaller.is_empty() {
                continue;
            }
            let mut candidate = scripts.to_vec();
            candidate[p] = smaller;
            out.push(candidate);
        }
    }
    out
}

fn build_trace(scripts: &[Script]) -> Trace {
    let mut b = TraceBuilder::new(scripts.len());
    let base = b.space_mut().alloc_shared(64 * 64);
    for (p, script) in scripts.iter().enumerate() {
        for &(kind, v) in script {
            match kind {
                0 => b.read(p as u32, base + v * 64),
                1 => b.write(p as u32, base + v * 64),
                _ => b.compute(p as u32, v),
            }
        }
    }
    b.finish()
}

/// A spec small enough that the generated scripts span many intervals.
fn small_spec(mode: SampleMode) -> SampleSpec {
    SampleSpec {
        rate: 0.25,
        interval_ops: 16,
        warmup_ops: 8,
        ..SampleSpec::new(mode)
    }
}

#[test]
fn prop_same_spec_yields_identical_plan() {
    propcheck::check_cases(
        CASES,
        "prop_same_spec_yields_identical_plan",
        |g| (arb_scripts(g, 3), g.pick(&SampleMode::ALL)),
        |(s, m)| shrink_scripts(s).into_iter().map(|c| (c, *m)).collect(),
        |(scripts, mode)| {
            let trace = build_trace(scripts);
            let spec = small_spec(*mode);
            let a = SamplePlan::for_trace(&trace, &spec);
            let b = SamplePlan::for_trace(&trace, &spec);
            prop_ensure_eq!(a, b);
            for pid in 0..trace.n_procs() {
                prop_ensure_eq!(a.measured_ranges(pid), b.measured_ranges(pid));
            }
            Ok(())
        },
    );
}

#[test]
fn prop_rate_one_measures_every_op_in_every_mode() {
    propcheck::check_cases(
        CASES,
        "prop_rate_one_measures_every_op_in_every_mode",
        |g| (arb_scripts(g, 2), g.pick(&SampleMode::ALL)),
        |(s, m)| shrink_scripts(s).into_iter().map(|c| (c, *m)).collect(),
        |(scripts, mode)| {
            let trace = build_trace(scripts);
            let spec = SampleSpec {
                rate: 1.0,
                ..small_spec(*mode)
            };
            let plan = SamplePlan::for_trace(&trace, &spec);
            prop_ensure!(plan.is_full(), "rate 1.0 must measure everything");
            let s = plan.stats();
            prop_ensure_eq!(s.ops_measured, s.ops_total);
            prop_ensure_eq!(s.ops_warm, 0);
            prop_ensure_eq!(s.weight_measured, s.weight_total);
            for (pid, ops) in trace.per_proc.iter().enumerate() {
                for idx in 0..ops.len() {
                    prop_ensure_eq!(plan.class(pid, idx), OpClass::Measure);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn prop_classes_partition_ops_and_match_counters() {
    propcheck::check_cases(
        CASES,
        "prop_classes_partition_ops_and_match_counters",
        |g| (arb_scripts(g, 3), g.pick(&SampleMode::ALL)),
        |(s, m)| shrink_scripts(s).into_iter().map(|c| (c, *m)).collect(),
        |(scripts, mode)| {
            let trace = build_trace(scripts);
            let plan = SamplePlan::for_trace(&trace, &small_spec(*mode));
            let s = plan.stats();
            let (mut measured, mut warm, mut total) = (0u64, 0u64, 0u64);
            for (pid, ops) in trace.per_proc.iter().enumerate() {
                for idx in 0..ops.len() {
                    total += 1;
                    match plan.class(pid, idx) {
                        OpClass::Measure => measured += 1,
                        OpClass::Warm => warm += 1,
                        OpClass::Skip => {}
                    }
                }
                // Ranges are sorted and disjoint per processor.
                let mr = plan.measured_ranges(pid);
                for w in mr.windows(2) {
                    prop_ensure!(w[0].1 <= w[1].0, "measured ranges overlap");
                }
                for &(rs, re) in plan.warm_ranges(pid) {
                    prop_ensure!(rs < re, "empty warm range");
                    prop_ensure!(
                        !mr.iter().any(|&(ms, me)| rs < me && ms < re),
                        "warm range intersects a measured range"
                    );
                }
            }
            prop_ensure_eq!(s.ops_total, total);
            prop_ensure_eq!(s.ops_measured, measured);
            prop_ensure_eq!(s.ops_warm, warm);
            prop_ensure_eq!(s.ops_simulated(), measured + warm);
            prop_ensure!(s.ops_measured >= 1, "plan measured nothing");
            prop_ensure!(s.weight_measured <= s.weight_total, "weights inverted");
            prop_ensure!(s.scale() >= 1.0, "scale cannot deflate");
            Ok(())
        },
    );
}

/// The golden schema of the `sampling` provenance object: every key
/// [`SamplingStats::to_json`] emits is checked here — by name, with
/// its type — and the key count is pinned so an added writer key
/// fails this test (and the schema-sync lint) until it is covered.
#[test]
fn sampling_stats_json_golden_schema() {
    let script: Script = (0..600)
        .map(|i| ((i % 3) as u8, (i % 64) as u64 + 1))
        .collect();
    let trace = build_trace(&[script]);
    let stats = SamplePlan::for_trace(&trace, &small_spec(SampleMode::Reservoir)).stats();
    let j = stats.to_json();
    assert_eq!(
        j.get("mode").and_then(Json::as_str),
        Some("reservoir"),
        "mode must be the stable strategy label"
    );
    assert!(SampleMode::parse(j.get("mode").unwrap().as_str().unwrap()).is_ok());
    assert_eq!(j.get("rate").and_then(Json::as_f64), Some(0.25));
    for key in [
        "warmup_ops",
        "interval_ops",
        "seed",
        "ops_total",
        "ops_measured",
        "ops_warm",
        "ops_simulated",
        "weight_total",
        "weight_measured",
        "weight_warm",
        "warm_read_hits",
        "warm_read_misses",
        "warm_write_hits",
        "warm_write_misses",
        "warm_upgrade_misses",
        "warm_cpu_cycles",
        "warm_load_cycles",
        "warm_merge_cycles",
    ] {
        assert!(
            j.get(key).and_then(Json::as_u64).is_some(),
            "sampling JSON missing integer field {key}"
        );
    }
    assert_eq!(
        j.get("ops_simulated").and_then(Json::as_u64),
        Some(stats.ops_simulated()),
        "ops_simulated must be the measured + warm sum"
    );
    let Json::Obj(pairs) = &j else {
        panic!("sampling provenance must be an object")
    };
    assert_eq!(pairs.len(), 20, "unexpected sampling JSON key count");
    // Field-exact inverse: the derived ops_simulated is ignored on
    // read, everything else round-trips.
    assert_eq!(SamplingStats::from_json(&j), Some(stats));
}

/// Planted bug: [`SamplePlan::with_warm_counted`] reclassifies warmup
/// operations as measured, violating the "warmup ops are never counted
/// in statistics" contract. The property re-derives the expected class
/// from the plan's own warm ranges, so the buggy plan fails exactly
/// when a warm range exists — and the shrinker must descend to the
/// *smallest* single-processor script with a warm range at all.
///
/// With interval 4 and rate 0.5 (period 2), interval 0 is measured;
/// the first warm range any trace can have is the tail drain past it,
/// which appears as soon as the trace outgrows one interval. The
/// builder appends one final barrier, so the minimal counterexample is
/// exactly 4 scripted reads (5 trace ops: measured [0, 4), drained
/// tail [4, 5)).
#[test]
fn prop_planted_warm_counting_shrinks_to_first_warmup_window() {
    let spec = SampleSpec {
        rate: 0.5,
        interval_ops: 4,
        warmup_ops: 2,
        ..SampleSpec::new(SampleMode::Periodic)
    };
    let prop = |n: &u64| {
        // Reads, not computes: adjacent computes coalesce into one op
        // in the builder, which would collapse the script length.
        let script: Script = (0..*n).map(|i| (0u8, i % 64)).collect();
        let trace = build_trace(&[script]);
        let plan = SamplePlan::for_trace(&trace, &spec).with_warm_counted();
        for &(s, e) in plan.warm_ranges(0) {
            for idx in s..e {
                if plan.class(0, idx) == OpClass::Measure {
                    return Err(format!("warm op {idx} counted as measured"));
                }
            }
        }
        Ok(())
    };
    let mut found = 0u32;
    for seed in 0..100u64 {
        let n = Gen::from_seed(seed).u64_in(1..512);
        if prop(&n).is_ok() {
            continue;
        }
        found += 1;
        let (minimal, err, _) =
            shrink_to_minimal(n, "planted".into(), |&v| shrink_u64(v), prop, 10_000);
        assert_eq!(
            minimal, 4,
            "seed {seed}: case {n} shrank to {minimal}, not the first warm range"
        );
        assert!(err.contains("counted as measured"), "wrong failure: {err}");
    }
    assert!(found >= 20, "generator produced too few failing cases");
    // Sanity: the boundary really is 4 — one read fewer fits a single
    // interval with no drained tail, so the planted bug is
    // unobservable there.
    assert!(prop(&3).is_ok());
    assert!(prop(&4).is_err());
}
