//! Property-based tests for the simcore substrate: the LRU and
//! set-associative caches against an executable reference model, and
//! the packed trace-op encoding.

use proptest::prelude::*;
use simcore::cache::{FullLruCache, SetAssocCache};
use simcore::ops::{Op, PackedOp};

/// A straightforward Vec-based LRU reference: front = MRU.
#[derive(Default)]
struct ModelLru {
    items: Vec<(u64, u32)>,
    cap: usize,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        ModelLru {
            items: Vec::new(),
            cap,
        }
    }

    fn get(&mut self, k: u64) -> Option<u32> {
        let pos = self.items.iter().position(|(l, _)| *l == k)?;
        let e = self.items.remove(pos);
        self.items.insert(0, e);
        Some(self.items[0].1)
    }

    fn insert(&mut self, k: u64, v: u32) -> Option<(u64, u32)> {
        assert!(!self.items.iter().any(|(l, _)| *l == k));
        let evicted = if self.items.len() == self.cap {
            self.items.pop()
        } else {
            None
        };
        self.items.insert(0, (k, v));
        evicted
    }

    fn remove(&mut self, k: u64) -> Option<u32> {
        let pos = self.items.iter().position(|(l, _)| *l == k)?;
        Some(self.items.remove(pos).1)
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn cache_ops(max_key: u64) -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_key).prop_map(CacheOp::Get),
            (0..max_key, any::<u32>()).prop_map(|(k, v)| CacheOp::Insert(k, v)),
            (0..max_key).prop_map(CacheOp::Remove),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in cache_ops(24), cap in 1usize..16) {
        let mut real = FullLruCache::new(cap);
        let mut model = ModelLru::new(cap);
        for op in ops {
            match op {
                CacheOp::Get(k) => {
                    let r = real.get_mut(k).map(|v| *v);
                    let m = model.get(k);
                    prop_assert_eq!(r, m);
                }
                CacheOp::Insert(k, v) => {
                    // Skip inserts of resident lines (API precondition).
                    if real.contains(k) {
                        continue;
                    }
                    let r = real.insert(k, v).map(|e| (e.line, e.val));
                    let m = model.insert(k, v);
                    prop_assert_eq!(r, m);
                }
                CacheOp::Remove(k) => {
                    prop_assert_eq!(real.remove(k), model.remove(k));
                }
            }
            prop_assert_eq!(real.len(), model.items.len());
            prop_assert!(real.len() <= cap);
        }
        // Final recency order agrees.
        let real_order: Vec<u64> = real.iter_mru().map(|(l, _)| l).collect();
        let model_order: Vec<u64> = model.items.iter().map(|(l, _)| *l).collect();
        prop_assert_eq!(real_order, model_order);
    }

    #[test]
    fn set_assoc_is_lru_within_each_set(ops in cache_ops(32), ways in 1usize..5) {
        // A set-associative cache with S sets behaves exactly like S
        // independent LRU caches of `ways` entries, keyed by the set
        // bits.
        let n_sets = 4usize;
        let mut real = SetAssocCache::new(n_sets * ways, ways);
        let mut models: Vec<ModelLru> = (0..n_sets).map(|_| ModelLru::new(ways)).collect();
        for op in ops {
            match op {
                CacheOp::Get(k) => {
                    let set = (k % n_sets as u64) as usize;
                    prop_assert_eq!(real.get_mut(k).map(|v| *v), models[set].get(k));
                }
                CacheOp::Insert(k, v) => {
                    if real.contains(k) {
                        continue;
                    }
                    let set = (k % n_sets as u64) as usize;
                    let r = real.insert(k, v).map(|e| (e.line, e.val));
                    prop_assert_eq!(r, models[set].insert(k, v));
                }
                CacheOp::Remove(k) => {
                    let set = (k % n_sets as u64) as usize;
                    prop_assert_eq!(real.remove(k), models[set].remove(k));
                }
            }
        }
    }

    #[test]
    fn packed_op_roundtrips(tag in 0u8..6, payload in 0u64..(1 << 61)) {
        let op = match tag {
            0 => Op::Read(payload),
            1 => Op::Write(payload),
            2 => Op::Compute(payload),
            3 => Op::Barrier(payload as u32),
            4 => Op::Lock(payload as u32),
            _ => Op::Unlock(payload as u32),
        };
        prop_assert_eq!(PackedOp::pack(op).unpack(), op);
    }

    #[test]
    fn allocator_regions_never_overlap(sizes in prop::collection::vec(1u64..10_000, 1..40)) {
        let mut space = simcore::space::AddressSpace::new();
        let mut regions = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let base = if i % 2 == 0 {
                space.alloc_shared(s)
            } else {
                space.alloc_owned(s, (i % 7) as u32)
            };
            regions.push((base, s));
        }
        for (i, &(a, sa)) in regions.iter().enumerate() {
            // Lookups hit the right region at both ends.
            prop_assert!(space.placement_of(a).is_some());
            prop_assert!(space.placement_of(a + sa - 1).is_some());
            for &(b, _) in &regions[i + 1..] {
                prop_assert!(a + sa <= b || a >= b, "regions overlap");
            }
        }
    }

    #[test]
    fn lines_in_range_counts_exactly(base in 0u64..100_000, bytes in 0u64..10_000) {
        let expect: std::collections::HashSet<u64> =
            (base..base + bytes).map(simcore::addr::line_of).collect();
        prop_assert_eq!(
            simcore::addr::lines_in_range(base, bytes),
            expect.len() as u64
        );
    }
}
