//! Property-based tests for the simcore substrate: the LRU and
//! set-associative caches against an executable reference model, and
//! the packed trace-op encoding. Runs on the in-tree `propcheck`
//! harness (see `simcore::propcheck`); case count is controlled by
//! `PROPCHECK_CASES`.

use simcore::cache::{FullLruCache, SetAssocCache};
use simcore::ops::{Op, PackedOp};
use simcore::propcheck::{
    self, drop_each, halves, halves_and_each, no_shrink, shrink_each, shrink_to_minimal,
    shrink_u64, Gen,
};
use simcore::{prop_ensure, prop_ensure_eq};

/// A straightforward Vec-based LRU reference: front = MRU.
#[derive(Default)]
struct ModelLru {
    items: Vec<(u64, u32)>,
    cap: usize,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        ModelLru {
            items: Vec::new(),
            cap,
        }
    }

    fn get(&mut self, k: u64) -> Option<u32> {
        let pos = self.items.iter().position(|(l, _)| *l == k)?;
        let e = self.items.remove(pos);
        self.items.insert(0, e);
        Some(self.items[0].1)
    }

    fn insert(&mut self, k: u64, v: u32) -> Option<(u64, u32)> {
        assert!(!self.items.iter().any(|(l, _)| *l == k));
        let evicted = if self.items.len() == self.cap {
            self.items.pop()
        } else {
            None
        };
        self.items.insert(0, (k, v));
        evicted
    }

    fn remove(&mut self, k: u64) -> Option<u32> {
        let pos = self.items.iter().position(|(l, _)| *l == k)?;
        Some(self.items.remove(pos).1)
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn cache_ops(g: &mut Gen, max_key: u64) -> Vec<CacheOp> {
    g.vec_of(0..200, |g| match g.u8_in(0..3) {
        0 => CacheOp::Get(g.u64_in(0..max_key)),
        1 => CacheOp::Insert(g.u64_in(0..max_key), g.any_u32()),
        _ => CacheOp::Remove(g.u64_in(0..max_key)),
    })
}

/// Element-wise simplifications for one cache op: any op degrades
/// toward `Get(0)` — `Get` is the least stateful op, and smaller keys
/// and values read better in a counterexample.
fn simplify_cache_op(op: &CacheOp) -> Vec<CacheOp> {
    let mut out = Vec::new();
    match op {
        CacheOp::Get(k) => out.extend(shrink_u64(*k).into_iter().map(CacheOp::Get)),
        CacheOp::Insert(k, v) => {
            out.push(CacheOp::Get(*k));
            out.extend(shrink_u64(*k).into_iter().map(|k2| CacheOp::Insert(k2, *v)));
            if *v != 0 {
                out.push(CacheOp::Insert(*k, 0));
            }
        }
        CacheOp::Remove(k) => {
            out.push(CacheOp::Get(*k));
            out.extend(shrink_u64(*k).into_iter().map(CacheOp::Remove));
        }
    }
    out
}

#[test]
fn lru_matches_reference_model() {
    propcheck::check(
        "lru_matches_reference_model",
        |g| (cache_ops(g, 24), g.usize_in(1..16)),
        |(ops, cap)| {
            halves_and_each(ops, simplify_cache_op)
                .into_iter()
                .map(|h| (h, *cap))
                .collect()
        },
        |(ops, cap)| {
            let mut real = FullLruCache::new(*cap);
            let mut model = ModelLru::new(*cap);
            for op in ops {
                match op {
                    CacheOp::Get(k) => {
                        let r = real.get_mut(*k).map(|v| *v);
                        let m = model.get(*k);
                        prop_ensure_eq!(r, m);
                    }
                    CacheOp::Insert(k, v) => {
                        // Skip inserts of resident lines (API precondition).
                        if real.contains(*k) {
                            continue;
                        }
                        let r = real.insert(*k, *v).map(|e| (e.line, e.val));
                        let m = model.insert(*k, *v);
                        prop_ensure_eq!(r, m);
                    }
                    CacheOp::Remove(k) => {
                        prop_ensure_eq!(real.remove(*k), model.remove(*k));
                    }
                }
                prop_ensure_eq!(real.len(), model.items.len());
                prop_ensure!(real.len() <= *cap, "over capacity");
            }
            // Final recency order agrees.
            let real_order: Vec<u64> = real.iter_mru().map(|(l, _)| l).collect();
            let model_order: Vec<u64> = model.items.iter().map(|(l, _)| *l).collect();
            prop_ensure_eq!(real_order, model_order);
            Ok(())
        },
    );
}

#[test]
fn set_assoc_is_lru_within_each_set() {
    propcheck::check(
        "set_assoc_is_lru_within_each_set",
        |g| (cache_ops(g, 32), g.usize_in(1..5)),
        |(ops, ways)| halves(ops).into_iter().map(|h| (h, *ways)).collect(),
        |(ops, ways)| {
            // A set-associative cache with S sets behaves exactly like S
            // independent LRU caches of `ways` entries, keyed by the set
            // bits.
            let n_sets = 4usize;
            let mut real = SetAssocCache::new(n_sets * ways, *ways);
            let mut models: Vec<ModelLru> = (0..n_sets).map(|_| ModelLru::new(*ways)).collect();
            for op in ops {
                match op {
                    CacheOp::Get(k) => {
                        let set = (k % n_sets as u64) as usize;
                        prop_ensure_eq!(real.get_mut(*k).map(|v| *v), models[set].get(*k));
                    }
                    CacheOp::Insert(k, v) => {
                        if real.contains(*k) {
                            continue;
                        }
                        let set = (k % n_sets as u64) as usize;
                        let r = real.insert(*k, *v).map(|e| (e.line, e.val));
                        prop_ensure_eq!(r, models[set].insert(*k, *v));
                    }
                    CacheOp::Remove(k) => {
                        let set = (k % n_sets as u64) as usize;
                        prop_ensure_eq!(real.remove(*k), models[set].remove(*k));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn packed_op_roundtrips() {
    propcheck::check(
        "packed_op_roundtrips",
        |g| (g.u8_in(0..6), g.u64_in(0..(1 << 61))),
        no_shrink,
        |&(tag, payload)| {
            let op = match tag {
                0 => Op::Read(payload),
                1 => Op::Write(payload),
                2 => Op::Compute(payload),
                3 => Op::Barrier(payload as u32),
                4 => Op::Lock(payload as u32),
                _ => Op::Unlock(payload as u32),
            };
            prop_ensure_eq!(PackedOp::pack(op).unpack(), op);
            Ok(())
        },
    );
}

#[test]
fn allocator_regions_never_overlap() {
    propcheck::check(
        "allocator_regions_never_overlap",
        |g| g.vec_of(1..40, |g| g.u64_in(1..10_000)),
        |sizes| halves(sizes),
        |sizes| {
            let mut space = simcore::space::AddressSpace::new();
            let mut regions = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                let base = if i % 2 == 0 {
                    space.alloc_shared(s)
                } else {
                    space.alloc_owned(s, (i % 7) as u32)
                };
                regions.push((base, s));
            }
            for (i, &(a, sa)) in regions.iter().enumerate() {
                // Lookups hit the right region at both ends.
                prop_ensure!(space.placement_of(a).is_some(), "base lookup failed");
                prop_ensure!(
                    space.placement_of(a + sa - 1).is_some(),
                    "end lookup failed"
                );
                for &(b, _) in &regions[i + 1..] {
                    prop_ensure!(a + sa <= b || a >= b, "regions overlap");
                }
            }
            Ok(())
        },
    );
}

/// Planted bug #1: "no element may reach 50" over vectors of values
/// in 0..60. Halving alone stops at *some* single offending element
/// (any of 50..60); element-wise shrinking must drive it to exactly
/// the boundary value, so the minimal counterexample is `[50]`.
#[test]
fn prop_elementwise_shrink_lands_on_threshold_boundary() {
    let gen = |g: &mut Gen| g.vec_of(1..40, |g| g.u64_in(0..60));
    let prop = |v: &Vec<u64>| {
        if v.iter().all(|&x| x < 50) {
            Ok(())
        } else {
            Err("element >= 50".to_string())
        }
    };
    let mut found = 0u32;
    for seed in 0..200u64 {
        let case = gen(&mut Gen::from_seed(seed));
        if prop(&case).is_ok() {
            continue;
        }
        found += 1;
        let (minimal, _, _) = shrink_to_minimal(
            case.clone(),
            "planted".into(),
            |v| halves_and_each(v, |&x| shrink_u64(x)),
            prop,
            10_000,
        );
        assert_eq!(
            minimal,
            vec![50],
            "seed {seed}: case {case:?} did not shrink to the boundary"
        );
        // The halving-only shrinker usually cannot reach [50] — that
        // gap is what the element-wise pool closes.
        let (coarse, _, _) = shrink_to_minimal(case, "planted".into(), |v| halves(v), prop, 10_000);
        assert_eq!(coarse.len(), 1, "halving still minimizes length");
    }
    assert!(found >= 20, "generator produced too few failing cases");
}

/// Planted bug #2: "the sum must stay below 100". The minimal
/// counterexample sums to exactly 100 (one less anywhere and it
/// passes) with every element load-bearing: dropping any element
/// brings the sum under the threshold.
#[test]
fn prop_elementwise_shrink_minimizes_sum_to_exact_threshold() {
    let gen = |g: &mut Gen| g.vec_of(1..30, |g| g.u64_in(0..60));
    let prop = |v: &Vec<u64>| {
        if v.iter().sum::<u64>() < 100 {
            Ok(())
        } else {
            Err(format!("sum {} >= 100", v.iter().sum::<u64>()))
        }
    };
    let mut found = 0u32;
    for seed in 0..200u64 {
        let case = gen(&mut Gen::from_seed(seed));
        if prop(&case).is_ok() {
            continue;
        }
        found += 1;
        // Structural pool includes drop-each so the fixed point has no
        // passenger elements (an interior 0 would survive halving).
        let (minimal, _, _) = shrink_to_minimal(
            case,
            "planted".into(),
            |v| {
                let mut c = halves(v);
                c.extend(drop_each(v));
                c.extend(shrink_each(v, |&x| shrink_u64(x)));
                c
            },
            prop,
            10_000,
        );
        let sum: u64 = minimal.iter().sum();
        assert_eq!(sum, 100, "seed {seed}: not tight: {minimal:?}");
        for drop in 0..minimal.len() {
            let mut shorter = minimal.clone();
            let removed = shorter.remove(drop);
            assert!(
                prop(&shorter).is_ok(),
                "seed {seed}: element {removed} at {drop} was not load-bearing: {minimal:?}"
            );
        }
    }
    assert!(found >= 20, "generator produced too few failing cases");
}

#[test]
fn lines_in_range_counts_exactly() {
    propcheck::check(
        "lines_in_range_counts_exactly",
        |g| (g.u64_in(0..100_000), g.u64_in(0..10_000)),
        no_shrink,
        |&(base, bytes)| {
            let expect: std::collections::HashSet<u64> =
                (base..base + bytes).map(simcore::addr::line_of).collect();
            prop_ensure_eq!(
                simcore::addr::lines_in_range(base, bytes),
                expect.len() as u64
            );
            Ok(())
        },
    );
}
