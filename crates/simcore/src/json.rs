//! Minimal, zero-dependency JSON: a value tree, a writer and a
//! strict reader.
//!
//! The results layer (run manifests under `results/`, CI artifacts)
//! needs machine-readable output, but the workspace is hermetic — no
//! `serde`. This module implements exactly the subset the manifests
//! need, with two properties the tests pin down:
//!
//! * **Locale-independent, round-trippable numbers.** Floats are
//!   written with Rust's shortest-round-trip `{:?}` formatting (always
//!   `.` as the decimal separator, never `,`), so `parse(write(x))`
//!   recovers `x` exactly for every finite `f64`. Integer counters are
//!   kept as integers ([`Json::UInt`]/[`Json::Int`]) and never lose
//!   precision to an `f64` detour.
//! * **No NaN/Inf leaks.** JSON has no representation for them; the
//!   writer emits `null` for non-finite floats rather than producing
//!   output other parsers reject.
//!
//! Objects preserve insertion order, so a manifest serializes
//! deterministically — the schema tests compare serial and parallel
//! runs byte-for-byte.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialize as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (cycle counts exceed 2^53).
    UInt(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// A finite double. Non-finite values are written as `null`.
    Float(f64),
    /// A string (arbitrary UTF-8; control characters are escaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (build it up with [`Json::push`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair to an object. Panics on non-objects
    /// (a construction bug, not a data error).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            // cluster_check: allow(no-panic) — a construction bug in
            // the caller, not a data error (documented contract).
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(x) => Some(*x),
            Json::Int(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Numeric view: any of the number variants, as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(x) => Some(*x as f64),
            Json::Int(x) => Some(*x as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Two-space-indented rendering, for human-diffable artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    x.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::UInt(x) => write!(f, "{x}"),
            Json::Int(x) => write!(f, "{x}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut out = String::new();
                escape_into(s, &mut out);
                f.write_str(&out)
            }
            Json::Arr(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    escape_into(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::UInt(x as u64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        if x >= 0 {
            Json::UInt(x as u64)
        } else {
            Json::Int(x)
        }
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(xs: Vec<Json>) -> Json {
        Json::Arr(xs)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if u32::from(c) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Recursion guard: manifests are ~4 levels deep; anything past this
/// is hostile input, not data.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                loop {
                    self.skip_ws();
                    xs.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(xs));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected ':'"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    pairs.push((k, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.eat("\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // cluster_check: allow(no-panic) — the scanned range is all
        // ASCII digits/signs, so UTF-8 validation cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(mag) = rest.parse::<u64>() {
                    if mag == 0 {
                        return Ok(Json::UInt(0));
                    }
                    if let Ok(x) = text.parse::<i64>() {
                        return Ok(Json::Int(x));
                    }
                    let _ = mag;
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Json::UInt(x));
            }
        }
        let x: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if x.is_finite() {
            Ok(Json::Float(x))
        } else {
            Err(self.err("number overflows f64"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::UInt(0), "0"),
            (Json::UInt(u64::MAX), "18446744073709551615"),
            (Json::Int(-7), "-7"),
            (Json::Float(1.5), "1.5"),
            (Json::Str("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = Json::obj().with("z", 1u64).with("a", 2u64).with("m", 3u64);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2,"m":3}"#);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj()
            .with(
                "arr",
                Json::Arr(vec![Json::UInt(1), Json::Null, "x".into()]),
            )
            .with("obj", Json::obj().with("k", 2.25f64));
        let compact = v.to_string();
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00/slash\/esc""#).unwrap(),
            Json::Str("Aé😀/slash/esc".into())
        );
        assert_eq!(parse("\"héllo ☂\"").unwrap(), Json::Str("héllo ☂".into()));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "1 2",
            "{\"a\":}",
            "\"\\q\"",
            "01e",
            "1.",
            "\"\\ud800\"",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn number_classes() {
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("-0").unwrap(), Json::UInt(0));
        assert_eq!(parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // An integer too big for u64 degrades to a float rather than
        // failing.
        assert!(matches!(
            parse("99999999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }
}
