//! Memory-system substrate for the clustered shared-address-space
//! multiprocessor study (Erlichson et al., SC'95).
//!
//! This crate provides the timing- and protocol-agnostic building blocks
//! shared by the rest of the workspace:
//!
//! * [`addr`] — cache-line address arithmetic (64-byte lines, as in the
//!   paper).
//! * [`space`] — a shared virtual address space with an allocator and the
//!   *placement policies* the paper describes (round-robin first touch,
//!   owner-local for stacks and explicitly placed data).
//! * [`ops`] — the packed trace-operation encoding used by the workload
//!   suite and replayed by the timing engine.
//! * [`cache`] — fully-associative LRU caches (the paper's configuration)
//!   and set-associative caches (for the paper's stated future work on
//!   limited associativity).
//! * [`stats`] — execution-time breakdowns (CPU busy / load stall / merge
//!   stall / sync wait) and miss classification counters.
//! * [`rng`] — self-contained seedable PRNG (SplitMix64-seeded
//!   xoshiro256**), so workload generation needs no external crates.
//! * [`fault`] — deterministic fault injection (`STUDY_FAULT_*`):
//!   seed-keyed panic/delay schedules the guarded study executor uses
//!   to prove panic isolation, retry determinism and resume
//!   correctness.
//! * [`propcheck`] — an in-tree deterministic property-test harness
//!   (seeded cases, `PROPCHECK_CASES`, structural and element-wise
//!   shrinking).
//! * [`hash`] — stable 128-bit FNV-1a content hashing for the serving
//!   layer's content-addressed result/trace stores.
//! * [`json`] — minimal JSON value/writer/reader for the
//!   machine-readable results layer (run manifests, CI artifacts).
//! * [`metrics`] — insertion-ordered registry of named counters,
//!   gauges and timers reported through the manifests.
//! * [`sample`] — sampled/interval simulation plans: periodic,
//!   reservoir and phase-detecting interval selection with warmup
//!   windows replayed for cache state but excluded from statistics.
//! * [`vclock`] — vector clocks and FastTrack-style epochs for
//!   happens-before analysis of traces.
//! * [`witness`] — race-report and order-certificate types shared by
//!   the `cluster_check` race detector and replay certifier.
//! * [`cast`] — named lossless integer conversions (the `no-lossy-cast`
//!   lint forbids bare `as u32`/`as usize` in the simulation crates).

pub mod addr;
pub mod cache;
pub mod cast;
pub mod fault;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod ops;
pub mod propcheck;
pub mod rng;
pub mod sample;
pub mod space;
pub mod stats;
pub mod vclock;
pub mod witness;

pub use addr::{line_of, LineAddr, LINE_BYTES, LINE_SHIFT};
pub use cache::{CacheError, CacheKind, EvictedLine, FullLruCache, SetAssocCache};
pub use cast::usize_from;
pub use fault::{DiskFault, DiskFaultKind, FaultKind, FaultPlan, IoFaultPlan, NetFault};
pub use hash::{fnv1a128, stable_key};
pub use json::Json;
pub use metrics::{MetricValue, Metrics};
pub use ops::{Op, PackedOp, Trace, TraceBuilder};
pub use rng::Rng64;
pub use sample::{OpClass, SampleError, SampleMode, SamplePlan, SampleSpec, SamplingStats};
pub use space::{AddressSpace, Placement, ProcId, Region, SharedArray};
pub use stats::{Breakdown, MissClass, MissStats, RunStats};
pub use vclock::{Epoch, VectorClock};
pub use witness::{
    certificate_json, race_report_json, AccessKind, CommitKind, RaceAccess, RaceReport,
    WitnessEvent,
};
