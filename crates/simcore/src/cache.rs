//! Cache structures used for the per-cluster shared caches.
//!
//! The paper simulates *fully associative* caches with LRU replacement
//! "to exclude the effect of conflict misses from the performance
//! characterizations" (§3.1). [`FullLruCache`] implements that with an
//! O(1) hash map + intrusive doubly-linked recency list.
//!
//! The paper defers limited associativity (and the destructive
//! interference it causes in shared caches) to future work; we provide
//! [`SetAssocCache`] so the ablation benches can explore it.

use std::collections::HashMap;

use crate::addr::LineAddr;

/// A line evicted by an insertion, returned to the caller so the
/// coherence layer can issue a replacement hint / writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine<V> {
    /// The evicted line address.
    pub line: LineAddr,
    /// Its payload (coherence state) at eviction.
    pub val: V,
}

/// A rejected cache geometry. User-reachable: cache shapes come from
/// CLI/config-level `CacheSpec`s, so constructors offer `try_new`
/// variants returning this instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// Capacity of zero lines.
    ZeroCapacity,
    /// Set-associative cache with zero ways.
    ZeroWays,
    /// Total capacity smaller than the associativity (less than one
    /// set).
    CapacityBelowWays {
        /// Requested total capacity in lines.
        lines: usize,
        /// Requested associativity.
        ways: usize,
    },
    /// `capacity / ways` is not a power of two (set index must be a
    /// bit mask).
    SetsNotPowerOfTwo {
        /// The resulting set count.
        sets: usize,
    },
    /// Capacity is not an exact multiple of the associativity.
    CapacityNotWaysMultiple {
        /// Requested total capacity in lines.
        lines: usize,
        /// Requested associativity.
        ways: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::ZeroCapacity => write!(f, "cache capacity must be positive"),
            CacheError::ZeroWays => write!(f, "associativity must be positive"),
            CacheError::CapacityBelowWays { lines, ways } => {
                write!(f, "capacity {lines} lines is below associativity {ways}")
            }
            CacheError::SetsNotPowerOfTwo { sets } => {
                write!(f, "number of sets ({sets}) must be a power of two")
            }
            CacheError::CapacityNotWaysMultiple { lines, ways } => {
                write!(f, "capacity {lines} lines is not a multiple of {ways} ways")
            }
        }
    }
}

impl std::error::Error for CacheError {}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<V> {
    line: LineAddr,
    val: V,
    prev: u32,
    next: u32,
}

/// A fully-associative cache with true LRU replacement.
///
/// Capacity is measured in cache lines; `usize::MAX` models the paper's
/// infinite caches (no replacement ever occurs).
#[derive(Debug, Clone)]
pub struct FullLruCache<V> {
    map: HashMap<LineAddr, u32>,
    slots: Vec<Slot<V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl<V> FullLruCache<V> {
    /// Creates a cache holding at most `capacity_lines` lines,
    /// panicking on a zero capacity; [`FullLruCache::try_new`] is the
    /// non-panicking form for user-supplied geometries.
    pub fn new(capacity_lines: usize) -> Self {
        // cluster_check: allow(no-panic) — documented panicking
        // constructor; callers with user input use try_new.
        Self::try_new(capacity_lines).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a cache holding at most `capacity_lines` lines, or
    /// explains why the geometry is invalid.
    pub fn try_new(capacity_lines: usize) -> Result<Self, CacheError> {
        if capacity_lines == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        Ok(FullLruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity_lines,
        })
    }

    /// Creates an effectively infinite cache.
    pub fn infinite() -> Self {
        Self::new(usize::MAX)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `line` is resident (does not affect recency).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.map.contains_key(&line)
    }

    /// Payload of `line` without touching recency.
    pub fn peek(&self, line: LineAddr) -> Option<&V> {
        self.map
            .get(&line)
            .map(|&i| &self.slots[crate::cast::usize_from(i)].val)
    }

    /// Mutable payload of `line`, promoting it to most-recently-used.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let &idx = self.map.get(&line)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&mut self.slots[crate::cast::usize_from(idx)].val)
    }

    /// Mutable payload of `line` without touching recency.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let &idx = self.map.get(&line)?;
        Some(&mut self.slots[crate::cast::usize_from(idx)].val)
    }

    /// Inserts `line` as most-recently-used. The line must not already
    /// be resident. If the cache is full the LRU line is evicted and
    /// returned.
    pub fn insert(&mut self, line: LineAddr, val: V) -> Option<EvictedLine<V>> {
        assert!(
            !self.map.contains_key(&line),
            "insert of already-resident line {line:#x}"
        );

        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let slot = &mut self.slots[crate::cast::usize_from(victim)];
            let old_line = slot.line;
            self.map.remove(&old_line);
            slot.line = line;
            let old_val = std::mem::replace(&mut slot.val, val);
            self.map.insert(line, victim);
            self.push_front(victim);
            Some(EvictedLine {
                line: old_line,
                val: old_val,
            })
        } else {
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slots[crate::cast::usize_from(i)] = Slot {
                        line,
                        val,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    self.slots.push(Slot {
                        line,
                        val,
                        prev: NIL,
                        next: NIL,
                    });
                    // cluster_check: allow(no-lossy-cast) — slot
                    // count is bounded by the line capacity, far below
                    // u32::MAX for any configurable cache.
                    (self.slots.len() - 1) as u32
                }
            };
            self.map.insert(line, idx);
            self.push_front(idx);
            None
        }
    }

    /// Removes `line` (invalidation), returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<V>
    where
        V: Default,
    {
        let idx = self.map.remove(&line)?;
        self.unlink(idx);
        self.free.push(idx);
        Some(std::mem::take(
            &mut self.slots[crate::cast::usize_from(idx)].val,
        ))
    }

    /// Iterates resident lines from most- to least-recently-used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let slot = &self.slots[crate::cast::usize_from(cur)];
            cur = slot.next;
            Some((slot.line, &slot.val))
        })
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[crate::cast::usize_from(idx)];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[crate::cast::usize_from(prev)].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[crate::cast::usize_from(next)].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let s = &mut self.slots[crate::cast::usize_from(idx)];
        s.prev = NIL;
        s.next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[crate::cast::usize_from(idx)].prev = NIL;
        self.slots[crate::cast::usize_from(idx)].next = self.head;
        if self.head != NIL {
            self.slots[crate::cast::usize_from(self.head)].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A set-associative cache with per-set LRU, for the limited-associativity
/// extension study. Set index is taken from the low bits of the line
/// address, as in a physically indexed cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<(LineAddr, V)>>, // front = MRU
    ways: usize,
    set_mask: u64,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache of `capacity_lines` total lines with `ways`
    /// associativity, panicking on an invalid geometry;
    /// [`SetAssocCache::try_new`] is the non-panicking form.
    /// `capacity_lines / ways` must be a power of two.
    pub fn new(capacity_lines: usize, ways: usize) -> Self {
        // cluster_check: allow(no-panic) — documented panicking
        // constructor; callers with user input use try_new.
        Self::try_new(capacity_lines, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a cache of `capacity_lines` total lines with `ways`
    /// associativity, or explains why the geometry is invalid.
    pub fn try_new(capacity_lines: usize, ways: usize) -> Result<Self, CacheError> {
        if ways == 0 {
            return Err(CacheError::ZeroWays);
        }
        if capacity_lines < ways {
            return Err(CacheError::CapacityBelowWays {
                lines: capacity_lines,
                ways,
            });
        }
        let n_sets = capacity_lines / ways;
        if !n_sets.is_power_of_two() {
            return Err(CacheError::SetsNotPowerOfTwo { sets: n_sets });
        }
        if n_sets * ways != capacity_lines {
            return Err(CacheError::CapacityNotWaysMultiple {
                lines: capacity_lines,
                ways,
            });
        }
        Ok(SetAssocCache {
            sets: (0..n_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: (n_sets - 1) as u64,
        })
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        // cluster_check: allow(no-lossy-cast) — masked to the set-index
        // bits, which fit any usize (set counts are small powers of 2).
        (line & self.set_mask) as usize
    }

    /// Whether `line` is resident (does not affect recency).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_of(line)].iter().any(|(l, _)| *l == line)
    }

    /// Payload of `line` without touching recency.
    pub fn peek(&self, line: LineAddr) -> Option<&V> {
        self.sets[self.set_of(line)]
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, v)| v)
    }

    /// Mutable payload of `line`, promoting it to MRU within its set.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|(l, _)| *l == line)?;
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(&mut set[0].1)
    }

    /// Mutable payload of `line` without touching recency.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let set_idx = self.set_of(line);
        self.sets[set_idx]
            .iter_mut()
            .find(|(l, _)| *l == line)
            .map(|(_, v)| v)
    }

    /// Inserts `line` as MRU of its set; evicts the set's LRU line when
    /// the set is full. The line must not already be resident.
    pub fn insert(&mut self, line: LineAddr, val: V) -> Option<EvictedLine<V>> {
        let set_idx = self.set_of(line);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        assert!(
            !set.iter().any(|(l, _)| *l == line),
            "insert of already-resident line {line:#x}"
        );
        let evicted = if set.len() == ways {
            // cluster_check: allow(no-panic) — set.len() == ways > 0
            // here, so the set cannot be empty (internal invariant).
            let (l, v) = set.pop().expect("full set is non-empty");
            Some(EvictedLine { line: l, val: v })
        } else {
            None
        };
        set.insert(0, (line, val));
        evicted
    }

    /// Removes `line` (invalidation), returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|(l, _)| *l == line)?;
        Some(set.remove(pos).1)
    }

    /// Iterates every resident line in set order (MRU-first within a
    /// set). For state inspection — invariant checks, the protocol
    /// model checker's snapshots — not for timing-sensitive paths.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|(l, v)| (*l, v)))
    }
}

/// Cache organization selector for a cluster cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Infinite capacity (compulsory + coherence misses only; §4).
    Infinite,
    /// Fully associative LRU of the given capacity in lines (§5).
    FullLru {
        /// Total capacity in lines.
        lines: usize,
    },
    /// Set-associative LRU (extension study).
    SetAssoc {
        /// Total capacity in lines.
        lines: usize,
        /// Associativity.
        ways: usize,
    },
}

impl CacheKind {
    /// A fully-associative cache sized in bytes per processor, scaled by
    /// the cluster size (the paper keeps *total* cache per processor
    /// fixed: an 8-processor cluster with 4 KB/processor has one 32 KB
    /// shared cache).
    pub fn full_lru_per_proc(bytes_per_proc: u64, procs_per_cluster: usize) -> CacheKind {
        let lines = usize::try_from(bytes_per_proc / crate::addr::LINE_BYTES)
            .unwrap_or(usize::MAX)
            .saturating_mul(procs_per_cluster);
        CacheKind::FullLru {
            lines: lines.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = FullLruCache::new(2);
        assert!(c.insert(1, 'a').is_none());
        assert!(c.insert(2, 'b').is_none());
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get_mut(1), Some(&mut 'a'));
        let ev = c.insert(3, 'c').unwrap();
        assert_eq!(ev, EvictedLine { line: 2, val: 'b' });
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn lru_peek_does_not_promote() {
        let mut c = FullLruCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        assert!(c.peek(1).is_some());
        let ev = c.insert(3, ()).unwrap();
        assert_eq!(ev.line, 1, "peek must not refresh recency");
    }

    #[test]
    fn lru_remove_frees_capacity() {
        let mut c = FullLruCache::new(2);
        c.insert(1, 0u8);
        c.insert(2, 0u8);
        assert_eq!(c.remove(1), Some(0));
        assert_eq!(c.remove(1), None);
        assert!(c.insert(3, 0).is_none(), "removal freed a slot");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_iter_mru_order() {
        let mut c = FullLruCache::new(8);
        for l in 0..4 {
            c.insert(l, ());
        }
        c.get_mut(0);
        let order: Vec<_> = c.iter_mru().map(|(l, _)| l).collect();
        assert_eq!(order, vec![0, 3, 2, 1]);
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = FullLruCache::infinite();
        for l in 0..10_000u64 {
            assert!(c.insert(l, ()).is_none());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut c = FullLruCache::new(4);
        c.insert(1, ());
        c.insert(1, ());
    }

    #[test]
    fn set_assoc_conflict_eviction() {
        // 4 lines, 2 ways => 2 sets. Lines 0,2,4 map to set 0.
        let mut c = SetAssocCache::new(4, 2);
        assert!(c.insert(0, 'a').is_none());
        assert!(c.insert(2, 'b').is_none());
        // Set 0 now full even though the cache is half empty.
        let ev = c.insert(4, 'c').unwrap();
        assert_eq!(ev.line, 0, "LRU of set 0 is evicted");
        assert_eq!(c.len(), 2);
        // Set 1 unaffected.
        assert!(c.insert(1, 'd').is_none());
    }

    #[test]
    fn set_assoc_touch_promotes_within_set() {
        let mut c = SetAssocCache::new(4, 2);
        c.insert(0, ());
        c.insert(2, ());
        c.get_mut(0);
        let ev = c.insert(4, ()).unwrap();
        assert_eq!(ev.line, 2);
    }

    #[test]
    fn set_assoc_direct_mapped() {
        let mut c = SetAssocCache::new(4, 1);
        c.insert(0, ());
        let ev = c.insert(4, ()).unwrap();
        assert_eq!(ev.line, 0);
        assert!(c.contains(4));
    }

    #[test]
    fn cache_kind_scaling() {
        match CacheKind::full_lru_per_proc(4096, 8) {
            CacheKind::FullLru { lines } => assert_eq!(lines, 4096 / 64 * 8),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic]
    fn set_assoc_requires_pow2_sets() {
        let _: SetAssocCache<()> = SetAssocCache::new(24, 2); // 12 sets, not a power of two
    }

    #[test]
    fn try_new_reports_typed_geometry_errors() {
        assert_eq!(
            FullLruCache::<()>::try_new(0).err(),
            Some(CacheError::ZeroCapacity)
        );
        assert!(FullLruCache::<()>::try_new(4).is_ok());
        assert_eq!(
            SetAssocCache::<()>::try_new(4, 0).err(),
            Some(CacheError::ZeroWays)
        );
        assert_eq!(
            SetAssocCache::<()>::try_new(1, 2).err(),
            Some(CacheError::CapacityBelowWays { lines: 1, ways: 2 })
        );
        assert_eq!(
            SetAssocCache::<()>::try_new(24, 2).err(),
            Some(CacheError::SetsNotPowerOfTwo { sets: 12 })
        );
        assert_eq!(
            SetAssocCache::<()>::try_new(9, 4).err(),
            Some(CacheError::CapacityNotWaysMultiple { lines: 9, ways: 4 })
        );
        assert!(SetAssocCache::<()>::try_new(8, 2).is_ok());
        // Display is human-readable, for CLI-level error surfacing.
        assert!(CacheError::ZeroCapacity.to_string().contains("positive"));
    }
}
