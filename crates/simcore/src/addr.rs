//! Cache-line address arithmetic.
//!
//! The paper simulates 64-byte cache lines throughout ("particularly with
//! our 64 byte cache lines", §3.2). All coherence state, directory state
//! and cache occupancy is tracked at line granularity.

/// Log2 of the cache line size in bytes.
pub const LINE_SHIFT: u32 = 6;

/// Cache line size in bytes (64, as in the paper).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// A cache-line address: a byte address shifted right by [`LINE_SHIFT`].
pub type LineAddr = u64;

/// Returns the line address containing byte address `addr`.
#[inline(always)]
pub fn line_of(addr: u64) -> LineAddr {
    addr >> LINE_SHIFT
}

/// Returns the first byte address of line `line`.
#[inline(always)]
pub fn line_base(line: LineAddr) -> u64 {
    line << LINE_SHIFT
}

/// Rounds `bytes` up to a whole number of cache lines, in bytes.
#[inline]
pub fn round_up_to_line(bytes: u64) -> u64 {
    (bytes + LINE_BYTES - 1) & !(LINE_BYTES - 1)
}

/// Number of distinct cache lines touched by the byte range
/// `[base, base + bytes)`. Returns 0 for an empty range.
#[inline]
pub fn lines_in_range(base: u64, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    line_of(base + bytes - 1) - line_of(base) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_basics() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(65), 1);
        assert_eq!(line_of(128), 2);
    }

    #[test]
    fn line_base_is_inverse_on_aligned() {
        for line in [0u64, 1, 7, 1000, 1 << 40] {
            assert_eq!(line_of(line_base(line)), line);
        }
    }

    #[test]
    fn round_up() {
        assert_eq!(round_up_to_line(0), 0);
        assert_eq!(round_up_to_line(1), 64);
        assert_eq!(round_up_to_line(64), 64);
        assert_eq!(round_up_to_line(65), 128);
    }

    #[test]
    fn range_line_counts() {
        assert_eq!(lines_in_range(0, 0), 0);
        assert_eq!(lines_in_range(0, 1), 1);
        assert_eq!(lines_in_range(0, 64), 1);
        assert_eq!(lines_in_range(0, 65), 2);
        // A 1-byte range straddling nothing, at an odd offset.
        assert_eq!(lines_in_range(63, 2), 2);
        assert_eq!(lines_in_range(100, 200), lines_in_range(100, 200));
        // 128 bytes starting mid-line touches 3 lines.
        assert_eq!(lines_in_range(32, 128), 3);
    }
}
