//! A small ordered registry of named counters, gauges and timers.
//!
//! The results layer reports every simulation through named metrics:
//! the engine's cycle breakdowns and miss-class counts, the study
//! runner's wall-clock and utilization, and tool-specific values from
//! the regenerator binaries. A registry is just an insertion-ordered
//! `name → value` map — ordering matters because manifests must
//! serialize deterministically (serial and parallel runs are compared
//! byte-for-byte).
//!
//! Counters are exact (`u64`, accumulate on re-registration); gauges
//! and timers are `f64` point-in-time values (overwrite on
//! re-registration). Timers are gauges in seconds.

use crate::json::Json;
use std::time::Duration;

/// One registered value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Exact accumulating count (events, cycles).
    Counter(u64),
    /// Point-in-time measurement (rates, seconds, fractions).
    Gauge(f64),
}

impl MetricValue {
    /// The value as `f64`, for display and JSON.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(x) => *x as f64,
            MetricValue::Gauge(x) => *x,
        }
    }
}

/// Insertion-ordered `name → value` registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, MetricValue)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// Adds `delta` to the counter `name`, creating it at `delta`.
    /// Panics if `name` is registered as a gauge (mixing kinds under
    /// one name is a bug, not data).
    pub fn counter(&mut self, name: &str, delta: u64) {
        match self.position(name) {
            Some(i) => match &mut self.entries[i].1 {
                MetricValue::Counter(x) => *x += delta,
                // cluster_check: allow(no-panic) — mixing metric kinds
                // under one name is a bug, not data (documented).
                MetricValue::Gauge(_) => panic!("metric {name:?} is a gauge, not a counter"),
            },
            None => self
                .entries
                .push((name.to_string(), MetricValue::Counter(delta))),
        }
    }

    /// Sets the gauge `name` to `value` (last write wins). Panics if
    /// `name` is registered as a counter.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.position(name) {
            Some(i) => match &mut self.entries[i].1 {
                MetricValue::Gauge(x) => *x = value,
                // cluster_check: allow(no-panic) — mixing metric kinds
                // under one name is a bug, not data (documented).
                MetricValue::Counter(_) => panic!("metric {name:?} is a counter, not a gauge"),
            },
            None => self
                .entries
                .push((name.to_string(), MetricValue::Gauge(value))),
        }
    }

    /// Records a duration as a gauge in seconds.
    pub fn timer(&mut self, name: &str, elapsed: Duration) {
        self.gauge(name, elapsed.as_secs_f64());
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.position(name).map(|i| self.entries[i].1)
    }

    /// Iterates `(name, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Folds another registry in, each name prefixed with
    /// `prefix` + `.` (counters accumulate, gauges overwrite).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Metrics) {
        for (name, value) in other.iter() {
            let full = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            };
            match value {
                MetricValue::Counter(x) => self.counter(&full, x),
                MetricValue::Gauge(x) => self.gauge(&full, x),
            }
        }
    }

    /// Serializes to a JSON object in registration order; counters
    /// stay exact integers.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in self.iter() {
            match value {
                MetricValue::Counter(x) => obj.push(name, x),
                MetricValue::Gauge(x) => obj.push(name, x),
            };
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut m = Metrics::new();
        m.counter("ops", 3);
        m.counter("ops", 4);
        m.gauge("rate", 0.5);
        m.gauge("rate", 0.75);
        assert_eq!(m.get("ops"), Some(MetricValue::Counter(7)));
        assert_eq!(m.get("rate"), Some(MetricValue::Gauge(0.75)));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn kind_confusion_panics() {
        let mut m = Metrics::new();
        m.gauge("x", 1.0);
        m.counter("x", 1);
    }

    #[test]
    fn timer_records_seconds() {
        let mut m = Metrics::new();
        m.timer("wall", Duration::from_millis(1500));
        assert_eq!(m.get("wall"), Some(MetricValue::Gauge(1.5)));
    }

    #[test]
    fn json_keeps_registration_order_and_exact_counters() {
        let mut m = Metrics::new();
        m.counter("z_cycles", u64::MAX);
        m.gauge("a_frac", 0.25);
        assert_eq!(
            m.to_json().to_string(),
            r#"{"z_cycles":18446744073709551615,"a_frac":0.25}"#
        );
    }

    #[test]
    fn merge_prefixed_namespaces_and_accumulates() {
        let mut inner = Metrics::new();
        inner.counter("misses", 5);
        inner.gauge("rate", 0.1);
        let mut outer = Metrics::new();
        outer.counter("lu.misses", 2);
        outer.merge_prefixed("lu", &inner);
        outer.merge_prefixed("", &inner);
        assert_eq!(outer.get("lu.misses"), Some(MetricValue::Counter(7)));
        assert_eq!(outer.get("lu.rate"), Some(MetricValue::Gauge(0.1)));
        assert_eq!(outer.get("misses"), Some(MetricValue::Counter(5)));
    }
}
