//! Trace operations and their packed encoding.
//!
//! The workload suite (crate `splash`) runs each application's real
//! algorithm while recording, per logical processor, the stream of
//! shared-memory references and synchronization operations it issues.
//! The timing engine (crate `tango`) replays these streams in global
//! timestamp order against the coherence model.
//!
//! Traces routinely reach tens of millions of operations, so each
//! operation packs into a single `u64`: a 3-bit tag and a 61-bit payload.

use crate::json::Json;
use crate::space::AddressSpace;
use crate::space::Placement;
use crate::space::ProcId;

/// Maximum encodable payload (61 bits).
pub const MAX_PAYLOAD: u64 = (1 << 61) - 1;

/// Schema tag of the serialized trace document.
pub const TRACE_SCHEMA: &str = "clustered-smp/trace/v1";

const TAG_READ: u64 = 0;
const TAG_WRITE: u64 = 1;
const TAG_COMPUTE: u64 = 2;
const TAG_BARRIER: u64 = 3;
const TAG_LOCK: u64 = 4;
const TAG_UNLOCK: u64 = 5;

/// A single trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load from a byte address. Loads are the only operations that can
    /// stall the processor in the paper's model.
    Read(u64),
    /// Store to a byte address. Store latency is assumed hidden by store
    /// buffers and a relaxed consistency model (§3.1).
    Write(u64),
    /// `n` cycles of CPU-busy work (arithmetic, private/register
    /// accesses, loop overhead).
    Compute(u64),
    /// Global barrier; every processor participates in barrier `id`, and
    /// ids must appear in the same order on every processor.
    Barrier(u32),
    /// Acquire lock `id` (FIFO grant order, wait time accrues to sync).
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
}

/// A packed trace operation: 3-bit tag in the top bits, 61-bit payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedOp(pub u64);

impl PackedOp {
    /// Packs an [`Op`]. Panics if the payload exceeds 61 bits.
    #[inline]
    pub fn pack(op: Op) -> PackedOp {
        let (tag, payload) = match op {
            Op::Read(a) => (TAG_READ, a),
            Op::Write(a) => (TAG_WRITE, a),
            Op::Compute(n) => (TAG_COMPUTE, n),
            Op::Barrier(id) => (TAG_BARRIER, id as u64),
            Op::Lock(id) => (TAG_LOCK, id as u64),
            Op::Unlock(id) => (TAG_UNLOCK, id as u64),
        };
        assert!(payload <= MAX_PAYLOAD, "op payload overflows 61 bits");
        PackedOp((tag << 61) | payload)
    }

    /// Unpacks back to an [`Op`].
    #[inline]
    pub fn unpack(self) -> Op {
        let tag = self.0 >> 61;
        let payload = self.0 & MAX_PAYLOAD;
        match tag {
            TAG_READ => Op::Read(payload),
            TAG_WRITE => Op::Write(payload),
            TAG_COMPUTE => Op::Compute(payload),
            // cluster_check: allow(no-lossy-cast) — sync payloads were
            // packed from a u32 id, so the low 32 bits round-trip.
            TAG_BARRIER => Op::Barrier(payload as u32),
            // cluster_check: allow(no-lossy-cast) — same as above.
            TAG_LOCK => Op::Lock(payload as u32),
            // cluster_check: allow(no-lossy-cast) — same as above.
            TAG_UNLOCK => Op::Unlock(payload as u32),
            _ => unreachable!("invalid op tag {tag}"),
        }
    }
}

/// A complete multi-processor trace: one operation stream per logical
/// processor, plus the address space the streams refer to.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-processor packed operation streams.
    pub per_proc: Vec<Vec<PackedOp>>,
    /// The address space allocated during generation (placement policies
    /// are resolved against it at simulation time).
    pub space: AddressSpace,
    /// Number of global barriers in every stream.
    pub n_barriers: u32,
    /// Number of distinct locks referenced.
    pub n_locks: u32,
}

impl Trace {
    /// Number of logical processors.
    pub fn n_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> u64 {
        self.per_proc.iter().map(|v| v.len() as u64).sum()
    }

    /// Total shared-memory references (reads + writes).
    pub fn total_refs(&self) -> u64 {
        self.per_proc
            .iter()
            .flat_map(|v| v.iter())
            .filter(|p| matches!(p.unpack(), Op::Read(_) | Op::Write(_)))
            .count() as u64
    }

    /// Checks structural invariants the engine relies on:
    ///
    /// * every processor sees the same barrier-id sequence;
    /// * locks are acquired and released in a balanced, properly nested
    ///   way per processor, with no lock held across a barrier;
    /// * every referenced address lies in an allocated region;
    /// * barrier and lock ids are in range.
    ///
    /// Returns a description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let mut barrier_seq: Option<Vec<u32>> = None;
        for (p, ops) in self.per_proc.iter().enumerate() {
            let mut seq = Vec::new();
            let mut held: Vec<u32> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op.unpack() {
                    Op::Read(a) | Op::Write(a) => {
                        if self.space.placement_of(a).is_none() {
                            return Err(format!("proc {p} op {i}: unallocated address {a:#x}"));
                        }
                    }
                    Op::Barrier(id) => {
                        if !held.is_empty() {
                            return Err(format!(
                                "proc {p} op {i}: barrier {id} reached holding lock {:?}",
                                held
                            ));
                        }
                        seq.push(id);
                    }
                    Op::Lock(id) => {
                        if id >= self.n_locks {
                            return Err(format!("proc {p} op {i}: lock id {id} out of range"));
                        }
                        if held.contains(&id) {
                            return Err(format!("proc {p} op {i}: recursive lock {id}"));
                        }
                        held.push(id);
                    }
                    Op::Unlock(id) => {
                        if held.last() != Some(&id) {
                            return Err(format!(
                                "proc {p} op {i}: unlock {id} not innermost (held {:?})",
                                held
                            ));
                        }
                        held.pop();
                    }
                    Op::Compute(_) => {}
                }
            }
            if !held.is_empty() {
                return Err(format!("proc {p}: trace ends holding locks {held:?}"));
            }
            match &barrier_seq {
                None => barrier_seq = Some(seq),
                Some(first) => {
                    if *first != seq {
                        return Err(format!("proc {p}: barrier sequence differs from proc 0"));
                    }
                }
            }
        }
        if let Some(seq) = &barrier_seq {
            if seq.len() != crate::cast::usize_from(self.n_barriers) {
                return Err(format!(
                    "barrier count mismatch: streams have {} but trace says {}",
                    seq.len(),
                    self.n_barriers
                ));
            }
        }
        Ok(())
    }

    /// Serializes the trace (streams, sync counts, and the address-space
    /// layout needed to replay it) as a JSON document. The inverse is
    /// [`Trace::from_json`]; the `schema-sync` lint pins the key set
    /// against `crates/check/tests/schema_race.rs`.
    pub fn to_json(&self) -> Json {
        let regions: Vec<Json> = self
            .space
            .regions()
            .map(|r| {
                let owner = match r.placement {
                    Placement::RoundRobin => Json::Null,
                    Placement::Owner(p) => Json::UInt(u64::from(p)),
                };
                Json::obj()
                    .with("base", r.base)
                    .with("bytes", r.bytes)
                    .with("owner", owner)
            })
            .collect();
        let per_proc: Vec<Json> = self
            .per_proc
            .iter()
            .map(|ops| Json::Arr(ops.iter().map(|p| Json::UInt(p.0)).collect()))
            .collect();
        Json::obj()
            .with("schema", TRACE_SCHEMA)
            .with("n_barriers", self.n_barriers)
            .with("n_locks", self.n_locks)
            .with("regions", Json::Arr(regions))
            .with("per_proc", Json::Arr(per_proc))
    }

    /// Rebuilds a trace from its [`Trace::to_json`] form, re-allocating
    /// the address space in recorded order and checking that every base
    /// address and op tag round-trips.
    pub fn from_json(doc: &Json) -> Result<Trace, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(TRACE_SCHEMA) {
            return Err(format!("not a {TRACE_SCHEMA} document"));
        }
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let n_barriers = u32::try_from(field_u64("n_barriers")?)
            .map_err(|_| "n_barriers overflows u32".to_string())?;
        let n_locks = u32::try_from(field_u64("n_locks")?)
            .map_err(|_| "n_locks overflows u32".to_string())?;

        let mut space = AddressSpace::new();
        let regions = doc
            .get("regions")
            .and_then(Json::as_arr)
            .ok_or("missing regions array")?;
        for (i, r) in regions.iter().enumerate() {
            let base = r
                .get("base")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("region {i}: missing base"))?;
            let bytes = r
                .get("bytes")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("region {i}: missing bytes"))?;
            let placement = match r.get("owner") {
                Some(Json::Null) | None => Placement::RoundRobin,
                Some(v) => {
                    let p = v
                        .as_u64()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| format!("region {i}: bad owner"))?;
                    Placement::Owner(p)
                }
            };
            let got = space.alloc(bytes, placement);
            if got != base {
                return Err(format!(
                    "region {i}: base {base:#x} does not round-trip (allocator produced {got:#x})"
                ));
            }
        }

        let streams = doc
            .get("per_proc")
            .and_then(Json::as_arr)
            .ok_or("missing per_proc array")?;
        let mut per_proc = Vec::with_capacity(streams.len());
        for (p, stream) in streams.iter().enumerate() {
            let raw = stream
                .as_arr()
                .ok_or_else(|| format!("proc {p}: stream is not an array"))?;
            let mut ops = Vec::with_capacity(raw.len());
            for (i, word) in raw.iter().enumerate() {
                let w = word
                    .as_u64()
                    .ok_or_else(|| format!("proc {p} op {i}: not a u64"))?;
                if w >> 61 > TAG_UNLOCK {
                    return Err(format!("proc {p} op {i}: invalid op tag"));
                }
                ops.push(PackedOp(w));
            }
            per_proc.push(ops);
        }

        Ok(Trace {
            per_proc,
            space,
            n_barriers,
            n_locks,
        })
    }
}

/// Incrementally builds a [`Trace`], coalescing consecutive `Compute`
/// operations and allocating barrier/lock identifiers.
#[derive(Debug)]
pub struct TraceBuilder {
    space: AddressSpace,
    per_proc: Vec<Vec<PackedOp>>,
    next_barrier: u32,
    next_lock: u32,
}

impl TraceBuilder {
    /// Creates a builder for `n_procs` logical processors.
    pub fn new(n_procs: usize) -> Self {
        TraceBuilder {
            space: AddressSpace::new(),
            per_proc: vec![Vec::new(); n_procs],
            next_barrier: 0,
            next_lock: 0,
        }
    }

    /// Number of logical processors.
    pub fn n_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Mutable access to the address space for allocation.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Read-only access to the address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Emits a load of byte address `addr` on processor `p`.
    #[inline]
    pub fn read(&mut self, p: ProcId, addr: u64) {
        self.per_proc[crate::cast::usize_from(p)].push(PackedOp::pack(Op::Read(addr)));
    }

    /// Emits a store to byte address `addr` on processor `p`.
    #[inline]
    pub fn write(&mut self, p: ProcId, addr: u64) {
        self.per_proc[crate::cast::usize_from(p)].push(PackedOp::pack(Op::Write(addr)));
    }

    /// Emits `cycles` of CPU-busy work on processor `p`, merging with an
    /// immediately preceding `Compute`.
    #[inline]
    pub fn compute(&mut self, p: ProcId, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let ops = &mut self.per_proc[crate::cast::usize_from(p)];
        if let Some(last) = ops.last_mut() {
            if let Op::Compute(n) = last.unpack() {
                *last = PackedOp::pack(Op::Compute(n + cycles));
                return;
            }
        }
        ops.push(PackedOp::pack(Op::Compute(cycles)));
    }

    /// Emits one load per cache line covering `[base, base + bytes)` on
    /// processor `p`. Used by dense inner loops: at line granularity the
    /// miss sequence is identical to per-element access, and the elided
    /// element hits are charged as compute by the caller.
    pub fn read_span(&mut self, p: ProcId, base: u64, bytes: u64) {
        let mut line = crate::addr::line_of(base);
        let last = crate::addr::line_of(base + bytes.max(1) - 1);
        while line <= last {
            self.read(p, crate::addr::line_base(line));
            line += 1;
        }
    }

    /// Emits one store per cache line covering `[base, base + bytes)`.
    pub fn write_span(&mut self, p: ProcId, base: u64, bytes: u64) {
        let mut line = crate::addr::line_of(base);
        let last = crate::addr::line_of(base + bytes.max(1) - 1);
        while line <= last {
            self.write(p, crate::addr::line_base(line));
            line += 1;
        }
    }

    /// Appends a global barrier to *every* processor's stream and
    /// returns its id.
    pub fn barrier_all(&mut self) -> u32 {
        let id = self.next_barrier;
        self.next_barrier += 1;
        let op = PackedOp::pack(Op::Barrier(id));
        for ops in &mut self.per_proc {
            ops.push(op);
        }
        id
    }

    /// Allocates a fresh lock id.
    pub fn new_lock(&mut self) -> u32 {
        let id = self.next_lock;
        self.next_lock += 1;
        id
    }

    /// Allocates `n` fresh lock ids and returns the first; the ids are
    /// contiguous.
    pub fn new_locks(&mut self, n: u32) -> u32 {
        let first = self.next_lock;
        self.next_lock += n;
        first
    }

    /// Emits a lock acquire on processor `p`.
    pub fn lock(&mut self, p: ProcId, id: u32) {
        debug_assert!(id < self.next_lock);
        self.per_proc[crate::cast::usize_from(p)].push(PackedOp::pack(Op::Lock(id)));
    }

    /// Emits a lock release on processor `p`.
    pub fn unlock(&mut self, p: ProcId, id: u32) {
        debug_assert!(id < self.next_lock);
        self.per_proc[crate::cast::usize_from(p)].push(PackedOp::pack(Op::Unlock(id)));
    }

    /// Finalizes the trace. A terminal barrier is appended so that all
    /// processors end at a common time (the paper's execution time is the
    /// time at which the last processor finishes).
    pub fn finish(mut self) -> Trace {
        self.barrier_all();
        Trace {
            per_proc: self.per_proc,
            space: self.space,
            n_barriers: self.next_barrier,
            n_locks: self.next_lock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_all_variants() {
        for op in [
            Op::Read(0),
            Op::Read(0xdead_beef_1234),
            Op::Write(MAX_PAYLOAD),
            Op::Compute(1),
            Op::Compute(1 << 40),
            Op::Barrier(0),
            Op::Barrier(u32::MAX),
            Op::Lock(17),
            Op::Unlock(17),
        ] {
            assert_eq!(PackedOp::pack(op).unpack(), op);
        }
    }

    #[test]
    #[should_panic]
    fn pack_overflow_panics() {
        let _ = PackedOp::pack(Op::Read(MAX_PAYLOAD + 1));
    }

    #[test]
    fn compute_coalesces() {
        let mut b = TraceBuilder::new(1);
        let a = b.space_mut().alloc_shared(64);
        b.compute(0, 5);
        b.compute(0, 7);
        b.read(0, a);
        b.compute(0, 0); // no-op
        b.compute(0, 1);
        let t = b.finish();
        let ops: Vec<Op> = t.per_proc[0].iter().map(|p| p.unpack()).collect();
        assert_eq!(
            ops,
            vec![Op::Compute(12), Op::Read(a), Op::Compute(1), Op::Barrier(0)]
        );
    }

    #[test]
    fn read_span_touches_each_line_once() {
        let mut b = TraceBuilder::new(1);
        let base = b.space_mut().alloc_shared(256);
        b.read_span(0, base + 10, 100); // straddles two lines
        let t = b.finish();
        let reads: Vec<u64> = t.per_proc[0]
            .iter()
            .filter_map(|p| match p.unpack() {
                Op::Read(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[1] - reads[0], 64);
    }

    #[test]
    fn finish_appends_final_barrier_to_all() {
        let mut b = TraceBuilder::new(3);
        let t = b.space_mut().alloc_shared(64);
        b.read(1, t);
        let t = b.finish();
        for ops in &t.per_proc {
            assert!(matches!(ops.last().unwrap().unpack(), Op::Barrier(0)));
        }
        assert_eq!(t.n_barriers, 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_unallocated_address() {
        let mut b = TraceBuilder::new(1);
        b.read(0, 0x9999_9999);
        let t = b.finish();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_mismatched_barriers() {
        let mut b = TraceBuilder::new(2);
        // Manually emit a barrier on one proc only by abusing internals:
        // build two traces and splice.
        let t1 = b.barrier_all();
        let mut t = TraceBuilder::new(2);
        let _ = t.barrier_all();
        let mut trace = t.finish();
        assert!(trace.validate().is_ok());
        // Remove one barrier op from proc 1's stream.
        trace.per_proc[1].remove(0);
        assert!(trace.validate().is_err());
        let _ = t1;
    }

    #[test]
    fn validate_catches_lock_misuse() {
        let mut b = TraceBuilder::new(1);
        let l = b.new_lock();
        b.lock(0, l);
        let t = b.finish(); // finish adds a barrier while lock held
        assert!(t.validate().is_err());

        let mut b = TraceBuilder::new(1);
        let l = b.new_lock();
        b.lock(0, l);
        b.unlock(0, l);
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let mut b = TraceBuilder::new(2);
        let a = b.space_mut().alloc_shared(100);
        let o = b.space_mut().alloc_owned(64, 1);
        let l = b.new_lock();
        b.read(0, a);
        b.lock(1, l);
        b.write(1, o);
        b.unlock(1, l);
        b.compute(0, 9);
        b.barrier_all();
        let t = b.finish();
        let doc = t.to_json();
        let back = Trace::from_json(&doc).unwrap();
        assert_eq!(back.per_proc, t.per_proc);
        assert_eq!(back.n_barriers, t.n_barriers);
        assert_eq!(back.n_locks, t.n_locks);
        assert_eq!(back.space.region_count(), t.space.region_count());
        assert_eq!(back.space.placement_of(o), Some(Placement::Owner(1)));
        // Textual round-trip too (what the CLI file mode does).
        let text = doc.pretty();
        let reparsed = Trace::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed.per_proc, t.per_proc);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        let t = TraceBuilder::new(1).finish();
        let doc = t.to_json();
        assert!(Trace::from_json(&Json::obj()).is_err());
        let mut wrong = doc.clone();
        if let Json::Obj(pairs) = &mut wrong {
            pairs.retain(|(k, _)| k != "per_proc");
        }
        assert!(Trace::from_json(&wrong).is_err());
        // An op word with an invalid tag is rejected.
        let bad = Json::obj()
            .with("schema", TRACE_SCHEMA)
            .with("n_barriers", 0u64)
            .with("n_locks", 0u64)
            .with("regions", Json::Arr(vec![]))
            .with(
                "per_proc",
                Json::Arr(vec![Json::Arr(vec![Json::UInt(7 << 61)])]),
            );
        assert!(Trace::from_json(&bad).is_err());
    }

    #[test]
    fn totals() {
        let mut b = TraceBuilder::new(2);
        let a = b.space_mut().alloc_shared(64);
        b.read(0, a);
        b.write(1, a);
        b.compute(0, 3);
        let t = b.finish();
        assert_eq!(t.total_refs(), 2);
        assert_eq!(t.total_ops(), 5); // read, compute, write + 2 barriers
    }
}
