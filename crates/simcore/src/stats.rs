//! Execution-time breakdowns and miss statistics.
//!
//! The paper reports normalized execution times "divided into CPU busy
//! time, load stall time, load merge stall time and synchronization wait
//! time" (§4), and classifies misses as READ, WRITE and UPGRADE (§3.1).

use std::ops::{Add, AddAssign};

/// Per-processor execution time decomposition, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// CPU busy cycles: compute, single-cycle cache hits, lock/barrier
    /// instruction overhead.
    pub cpu: u64,
    /// Load stall cycles: READ-miss latency (the only misses the paper
    /// charges to the processor).
    pub load: u64,
    /// Load merge stall cycles: waiting for a line already pending from
    /// another processor's outstanding miss.
    pub merge: u64,
    /// Synchronization wait cycles: barrier and lock waiting.
    pub sync: u64,
}

impl Breakdown {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.cpu + self.load + self.merge + self.sync
    }

    /// Each component as a fraction of `denom` (typically another run's
    /// total), in the order `[cpu, load, merge, sync]`.
    ///
    /// A zero denominator yields the explicit all-zero array rather
    /// than silently treating the denominator as 1 (which misreported
    /// nonzero breakdowns against a degenerate zero-cycle baseline).
    pub fn fractions_of(&self, denom: u64) -> [f64; 4] {
        if denom == 0 {
            return [0.0; 4];
        }
        let d = denom as f64;
        [
            self.cpu as f64 / d,
            self.load as f64 / d,
            self.merge as f64 / d,
            self.sync as f64 / d,
        ]
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    fn add(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            cpu: self.cpu + rhs.cpu,
            load: self.load + rhs.load,
            merge: self.merge + rhs.merge,
            sync: self.sync + rhs.sync,
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        *self = *self + rhs;
    }
}

/// Miss classification, following §3.1: "Misses are broken up into 3
/// categories, READ, WRITE and UPGRADE."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// A read access that does not find the line in the cluster cache.
    Read,
    /// A write access that does not find the line in the cluster cache.
    Write,
    /// A write that finds the line in SHARED state.
    Upgrade,
}

/// Latency classes of Table 1 for misses that leave the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// Miss to local home, satisfied by home cluster (30 cycles).
    LocalClean,
    /// Miss to local home, satisfied by remote dirty cluster (100).
    LocalDirtyRemote,
    /// Miss to remote home, satisfied by home (100).
    RemoteClean,
    /// Miss to remote home, satisfied by a dirty third cluster (150).
    RemoteDirtyThird,
}

impl LatencyClass {
    /// Index for compact array storage.
    pub fn idx(self) -> usize {
        match self {
            LatencyClass::LocalClean => 0,
            LatencyClass::LocalDirtyRemote => 1,
            LatencyClass::RemoteClean => 2,
            LatencyClass::RemoteDirtyThird => 3,
        }
    }

    /// All four classes, in `idx` order.
    pub const ALL: [LatencyClass; 4] = [
        LatencyClass::LocalClean,
        LatencyClass::LocalDirtyRemote,
        LatencyClass::RemoteClean,
        LatencyClass::RemoteDirtyThird,
    ];
}

/// Aggregate memory-system statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissStats {
    /// Read accesses that hit a resident, non-pending line.
    pub read_hits: u64,
    /// Write accesses that hit an EXCLUSIVE line.
    pub write_hits: u64,
    /// READ misses.
    pub read_misses: u64,
    /// WRITE misses.
    pub write_misses: u64,
    /// UPGRADE misses.
    pub upgrade_misses: u64,
    /// Reads that merge-stalled on a pending line (each retry counted
    /// once per stall episode).
    pub merge_stalls: u64,
    /// Misses per latency class (READ and WRITE together), indexed by
    /// [`LatencyClass::idx`].
    pub by_latency: [u64; 4],
    /// Lines invalidated in *other* clusters by upgrades/write misses.
    pub invalidations: u64,
    /// Capacity evictions from cluster caches.
    pub evictions: u64,
    /// Evictions of EXCLUSIVE (dirty) lines (writebacks).
    pub writebacks: u64,
    /// Misses satisfied entirely within the issuing cluster's home
    /// memory *because the home is local* (the 30-cycle case) — a
    /// measure of locality.
    pub local_satisfied: u64,
    /// Shared-memory-cluster mode only: private-cache misses supplied
    /// by a cluster mate over the snoopy bus.
    pub bus_transfers: u64,
    /// Shared-memory-cluster mode only: copies invalidated in cluster
    /// mates' private caches by a local write.
    pub bus_invalidations: u64,
}

impl MissStats {
    /// Total read accesses.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses + self.merge_stalls + self.bus_transfers
    }

    /// Total cache misses (all classes).
    pub fn total_misses(&self) -> u64 {
        self.read_misses + self.write_misses + self.upgrade_misses
    }

    /// Read miss rate over read accesses that completed as hit or miss.
    pub fn read_miss_rate(&self) -> f64 {
        let denom = self.read_hits + self.read_misses;
        if denom == 0 {
            0.0
        } else {
            self.read_misses as f64 / denom as f64
        }
    }
}

impl AddAssign for MissStats {
    fn add_assign(&mut self, r: MissStats) {
        self.read_hits += r.read_hits;
        self.write_hits += r.write_hits;
        self.read_misses += r.read_misses;
        self.write_misses += r.write_misses;
        self.upgrade_misses += r.upgrade_misses;
        self.merge_stalls += r.merge_stalls;
        for i in 0..4 {
            self.by_latency[i] += r.by_latency[i];
        }
        self.invalidations += r.invalidations;
        self.evictions += r.evictions;
        self.writebacks += r.writebacks;
        self.local_satisfied += r.local_satisfied;
        self.bus_transfers += r.bus_transfers;
        self.bus_invalidations += r.bus_invalidations;
    }
}

/// Complete result of replaying one trace under one machine
/// configuration. `Eq` because every field is exact (integer cycles
/// and counters): the parallel study runner is required to reproduce
/// the serial path **bit-identically**, and tests compare whole
/// `RunStats` values for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Per-processor time breakdowns. Because every trace ends with a
    /// global barrier, each processor's `total()` equals `exec_time`.
    pub per_proc: Vec<Breakdown>,
    /// Aggregate memory-system counters.
    pub mem: MissStats,
    /// Execution time: the cycle at which the last processor finishes.
    pub exec_time: u64,
}

impl RunStats {
    /// Sum of all processors' breakdowns (exact, no division). Since
    /// every processor's `total()` equals `exec_time`, the aggregate
    /// total is `n_procs × exec_time` exactly — which makes the
    /// aggregate's [`Breakdown::fractions_of`] its own total sum to
    /// 1.0 up to float rounding, a property the manifest schema tests
    /// assert.
    pub fn total_breakdown(&self) -> Breakdown {
        self.per_proc
            .iter()
            .fold(Breakdown::default(), |a, &b| a + b)
    }

    /// The canonical named-metrics view of a run, used by the
    /// machine-readable results layer: exec time, aggregate cycle
    /// breakdown, and every memory-system counter. All counters are
    /// exact, so two bit-identical runs produce bit-identical
    /// registries.
    pub fn metrics(&self) -> crate::metrics::Metrics {
        let mut m = crate::metrics::Metrics::new();
        m.counter("procs", self.per_proc.len() as u64);
        m.counter("exec_time_cycles", self.exec_time);
        let bd = self.total_breakdown();
        m.counter("cpu_cycles", bd.cpu);
        m.counter("load_cycles", bd.load);
        m.counter("merge_cycles", bd.merge);
        m.counter("sync_cycles", bd.sync);
        m.counter("read_hits", self.mem.read_hits);
        m.counter("write_hits", self.mem.write_hits);
        m.counter("read_misses", self.mem.read_misses);
        m.counter("write_misses", self.mem.write_misses);
        m.counter("upgrade_misses", self.mem.upgrade_misses);
        m.counter("merge_stalls", self.mem.merge_stalls);
        for c in LatencyClass::ALL {
            let name = match c {
                LatencyClass::LocalClean => "lat_local_clean",
                LatencyClass::LocalDirtyRemote => "lat_local_dirty_remote",
                LatencyClass::RemoteClean => "lat_remote_clean",
                LatencyClass::RemoteDirtyThird => "lat_remote_dirty_third",
            };
            m.counter(name, self.mem.by_latency[c.idx()]);
        }
        m.counter("invalidations", self.mem.invalidations);
        m.counter("evictions", self.mem.evictions);
        m.counter("writebacks", self.mem.writebacks);
        m.counter("local_satisfied", self.mem.local_satisfied);
        m.counter("bus_transfers", self.mem.bus_transfers);
        m.counter("bus_invalidations", self.mem.bus_invalidations);
        m.gauge("read_miss_rate", self.mem.read_miss_rate());
        m
    }

    /// Mean breakdown across processors. Since all processors finish at
    /// `exec_time`, the mean components sum to `exec_time`.
    pub fn mean_breakdown(&self) -> Breakdown {
        let n = self.per_proc.len().max(1) as u64;
        let sum = self
            .per_proc
            .iter()
            .fold(Breakdown::default(), |a, &b| a + b);
        Breakdown {
            cpu: sum.cpu / n,
            load: sum.load / n,
            merge: sum.merge / n,
            sync: sum.sync / n,
        }
    }

    /// Components of the mean breakdown as percentages of a baseline
    /// execution time (the paper normalizes each cluster size to the
    /// 1-processor-per-cluster run), in order `[cpu, load, merge, sync]`.
    pub fn percent_of(&self, baseline_exec_time: u64) -> [f64; 4] {
        let f = self.mean_breakdown().fractions_of(baseline_exec_time);
        [f[0] * 100.0, f[1] * 100.0, f[2] * 100.0, f[3] * 100.0]
    }

    /// Total normalized execution time in percent of a baseline.
    pub fn percent_total_of(&self, baseline_exec_time: u64) -> f64 {
        self.exec_time as f64 / baseline_exec_time.max(1) as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_add() {
        let a = Breakdown {
            cpu: 10,
            load: 5,
            merge: 1,
            sync: 4,
        };
        let b = Breakdown {
            cpu: 1,
            load: 1,
            merge: 1,
            sync: 1,
        };
        assert_eq!(a.total(), 20);
        assert_eq!((a + b).total(), 24);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn fractions() {
        let a = Breakdown {
            cpu: 50,
            load: 25,
            merge: 0,
            sync: 25,
        };
        let f = a.fractions_of(100);
        assert_eq!(f, [0.5, 0.25, 0.0, 0.25]);
    }

    #[test]
    fn fractions_of_zero_denominator_is_all_zero() {
        // Regression: this used to map denom == 0 to 1 via `.max(1)`,
        // reporting a 100-cycle breakdown as 10000% of nothing.
        let a = Breakdown {
            cpu: 50,
            load: 25,
            merge: 0,
            sync: 25,
        };
        assert_eq!(a.fractions_of(0), [0.0; 4]);
        assert_eq!(Breakdown::default().fractions_of(0), [0.0; 4]);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn miss_stats_accumulate() {
        let mut m = MissStats::default();
        m.read_misses = 3;
        m.read_hits = 7;
        let mut n = MissStats::default();
        n.read_misses = 1;
        n.by_latency[LatencyClass::RemoteClean.idx()] = 4;
        m += n;
        assert_eq!(m.read_misses, 4);
        assert_eq!(m.by_latency[2], 4);
        assert!((m.read_miss_rate() - 4.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn latency_class_indices_unique() {
        let mut seen = [false; 4];
        for c in LatencyClass::ALL {
            assert!(!seen[c.idx()]);
            seen[c.idx()] = true;
        }
    }

    #[test]
    fn run_stats_mean_and_percent() {
        let rs = RunStats {
            per_proc: vec![
                Breakdown {
                    cpu: 80,
                    load: 10,
                    merge: 0,
                    sync: 10,
                },
                Breakdown {
                    cpu: 60,
                    load: 20,
                    merge: 0,
                    sync: 20,
                },
            ],
            mem: MissStats::default(),
            exec_time: 100,
        };
        let m = rs.mean_breakdown();
        assert_eq!(m.cpu, 70);
        assert_eq!(m.total(), 100);
        let pct = rs.percent_of(200);
        assert!((pct[0] - 35.0).abs() < 1e-12);
        assert!((rs.percent_total_of(200) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn run_stats_metrics_are_exact_and_self_consistent() {
        let rs = RunStats {
            per_proc: vec![
                Breakdown {
                    cpu: 80,
                    load: 10,
                    merge: 0,
                    sync: 10,
                },
                Breakdown {
                    cpu: 60,
                    load: 20,
                    merge: 0,
                    sync: 20,
                },
            ],
            mem: MissStats {
                read_hits: 9,
                read_misses: 1,
                ..MissStats::default()
            },
            exec_time: 100,
        };
        let total = rs.total_breakdown();
        assert_eq!(total.total(), 200); // n_procs × exec_time, exactly
        let f = total.fractions_of(total.total());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        let m = rs.metrics();
        use crate::metrics::MetricValue;
        assert_eq!(m.get("procs"), Some(MetricValue::Counter(2)));
        assert_eq!(m.get("exec_time_cycles"), Some(MetricValue::Counter(100)));
        assert_eq!(m.get("cpu_cycles"), Some(MetricValue::Counter(140)));
        assert_eq!(m.get("read_misses"), Some(MetricValue::Counter(1)));
        assert_eq!(m.get("read_miss_rate"), Some(MetricValue::Gauge(0.1)));
        // Identical runs register identical metrics (bit-identity
        // propagates through the results layer).
        assert_eq!(m, rs.clone().metrics());
    }
}
