//! The shared virtual address space and its allocator.
//!
//! The paper's machine distributes memory among clusters: "Memory is
//! allocated to clusters when first touched on a round robin basis. Some
//! application programs explicitly place data when such placement improves
//! performance. All stack references are allocated locally." (§3.1)
//!
//! Because the *same* application trace is replayed under several cluster
//! configurations (1, 2, 4 or 8 processors per cluster), the home cluster
//! of a line cannot be fixed at trace-generation time — the number of
//! clusters differs between runs. Instead, each allocated [`Region`]
//! carries a [`Placement`] *policy*, and the coherence layer resolves the
//! policy to a concrete home cluster lazily, at simulation time, when the
//! line is first touched.

use crate::addr::{round_up_to_line, LINE_BYTES};

/// Identifier of a logical processor (0-based). The paper fixes the
/// machine at 64 processors; the simulator accepts any count.
pub type ProcId = u32;

/// Home-placement policy for a region of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Home assigned round-robin over clusters at first touch (the
    /// paper's default for shared data).
    RoundRobin,
    /// Home is the cluster containing the given processor (used for
    /// stacks, private data, and explicitly placed shared data such as
    /// Ocean's subgrids and LU's blocks).
    Owner(ProcId),
}

/// A contiguous, line-aligned region of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address (line-aligned).
    pub base: u64,
    /// Size in bytes (line-aligned).
    pub bytes: u64,
    /// Placement policy for every line in the region.
    pub placement: Placement,
}

impl Region {
    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes
    }
}

/// A bump-allocated shared virtual address space.
///
/// Allocation never reuses addresses, so the region list is sorted by
/// base address and placement lookups are a binary search.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    regions: Vec<Region>,
    next: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space. The first allocation starts at a
    /// non-zero base so that address 0 is never valid (it is reserved as
    /// a sentinel by some workloads).
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            next: LINE_BYTES,
        }
    }

    /// Allocates `bytes` (rounded up to whole lines) with the given
    /// placement policy and returns the region base address.
    pub fn alloc(&mut self, bytes: u64, placement: Placement) -> u64 {
        let bytes = round_up_to_line(bytes.max(1));
        let base = self.next;
        self.next += bytes;
        self.regions.push(Region {
            base,
            bytes,
            placement,
        });
        base
    }

    /// Allocates shared data homed round-robin at first touch.
    pub fn alloc_shared(&mut self, bytes: u64) -> u64 {
        self.alloc(bytes, Placement::RoundRobin)
    }

    /// Allocates data homed at `owner`'s cluster (stack / private /
    /// explicitly placed data).
    pub fn alloc_owned(&mut self, bytes: u64, owner: ProcId) -> u64 {
        self.alloc(bytes, Placement::Owner(owner))
    }

    /// Allocates a typed shared array of `len` elements of `elem_bytes`
    /// each.
    pub fn alloc_array(&mut self, len: u64, elem_bytes: u64, placement: Placement) -> SharedArray {
        let base = self.alloc(len * elem_bytes, placement);
        SharedArray {
            base,
            elem_bytes,
            len,
        }
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - LINE_BYTES
    }

    /// Number of allocated regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The placement policy covering byte address `addr`, if allocated.
    pub fn placement_of(&self, addr: u64) -> Option<Placement> {
        let idx = self.regions.partition_point(|r| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        r.contains(addr).then_some(r.placement)
    }

    /// Iterates over all regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }
}

/// A typed view of a contiguous shared array, used by the workloads to
/// turn element indices into byte addresses.
#[derive(Debug, Clone, Copy)]
pub struct SharedArray {
    /// First byte address.
    pub base: u64,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Number of elements.
    pub len: u64,
}

impl SharedArray {
    /// Byte address of element `i`. Panics in debug builds when out of
    /// range.
    #[inline]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * self.elem_bytes
    }

    /// Total size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.len * self.elem_bytes
    }

    /// A sub-array view of `count` elements starting at `start`.
    pub fn slice(&self, start: u64, count: u64) -> SharedArray {
        assert!(start + count <= self.len);
        SharedArray {
            base: self.addr(start),
            elem_bytes: self.elem_bytes,
            len: count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut s = AddressSpace::new();
        let a = s.alloc_shared(100);
        let b = s.alloc_owned(1, 3);
        assert_eq!(a % LINE_BYTES, 0);
        assert_eq!(b % LINE_BYTES, 0);
        assert!(b >= a + 128, "100 bytes rounds to 128");
        assert_eq!(s.region_count(), 2);
    }

    #[test]
    fn placement_lookup() {
        let mut s = AddressSpace::new();
        let a = s.alloc_shared(64);
        let b = s.alloc_owned(64, 7);
        assert_eq!(s.placement_of(a), Some(Placement::RoundRobin));
        assert_eq!(s.placement_of(a + 63), Some(Placement::RoundRobin));
        assert_eq!(s.placement_of(b), Some(Placement::Owner(7)));
        assert_eq!(s.placement_of(0), None);
        assert_eq!(s.placement_of(b + 64), None);
    }

    #[test]
    fn address_zero_never_allocated() {
        let mut s = AddressSpace::new();
        let a = s.alloc_shared(64);
        assert!(a > 0);
        assert_eq!(s.placement_of(0), None);
    }

    #[test]
    fn array_addressing() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array(10, 8, Placement::RoundRobin);
        assert_eq!(arr.addr(0), arr.base);
        assert_eq!(arr.addr(9), arr.base + 72);
        assert_eq!(arr.bytes(), 80);
        let sub = arr.slice(4, 3);
        assert_eq!(sub.addr(0), arr.addr(4));
        assert_eq!(sub.len, 3);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array(10, 8, Placement::RoundRobin);
        let _ = arr.slice(8, 3);
    }

    #[test]
    fn allocated_bytes_tracks_rounding() {
        let mut s = AddressSpace::new();
        s.alloc_shared(1);
        s.alloc_shared(65);
        assert_eq!(s.allocated_bytes(), 64 + 128);
    }
}
