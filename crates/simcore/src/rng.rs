//! Self-contained deterministic pseudo-random number generation.
//!
//! The workspace must build and test with **zero registry
//! dependencies** (the build environment has no network), so this
//! module replaces the former `rand` crate usage. It provides a
//! seedable [`Rng64`] built from the xoshiro256** generator of
//! Blackman & Vigna, state-initialized with SplitMix64 — the exact
//! combination the xoshiro authors recommend. Both algorithms are
//! public domain.
//!
//! Everything here is deterministic: the same seed always yields the
//! same stream on every platform (the implementation is pure integer
//! arithmetic; floats are derived from fixed high bits).

use std::ops::Range;

/// One SplitMix64 step: advances `*state` and returns the next output.
/// Used both for seed expansion and as a cheap mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one well-distributed seed (order-sensitive).
#[inline]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// A small, fast, seedable PRNG: xoshiro256** with SplitMix64 seeding.
///
/// Not cryptographically secure — it generates workload inputs and
/// property-test cases, where all that matters is determinism and good
/// statistical distribution.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0)
    /// is valid: SplitMix64 expansion guarantees a non-zero state.
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (the high half, which has the best quality).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        // cluster_check: allow(no-lossy-cast) — shifted right 32, so
        // the value provably fits in 32 bits.
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// widening-multiply method with rejection).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 needs a positive bound");
        let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform sample from a half-open range. Implemented for the
    /// integer and float range types the workloads use.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            // cluster_check: allow(no-lossy-cast) — bounded by i + 1,
            // which is itself a usize.
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A fresh generator whose seed is drawn from this one — handy for
    /// decorrelated sub-streams.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

/// Range types [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.bounded_u64(span as u64) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f32() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        // SplitMix64 expansion means the all-zero state is unreachable.
        assert!((0..16).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..10_000 {
            let a = r.gen_range(5u32..17);
            assert!((5..17).contains(&a));
            let b = r.gen_range(-3i32..4);
            assert!((-3..4).contains(&b));
            let c = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&c));
            let d = r.gen_range(0usize..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn bounded_covers_all_residues() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.bounded_u64(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn known_answer_xoshiro() {
        // Pin the stream so accidental algorithm changes are caught:
        // golden workload traces depend on these exact values.
        let mut r = Rng64::new(0xdead_beef);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = Rng64::new(0xdead_beef);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // First output must be stable across builds on this platform
        // and any other (pure u64 arithmetic).
        assert_eq!(got[0], {
            let mut sm = 0xdead_beefu64;
            let s0 = splitmix64(&mut sm);
            let s1 = splitmix64(&mut sm);
            let _ = (s0, s1);
            s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9)
        });
    }
}
