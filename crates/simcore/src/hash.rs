//! Stable content hashing for the serving layer's content-addressed
//! stores.
//!
//! A cache key must be a pure function of the request *content* and
//! stay stable across processes, platforms and releases — Rust's
//! `std::hash` is explicitly none of those (SipHash is randomly
//! keyed per process). This module provides 128-bit FNV-1a over
//! bytes, plus [`stable_key`] which hashes a [`Json`] document's
//! canonical serialization (the `simcore::json` writer is
//! deterministic: insertion-ordered keys, exact integer formatting),
//! so two structurally identical documents always produce the same
//! 32-hex-digit key.
//!
//! 128 bits makes accidental collisions astronomically unlikely at
//! any realistic store size (the 64-bit variant in [`crate::fault`]
//! is for seed mixing, where collisions are harmless). The serving
//! tests plant a deliberately truncated key to prove the propcheck
//! identity suite *detects* a colliding key function — see
//! `crates/serve/tests/cache_identity.rs`.

use crate::json::Json;

/// FNV-1a 128-bit offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
pub const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over raw bytes.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// A 128-bit hash as 32 lowercase hex digits (fixed width, zero
/// padded — store keys must sort and compare as plain strings).
pub fn hex128(h: u128) -> String {
    format!("{h:032x}")
}

/// The stable key of a JSON document: [`fnv1a128`] over its compact
/// canonical serialization, rendered as 32 hex digits.
pub fn stable_key(doc: &Json) -> String {
    hex128(fnv1a128(doc.to_string().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors for 128-bit FNV-1a (computed from the
    /// published offset basis and prime; the empty input must hash to
    /// the offset basis by definition).
    #[test]
    fn fnv1a128_matches_reference_vectors() {
        assert_eq!(fnv1a128(b""), FNV128_OFFSET);
        // One octet: (offset ^ 'a') * prime.
        let expected_a = (FNV128_OFFSET ^ b'a' as u128).wrapping_mul(FNV128_PRIME);
        assert_eq!(fnv1a128(b"a"), expected_a);
        // Avalanche sanity: near-identical inputs diverge.
        assert_ne!(fnv1a128(b"abc"), fnv1a128(b"abd"));
        assert_ne!(fnv1a128(b"abc"), fnv1a128(b"abc\0"));
    }

    #[test]
    fn hex128_is_fixed_width_lowercase() {
        assert_eq!(hex128(0), "0".repeat(32));
        assert_eq!(hex128(0xff), format!("{}ff", "0".repeat(30)));
        let h = hex128(fnv1a128(b"lu"));
        assert_eq!(h.len(), 32);
        assert!(h
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
    }

    #[test]
    fn stable_key_depends_on_structure_not_identity() {
        let a = Json::obj().with("app", "lu").with("cluster", 4u32);
        let b = Json::obj().with("app", "lu").with("cluster", 4u32);
        assert_eq!(stable_key(&a), stable_key(&b));
        // Key order matters (canonical = insertion order): a document
        // built differently is a different request.
        let swapped = Json::obj().with("cluster", 4u32).with("app", "lu");
        assert_ne!(stable_key(&a), stable_key(&swapped));
        let other = Json::obj().with("app", "lu").with("cluster", 8u32);
        assert_ne!(stable_key(&a), stable_key(&other));
    }
}
