//! Vector clocks and epochs for happens-before analysis over traces.
//!
//! The race detector (crate `cluster_check`) orders trace operations by
//! the classic happens-before relation: program order within a
//! processor, plus the synchronization edges a barrier (all-to-all
//! join) or a lock (release → next acquire) induces. A [`VectorClock`]
//! holds one logical-clock component per processor; an [`Epoch`] is the
//! FastTrack-style compressed form `(proc, clock)` identifying a single
//! point in one processor's history.
//!
//! An access at epoch `e` happens-before a processor whose current
//! clock is `C` iff `e.clock <= C[e.proc]` ([`VectorClock::dominates`]).

use crate::cast::usize_from;
use crate::space::ProcId;

/// One point in one processor's logical history: the value of that
/// processor's own clock component when the event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The processor whose event this is.
    pub proc: ProcId,
    /// That processor's own clock component at the event.
    pub clock: u64,
}

/// A per-processor vector of logical clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for `n_procs` processors.
    pub fn new(n_procs: usize) -> VectorClock {
        VectorClock {
            c: vec![0; n_procs],
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// Whether the clock has zero components.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Component for processor `p` (0 when out of range: an absent
    /// processor has an eternally-zero history).
    #[inline]
    pub fn get(&self, p: ProcId) -> u64 {
        self.c.get(usize_from(p)).copied().unwrap_or(0)
    }

    /// Advances processor `p`'s own component by one. Out-of-range `p`
    /// is ignored.
    #[inline]
    pub fn bump(&mut self, p: ProcId) {
        if let Some(slot) = self.c.get_mut(usize_from(p)) {
            *slot += 1;
        }
    }

    /// Component-wise maximum with `other` (the receive half of a
    /// synchronization edge).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.c.iter_mut().zip(other.c.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The epoch of processor `p` under this clock.
    #[inline]
    pub fn epoch_of(&self, p: ProcId) -> Epoch {
        Epoch {
            proc: p,
            clock: self.get(p),
        }
    }

    /// Whether the event at `e` happens-before (or is) this clock:
    /// `e.clock <= self[e.proc]`.
    #[inline]
    pub fn dominates(&self, e: Epoch) -> bool {
        e.clock <= self.get(e.proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut v = VectorClock::new(3);
        assert_eq!(v.get(1), 0);
        v.bump(1);
        v.bump(1);
        assert_eq!(v.get(1), 2);
        assert_eq!(v.get(0), 0);
        v.bump(99); // out of range: ignored
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.bump(0);
        a.bump(0);
        b.bump(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn dominates_tracks_happens_before() {
        let mut writer = VectorClock::new(2);
        writer.bump(0);
        let w = writer.epoch_of(0); // write at proc 0, clock 1

        // Unsynchronized reader: does not dominate the write.
        let reader = VectorClock::new(2);
        assert!(!reader.dominates(w));

        // After receiving the writer's clock, it does.
        let mut synced = VectorClock::new(2);
        synced.join(&writer);
        assert!(synced.dominates(w));
    }

    #[test]
    fn out_of_range_component_is_zero() {
        let v = VectorClock::new(1);
        assert_eq!(v.get(5), 0);
        assert!(v.dominates(Epoch { proc: 5, clock: 0 }));
        assert!(!v.dominates(Epoch { proc: 5, clock: 1 }));
    }
}
