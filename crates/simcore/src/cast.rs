//! Lossless integer conversions, named so the `no-lossy-cast` lint can
//! tell them apart from truncating `as` casts.
//!
//! The simulation crates promise that no value flowing into results is
//! silently truncated: every narrowing conversion goes through
//! `try_from` with explicit handling, and every `u32 → usize` widening
//! goes through [`usize_from`]. The helper exists because Rust provides
//! no `impl From<u32> for usize` (16-bit targets could not honor it);
//! this workspace only supports targets where `usize` is at least 32
//! bits wide, so the conversion below is the single audited cast site.

/// `u32 → usize`, lossless on every supported target.
#[inline]
pub fn usize_from(v: u32) -> usize {
    // cluster_check: allow(no-lossy-cast) — u32 → usize is a widening
    // conversion on every target the workspace supports (usize ≥ 32
    // bits); this helper is the single audited site.
    v as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_from_is_identity_on_values() {
        assert_eq!(usize_from(0), 0usize);
        assert_eq!(usize_from(7), 7usize);
        assert_eq!(usize_from(u32::MAX), u32::MAX as usize);
    }
}
