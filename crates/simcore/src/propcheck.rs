//! A small deterministic property-based testing harness.
//!
//! The workspace previously used the `proptest` crate, which cannot be
//! fetched in the offline build environment. This module replaces it
//! with an in-tree harness that keeps the parts the test suites
//! actually rely on:
//!
//! * **Seeded case generation** — every case is derived from a fixed
//!   base seed, so failures are reproducible by construction.
//! * **Configurable case counts** — set `PROPCHECK_CASES` to raise or
//!   lower the number of cases per property (CI can afford more than a
//!   laptop edit-compile loop).
//! * **Failure-case shrinking** — on failure the harness asks the
//!   caller's shrinker for simpler candidates and greedily descends to
//!   a locally minimal failing case before panicking. Two kinds of
//!   candidates compose: *structural* reductions that drop elements
//!   ([`halves`]) and *element-wise* reductions that replace one
//!   element with a simpler value ([`shrink_each`], [`shrink_u64`]) —
//!   halving alone finds a short counterexample, element-wise
//!   shrinking then drives each surviving element to the smallest
//!   value that still fails (see [`halves_and_each`]).
//!
//! A property is a plain function from a generated case to
//! `Result<(), String>`; tests call [`check`] from an ordinary
//! `#[test]`. Reproduce a reported failure exactly with
//! `PROPCHECK_SEED=<seed> PROPCHECK_CASES=1 cargo test <name>`.

use crate::rng::{mix_seed, Rng64};
use std::fmt::Debug;
use std::ops::Range;

/// Default number of cases per property when `PROPCHECK_CASES` is
/// unset and the test does not override it.
pub const DEFAULT_CASES: u32 = 64;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` runs with a seed mixed from this and `i`
    /// (case 0 uses the base seed verbatim so single-case repro works).
    pub seed: u64,
    /// Upper bound on accepted shrink steps before giving up.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Configuration from the environment with a per-test default case
    /// count. `PROPCHECK_CASES` and `PROPCHECK_SEED` override.
    pub fn from_env(default_cases: u32) -> Config {
        let cases = std::env::var("PROPCHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases)
            .max(1);
        let seed = std::env::var("PROPCHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x5eed_cafe_f00d_d00d);
        Config {
            cases,
            seed,
            max_shrink_steps: 1_000,
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Case-generation handle: a seeded RNG plus convenience constructors
/// mirroring the old `proptest` strategies the suites used.
pub struct Gen {
    rng: Rng64,
}

impl Gen {
    /// A generator for one case.
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: Rng64::new(seed),
        }
    }

    /// Access the underlying RNG for ad-hoc draws.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Uniform `u64` in a half-open range.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        self.rng.gen_range(r)
    }

    /// Uniform `u32` in a half-open range.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.rng.gen_range(r)
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.rng.gen_range(r)
    }

    /// Uniform `u8` in a half-open range.
    pub fn u8_in(&mut self, r: Range<u8>) -> u8 {
        self.rng.gen_range(r)
    }

    /// Uniform `f64` in a half-open range.
    pub fn f64_in(&mut self, r: Range<f64>) -> f64 {
        self.rng.gen_range(r)
    }

    /// Arbitrary `u32` (the old `any::<u32>()`).
    pub fn any_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Arbitrary `bool` (the old `any::<bool>()`).
    pub fn any_bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// One element of a slice, uniformly (the old
    /// `prop::sample::select`).
    pub fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        assert!(!xs.is_empty());
        // cluster_check: allow(no-lossy-cast) — bounded by the slice
        // length, which is itself a usize.
        xs[self.rng.bounded_u64(xs.len() as u64) as usize]
    }

    /// A vector with uniformly chosen length, each element drawn by
    /// `f` (the old `prop::collection::vec(strategy, len_range)`).
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Shrinking helper: candidate reductions of a vector by halving —
/// the first half, the second half, and the vector with one element
/// dropped (for the final descent once halving overshoots).
pub fn halves<T: Clone>(xs: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if xs.len() >= 2 {
        let mid = xs.len() / 2;
        out.push(xs[..mid].to_vec());
        out.push(xs[mid..].to_vec());
    }
    if !xs.is_empty() {
        let mut all_but_last = xs.to_vec();
        all_but_last.pop();
        out.push(all_but_last);
    }
    out
}

/// A shrinker for cases with nothing useful to shrink.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Element-wise shrink candidates: for each position in `xs`, one
/// candidate per simpler value `simplify` offers for that element,
/// with every other element unchanged (length is preserved —
/// structural reduction is [`halves`]' job). Candidates are ordered
/// position-major, so the greedy descent settles the front of the
/// vector first.
pub fn shrink_each<T: Clone>(xs: &[T], simplify: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    for (i, x) in xs.iter().enumerate() {
        for s in simplify(x) {
            let mut v = xs.to_vec();
            v[i] = s;
            out.push(v);
        }
    }
    out
}

/// Structural shrink candidates that drop one element at a time —
/// finer-grained than [`halves`] (which only drops the last element
/// or a whole half), at O(n) candidates per round. At a fixed point,
/// *every* element is load-bearing: removing any single one makes the
/// property pass.
pub fn drop_each<T: Clone>(xs: &[T]) -> Vec<Vec<T>> {
    (0..xs.len())
        .map(|i| {
            let mut v = xs.to_vec();
            v.remove(i);
            v
        })
        .collect()
}

/// Simpler candidates for an unsigned integer, in descending
/// aggressiveness: `0`, the halved value, and the decrement. The
/// decrement guarantees the greedy descent can always take the last
/// single step to a boundary (e.g. land exactly *on* a failing
/// threshold), which halving alone overshoots.
pub fn shrink_u64(x: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for c in [0, x / 2, x - x.min(1)] {
        if c != x && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// The standard vector shrinker: structural reductions first
/// ([`halves`]: shorter vectors shrink the *case*), then element-wise
/// reductions ([`shrink_each`]: simpler elements shrink the
/// *values*). Greedy descent over this combined pool converges on a
/// counterexample that is minimal in both length and magnitude.
pub fn halves_and_each<T: Clone>(xs: &[T], simplify: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = halves(xs);
    out.extend(shrink_each(xs, simplify));
    out
}

/// Greedily descends from a failing `case` to a locally minimal one:
/// repeatedly moves to the first still-failing candidate `shrink`
/// offers, up to `max_steps` accepted steps. Returns the minimal case,
/// its failure message, and the number of accepted steps. This is the
/// descent [`check_with`] runs on failure, exposed so shrinker quality
/// is testable directly (see the planted-bug tests in
/// `tests/prop_simcore.rs`).
pub fn shrink_to_minimal<T, S, P>(
    case: T,
    first_err: String,
    shrink: S,
    prop: P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Clone,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut minimal = case;
    let mut last_err = first_err;
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for candidate in shrink(&minimal) {
            if let Err(e) = prop(&candidate) {
                minimal = candidate;
                last_err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break; // locally minimal
    }
    (minimal, last_err, steps)
}

/// Runs `prop` against `cfg.cases` generated cases; on failure,
/// greedily shrinks via `shrink` and panics with the minimal failing
/// case and its reproduction seed.
pub fn check_with<T, G, S, P>(cfg: &Config, name: &str, gen: G, shrink: S, prop: P)
where
    T: Debug + Clone,
    G: Fn(&mut Gen) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    for i in 0..cfg.cases {
        let case_seed = if i == 0 {
            cfg.seed
        } else {
            mix_seed(cfg.seed, i as u64)
        };
        let case = gen(&mut Gen::from_seed(case_seed));
        let Err(first_err) = prop(&case) else {
            continue;
        };

        let (minimal, last_err, steps) =
            shrink_to_minimal(case, first_err, &shrink, &prop, cfg.max_shrink_steps);

        // cluster_check: allow(no-panic) — failing the test by panic
        // is this harness's contract (it runs only inside #[test]s).
        panic!(
            "property '{name}' failed (case {i} of {cases}, seed {case_seed:#x}, \
             {steps} shrink steps)\n\
             error: {last_err}\n\
             minimal failing case: {minimal:#?}\n\
             reproduce with: PROPCHECK_SEED={case_seed:#x} PROPCHECK_CASES=1",
            cases = cfg.cases,
        );
    }
}

/// [`check_with`] using [`Config::from_env`] and the default case
/// count.
pub fn check<T, G, S, P>(name: &str, gen: G, shrink: S, prop: P)
where
    T: Debug + Clone,
    G: Fn(&mut Gen) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::from_env(DEFAULT_CASES), name, gen, shrink, prop)
}

/// [`check`] with an explicit default case count (still overridable
/// via `PROPCHECK_CASES`).
pub fn check_cases<T, G, S, P>(default_cases: u32, name: &str, gen: G, shrink: S, prop: P)
where
    T: Debug + Clone,
    G: Fn(&mut Gen) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::from_env(default_cases), name, gen, shrink, prop)
}

/// Early-return assertion for property bodies: `prop_ensure!(cond,
/// "format", args...)` yields `Err(message)` when `cond` is false.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion with both sides in the failure message.
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}: {:?} vs {:?}",
                format!($($fmt)*),
                a,
                b
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 10,
            seed: 1,
            max_shrink_steps: 10,
        };
        check_with(
            &cfg,
            "always_true",
            |g| g.u64_in(0..100),
            no_shrink,
            |_| Ok(()),
        );
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let gen = |g: &mut Gen| (g.u64_in(0..1000), g.vec_of(0..10, |g| g.any_u32()));
        let a = gen(&mut Gen::from_seed(77));
        let b = gen(&mut Gen::from_seed(77));
        assert_eq!(a, b);
        let c = gen(&mut Gen::from_seed(78));
        assert_ne!(a, c);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vector() {
        // Property: no vector contains a value >= 50. The minimal
        // failing case is a single offending element.
        let cfg = Config {
            cases: 50,
            seed: 3,
            max_shrink_steps: 1_000,
        };
        let result = std::panic::catch_unwind(|| {
            check_with(
                &cfg,
                "all_below_50",
                |g| g.vec_of(0..40, |g| g.u64_in(0..60)),
                |v| halves(v.as_slice()),
                |v| {
                    if v.iter().all(|&x| x < 50) {
                        Ok(())
                    } else {
                        Err("element >= 50".into())
                    }
                },
            )
        });
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("panic payload is String"),
        };
        assert!(msg.contains("all_below_50"), "{msg}");
        assert!(msg.contains("reproduce with"), "{msg}");
        // Shrinking by halving must reach a single-element vector.
        assert!(msg.contains("minimal failing case"), "{msg}");
        let ones = msg.split("minimal failing case:").nth(1).unwrap();
        let elems = ones.split(',').count();
        assert!(elems <= 3, "not shrunk far enough: {msg}");
    }

    #[test]
    fn halves_shrink_candidates() {
        let v = vec![1, 2, 3, 4];
        let c = halves(&v);
        assert!(c.contains(&vec![1, 2]));
        assert!(c.contains(&vec![3, 4]));
        assert!(c.contains(&vec![1, 2, 3]));
        assert!(halves::<u32>(&[]).is_empty());
    }

    #[test]
    fn shrink_each_replaces_one_position_at_a_time() {
        let v = vec![10u64, 20];
        let c = shrink_each(&v, |&x| vec![x / 2]);
        assert_eq!(c, vec![vec![5, 20], vec![10, 10]]);
        assert!(shrink_each::<u64>(&[], |_| vec![0]).is_empty());
    }

    #[test]
    fn drop_each_removes_every_position() {
        let c = drop_each(&[1, 2, 3]);
        assert_eq!(c, vec![vec![2, 3], vec![1, 3], vec![1, 2]]);
        assert!(drop_each::<u32>(&[]).is_empty());
    }

    #[test]
    fn shrink_u64_offers_zero_half_and_decrement() {
        assert_eq!(shrink_u64(10), vec![0, 5, 9]);
        assert_eq!(shrink_u64(1), vec![0]);
        assert!(shrink_u64(0).is_empty());
        // Candidates are always strictly smaller: descent terminates.
        for x in [2u64, 3, 7, 1000, u64::MAX] {
            assert!(shrink_u64(x).iter().all(|&c| c < x));
        }
    }

    #[test]
    fn halves_and_each_combines_both_pools() {
        let v = vec![4u64, 6];
        let c = halves_and_each(&v, |&x| shrink_u64(x));
        // Structural candidates first...
        assert_eq!(c[0], vec![4]);
        // ...element-wise candidates after.
        assert!(c.contains(&vec![0, 6]));
        assert!(c.contains(&vec![4, 3]));
    }

    #[test]
    fn shrink_to_minimal_reaches_a_fixed_point() {
        // Property: x < 50 (fails for x >= 50). From 93 the descent
        // must land exactly on the boundary value 50.
        let (minimal, err, steps) = shrink_to_minimal(
            93u64,
            "seed".into(),
            |&x| shrink_u64(x),
            |&x| {
                if x < 50 {
                    Ok(())
                } else {
                    Err(format!("{x} >= 50"))
                }
            },
            1_000,
        );
        assert_eq!(minimal, 50);
        assert_eq!(err, "50 >= 50");
        assert!(steps > 0);
    }

    #[test]
    fn env_config_defaults() {
        let cfg = Config::from_env(17);
        // In the normal test environment neither var is set; if a
        // caller sets PROPCHECK_CASES this still must parse to >= 1.
        assert!(cfg.cases >= 1);
        assert!(cfg.max_shrink_steps > 0);
    }

    #[test]
    fn pick_and_bool_cover_choices() {
        let mut g = Gen::from_seed(5);
        let mut saw = [false; 3];
        let mut bools = [false; 2];
        for _ in 0..200 {
            saw[g.pick(&[0usize, 1, 2])] = true;
            bools[g.any_bool() as usize] = true;
        }
        assert!(saw.iter().all(|&s| s));
        assert!(bools.iter().all(|&s| s));
    }
}
