//! Sampled / interval simulation: choose representative intervals of a
//! trace, replay a warmup window before each for cache state, and
//! measure statistics only inside the chosen intervals.
//!
//! The paper's methodology replays every operation of every trace,
//! which caps the study at the 1995-scale matrix. This module follows
//! the interval-sampling playbook (Carlson et al.; arXiv:2402.00649):
//! split each processor's stream into fixed-size intervals, pick a
//! subset by one of three strategies, and classify every operation as
//!
//! * **Measure** — replayed with full timing and statistics,
//! * **Warm** — replayed against the memory system with full-replay
//!   timing (so cache state and cross-processor interleaving stay
//!   exact), but excluded from every statistics counter; its
//!   functional hit/miss outcomes feed the estimate side only, or
//! * **Skip** — not replayed at all.
//!
//! Synchronization operations (barriers, locks, unlocks) are *always*
//! executed regardless of classification, so the sync skeleton —
//! barrier ordering, FIFO lock grants — is preserved exactly and the
//! sampled replay can never deadlock where the full replay would not.
//!
//! The three strategies:
//!
//! * [`SampleMode::Periodic`] — systematic pick: every `1/rate`-th
//!   interval, starting at the first.
//! * [`SampleMode::Reservoir`] — stratified random pick: the interval
//!   stream is cut into `⌈n·rate⌉` equal strata and one interval is
//!   reservoir-picked per stratum, seeded from [`crate::rng`] so the
//!   same seed always selects the same interval set.
//! * [`SampleMode::PhaseDetect`] — detects phase boundaries from
//!   shifts in the per-interval memory signature (memory-op density
//!   and cache-line novelty, a cheap trace-side proxy for miss-rate
//!   shifts between windows), then picks periodically *within* each
//!   phase so every phase is represented.
//!
//! A plan depends only on the trace and the [`SampleSpec`] — never on
//! the machine configuration — so the same intervals are measured at
//! every cluster size and speedup ratios are comparable across a
//! sweep. Everything is deterministic: the validation harness in
//! `crates/bench` regression-tests the resulting error bounds.

use std::collections::HashSet;
use std::fmt;

use crate::json::Json;
use crate::ops::{Op, PackedOp, Trace};
use crate::rng::{mix_seed, Rng64};
use crate::stats::{Breakdown, MissStats, RunStats};

/// Default fraction of intervals measured.
pub const DEFAULT_RATE: f64 = 0.25;
/// Default warmup window replayed (per measured region) for cache
/// state, in operations.
pub const DEFAULT_WARMUP_OPS: u64 = 2048;
/// Default interval length, in operations.
pub const DEFAULT_INTERVAL_OPS: u64 = 256;
/// Default selection seed (reservoir mode).
pub const DEFAULT_SEED: u64 = 0x5a3b_17ee_c0de_5eed;

/// Declared bound on the relative error of the sampled read miss rate.
pub const MISS_RATE_BOUND: f64 = 0.05;
/// Declared bound on the relative error of sampled speedup ratios.
pub const SPEEDUP_BOUND: f64 = 0.05;
/// Declared bound on the relative error of the scaled execution-time
/// estimate (a coarse extrapolation; see [`SamplingStats::scale`]).
pub const EXEC_TIME_BOUND: f64 = 0.25;
/// Declared bound on the absolute error of any execution-time
/// breakdown fraction (cpu/load/merge/sync, in fraction points).
pub const BREAKDOWN_BOUND: f64 = 0.10;
/// Relative-error denominators are floored here so near-zero miss
/// rates do not turn femto-scale absolute errors into huge ratios.
pub const MISS_RATE_FLOOR: f64 = 0.01;

/// Phase boundary threshold on the memory-op density shift.
const MEM_SHIFT: f64 = 0.15;
/// Phase boundary threshold on the cache-line novelty shift.
const NOVELTY_SHIFT: f64 = 0.30;

/// Interval-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleMode {
    /// Systematic: every `1/rate`-th interval.
    Periodic,
    /// Seeded uniform reservoir pick of `⌈n·rate⌉` intervals.
    Reservoir,
    /// Phase-detecting: periodic within detected phases.
    PhaseDetect,
}

impl SampleMode {
    /// All strategies, in declaration order.
    pub const ALL: [SampleMode; 3] = [
        SampleMode::Periodic,
        SampleMode::Reservoir,
        SampleMode::PhaseDetect,
    ];

    /// Stable CLI / manifest label.
    pub fn label(self) -> &'static str {
        match self {
            SampleMode::Periodic => "periodic",
            SampleMode::Reservoir => "reservoir",
            SampleMode::PhaseDetect => "phase",
        }
    }

    /// Parses a [`Self::label`]; unknown labels are a typed error.
    pub fn parse(s: &str) -> Result<SampleMode, SampleError> {
        match s {
            "periodic" => Ok(SampleMode::Periodic),
            "reservoir" => Ok(SampleMode::Reservoir),
            "phase" => Ok(SampleMode::PhaseDetect),
            other => Err(SampleError::UnknownMode(other.to_string())),
        }
    }
}

/// Typed configuration errors for sampling parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleError {
    /// The sampling rate must lie in `(0, 1]`.
    RateOutOfRange(f64),
    /// Not one of `periodic`, `reservoir`, `phase`.
    UnknownMode(String),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::RateOutOfRange(r) => {
                write!(f, "sampling rate {r} not in (0, 1]")
            }
            SampleError::UnknownMode(m) => {
                write!(f, "unknown sampling mode `{m}` (periodic|reservoir|phase)")
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Complete sampling configuration. A spec plus a trace fully
/// determine a [`SamplePlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSpec {
    /// Interval-selection strategy.
    pub mode: SampleMode,
    /// Fraction of intervals measured, in `(0, 1]`; `1.0` measures
    /// everything (byte-identical to a full replay).
    pub rate: f64,
    /// Operations replayed for cache state before each measured
    /// region, excluded from statistics.
    pub warmup_ops: u64,
    /// Interval length in operations.
    pub interval_ops: u64,
    /// Selection seed (reservoir mode).
    pub seed: u64,
}

impl SampleSpec {
    /// A spec with the default rate, warmup, interval and seed.
    pub fn new(mode: SampleMode) -> SampleSpec {
        SampleSpec {
            mode,
            rate: DEFAULT_RATE,
            warmup_ops: DEFAULT_WARMUP_OPS,
            interval_ops: DEFAULT_INTERVAL_OPS,
            seed: DEFAULT_SEED,
        }
    }

    /// Validates the spec, returning a typed error when the rate lies
    /// outside `(0, 1]` (NaN included).
    pub fn validated(self) -> Result<SampleSpec, SampleError> {
        if !(self.rate > 0.0 && self.rate <= 1.0) {
            return Err(SampleError::RateOutOfRange(self.rate));
        }
        Ok(self)
    }

    /// Canonical label naming every parameter that can change sampled
    /// statistics — the serving layer folds this into cell keys so a
    /// sampled and a full run of the same cell never alias.
    pub fn key_label(&self) -> String {
        format!(
            "{}:r{}:w{}:i{}:s{}",
            self.mode.label(),
            self.rate,
            self.warmup_ops,
            self.interval_ops,
            self.seed
        )
    }
}

/// Replay classification of one trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Replay with full timing and statistics.
    Measure,
    /// Replay against the memory system for cache state only.
    Warm,
    /// Do not replay.
    Skip,
}

/// Per-processor plan: sorted, disjoint half-open op-index ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ProcPlan {
    measured: Vec<(usize, usize)>,
    warm: Vec<(usize, usize)>,
}

fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    let i = ranges.partition_point(|&(s, _)| s <= idx);
    i > 0 && idx < ranges[i - 1].1
}

/// The resolved interval selection for one trace: which operations to
/// measure, which to warm, and which to skip, per processor.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    spec: SampleSpec,
    per_proc: Vec<ProcPlan>,
    ops_total: u64,
    ops_measured: u64,
    ops_warm: u64,
    weight_total: u64,
    weight_measured: u64,
    weight_warm: u64,
    warm_counted: bool,
}

/// Nominal cycle weight of an operation, used to extrapolate measured
/// execution time to a full-run estimate. Synchronization carries no
/// weight: it is always replayed, never scaled.
fn op_weight(op: Op) -> u64 {
    match op {
        Op::Compute(c) => c,
        Op::Read(_) | Op::Write(_) => 1,
        Op::Barrier(_) | Op::Lock(_) | Op::Unlock(_) => 0,
    }
}

fn periodic_period(rate: f64) -> usize {
    if rate <= 0.0 {
        return 1;
    }
    // cluster_check: allow(no-lossy-cast) — float-to-int casts
    // saturate in Rust, and the period is clamped to >= 1 anyway.
    ((1.0 / rate).round() as usize).max(1)
}

fn periodic_pick(n_iv: usize, rate: f64) -> Vec<usize> {
    (0..n_iv).step_by(periodic_period(rate)).collect()
}

/// Stratified reservoir selection: the interval stream is cut into
/// `k = ceil(n_iv * rate)` equal strata and one interval is
/// reservoir-picked per stratum (Algorithm R with k = 1). Unbiased
/// within each stratum, and stratification bounds the gap between
/// consecutive picks to under two strata, so the default warmup
/// window covers every gap and the sampled timing stays exact.
fn reservoir_pick(n_iv: usize, rate: f64, seed: u64) -> Vec<usize> {
    if n_iv == 0 {
        return Vec::new();
    }
    // cluster_check: allow(no-lossy-cast) — float-to-int casts
    // saturate in Rust, and k is clamped into [1, n_iv].
    let k = ((n_iv as f64 * rate).ceil() as usize).clamp(1, n_iv);
    let mut rng = Rng64::new(seed);
    let mut res: Vec<usize> = Vec::with_capacity(k);
    for s in 0..k {
        // Stratum s covers intervals [lo, hi): an even split with the
        // remainder spread over the leading strata.
        let lo = s * n_iv / k;
        let hi = (s + 1) * n_iv / k;
        let mut pick = lo;
        for (i, iv) in (lo..hi).enumerate() {
            if i > 0 && rng.bounded_u64(i as u64 + 1) == 0 {
                pick = iv;
            }
        }
        res.push(pick);
    }
    res
}

fn phase_pick(ops: &[PackedOp], interval: usize, n_iv: usize, rate: f64) -> Vec<usize> {
    let period = periodic_period(rate);
    // Per-interval memory signature: (memory-op density, fraction of
    // touched cache lines not seen in the previous interval). A shift
    // in either marks a phase boundary — the trace-side analogue of a
    // miss-rate shift between windows.
    let mut sigs: Vec<(f64, f64)> = Vec::with_capacity(n_iv);
    let mut prev_lines: HashSet<u64> = HashSet::new();
    for iv in 0..n_iv {
        let s = iv * interval;
        let e = ((iv + 1) * interval).min(ops.len());
        let mut lines: HashSet<u64> = HashSet::new();
        let mut mem = 0usize;
        let mut novel = 0usize;
        for op in &ops[s..e] {
            if let Op::Read(a) | Op::Write(a) = op.unpack() {
                mem += 1;
                let line = crate::addr::line_of(a);
                if lines.insert(line) && !prev_lines.contains(&line) {
                    novel += 1;
                }
            }
        }
        let mem_frac = mem as f64 / (e - s).max(1) as f64;
        let novelty = novel as f64 / mem.max(1) as f64;
        sigs.push((mem_frac, novelty));
        prev_lines = lines;
    }
    let mut selected = Vec::with_capacity(n_iv.div_ceil(period));
    let mut phase_start = 0usize;
    for iv in 0..n_iv {
        if iv > 0 {
            let (m0, v0) = sigs[iv - 1];
            let (m1, v1) = sigs[iv];
            if (m1 - m0).abs() > MEM_SHIFT || (v1 - v0).abs() > NOVELTY_SHIFT {
                phase_start = iv;
            }
        }
        if (iv - phase_start).is_multiple_of(period) {
            selected.push(iv);
        }
    }
    selected
}

impl SamplePlan {
    /// Resolves `spec` against `trace`. Deterministic: the same trace
    /// and spec always yield the same plan, and a rate of `1.0` (any
    /// mode) measures every operation with no warm ranges.
    pub fn for_trace(trace: &Trace, spec: &SampleSpec) -> SamplePlan {
        let interval = usize::try_from(spec.interval_ops.max(1)).unwrap_or(usize::MAX);
        let warmup = usize::try_from(spec.warmup_ops).unwrap_or(usize::MAX);
        let full = spec.rate >= 1.0;
        let mut per_proc = Vec::with_capacity(trace.n_procs());
        let (mut ops_total, mut ops_measured, mut ops_warm) = (0u64, 0u64, 0u64);
        let (mut weight_total, mut weight_measured, mut weight_warm) = (0u64, 0u64, 0u64);
        for (pid, ops) in trace.per_proc.iter().enumerate() {
            let n = ops.len();
            let n_iv = n.div_ceil(interval);
            let selected: Vec<usize> = if full {
                (0..n_iv).collect()
            } else {
                match spec.mode {
                    SampleMode::Periodic => periodic_pick(n_iv, spec.rate),
                    SampleMode::Reservoir => {
                        reservoir_pick(n_iv, spec.rate, mix_seed(spec.seed, pid as u64))
                    }
                    SampleMode::PhaseDetect => phase_pick(ops, interval, n_iv, spec.rate),
                }
            };
            // Coalesce adjacent selected intervals into op ranges.
            let mut measured: Vec<(usize, usize)> = Vec::new();
            for iv in selected {
                let s = iv * interval;
                let e = ((iv + 1) * interval).min(n);
                if s >= e {
                    continue;
                }
                match measured.last_mut() {
                    Some(last) if last.1 == s => last.1 = e,
                    _ => measured.push((s, e)),
                }
            }
            // Warmup windows precede each measured range, clipped so
            // they never overlap measured operations.
            let mut warm: Vec<(usize, usize)> = Vec::new();
            let mut prev_end = 0usize;
            for &(s, e) in &measured {
                let ws = s.saturating_sub(warmup).max(prev_end);
                if ws < s {
                    warm.push((ws, s));
                }
                prev_end = e;
            }
            // Tail drain: everything past the last measured range
            // stays warm, so the run reaches its terminal
            // synchronization at realistic times. A skipped tail
            // would collapse the final barrier waits — and the
            // execution-time estimate with them.
            if let Some(&(_, e)) = measured.last() {
                if e < n {
                    warm.push((e, n));
                }
            }
            for op in ops {
                weight_total += op_weight(op.unpack());
            }
            for &(s, e) in &measured {
                ops_measured += (e - s) as u64;
                for op in &ops[s..e] {
                    weight_measured += op_weight(op.unpack());
                }
            }
            for &(s, e) in &warm {
                ops_warm += (e - s) as u64;
                for op in &ops[s..e] {
                    weight_warm += op_weight(op.unpack());
                }
            }
            ops_total += n as u64;
            per_proc.push(ProcPlan { measured, warm });
        }
        SamplePlan {
            spec: *spec,
            per_proc,
            ops_total,
            ops_measured,
            ops_warm,
            weight_total,
            weight_measured,
            weight_warm,
            warm_counted: false,
        }
    }

    /// Classifies operation `idx` of processor `pid`. Synchronization
    /// operations are executed by the engine regardless of class.
    pub fn class(&self, pid: usize, idx: usize) -> OpClass {
        let Some(pp) = self.per_proc.get(pid) else {
            return OpClass::Measure;
        };
        if in_ranges(&pp.measured, idx) {
            OpClass::Measure
        } else if in_ranges(&pp.warm, idx) {
            if self.warm_counted {
                OpClass::Measure
            } else {
                OpClass::Warm
            }
        } else {
            OpClass::Skip
        }
    }

    /// True when the plan measures every operation (rate ≥ 1).
    pub fn is_full(&self) -> bool {
        self.ops_measured == self.ops_total
    }

    /// The spec this plan was resolved from.
    pub fn spec(&self) -> &SampleSpec {
        &self.spec
    }

    /// Measured op-index ranges (half-open, sorted) for one processor.
    pub fn measured_ranges(&self, pid: usize) -> &[(usize, usize)] {
        self.per_proc.get(pid).map_or(&[], |pp| &pp.measured)
    }

    /// Warm op-index ranges (half-open, sorted) for one processor.
    pub fn warm_ranges(&self, pid: usize) -> &[(usize, usize)] {
        self.per_proc.get(pid).map_or(&[], |pp| &pp.warm)
    }

    /// Provenance summary recorded in journals and manifests.
    pub fn stats(&self) -> SamplingStats {
        SamplingStats {
            mode: self.spec.mode,
            rate: self.spec.rate,
            warmup_ops: self.spec.warmup_ops,
            interval_ops: self.spec.interval_ops,
            seed: self.spec.seed,
            ops_total: self.ops_total,
            ops_measured: self.ops_measured,
            ops_warm: self.ops_warm,
            weight_total: self.weight_total,
            weight_measured: self.weight_measured,
            weight_warm: self.weight_warm,
            warm_read_hits: 0,
            warm_read_misses: 0,
            warm_write_hits: 0,
            warm_write_misses: 0,
            warm_upgrade_misses: 0,
            warm_cpu_cycles: 0,
            warm_load_cycles: 0,
            warm_merge_cycles: 0,
        }
    }

    /// Planted-bug lever for the shrink tests: reclassifies every warm
    /// operation as measured, violating the "warmup ops are never
    /// counted in statistics" contract. Not reachable from any
    /// production path.
    #[doc(hidden)]
    pub fn with_warm_counted(mut self) -> SamplePlan {
        self.warm_counted = true;
        self
    }
}

/// Sampling provenance attached to a sampled run: the spec it was
/// resolved from plus the resulting coverage counters. Stored in
/// journal entries and manifests (full view only — never in the
/// deterministic stats view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingStats {
    /// Strategy used.
    pub mode: SampleMode,
    /// Configured measurement rate.
    pub rate: f64,
    /// Configured warmup window.
    pub warmup_ops: u64,
    /// Configured interval length.
    pub interval_ops: u64,
    /// Configured selection seed.
    pub seed: u64,
    /// Operations in the trace.
    pub ops_total: u64,
    /// Operations measured.
    pub ops_measured: u64,
    /// Operations replayed for warmup only.
    pub ops_warm: u64,
    /// Total nominal cycle weight of the trace.
    pub weight_total: u64,
    /// Nominal cycle weight of the measured operations.
    pub weight_measured: u64,
    /// Nominal cycle weight of the warm operations.
    pub weight_warm: u64,
    /// Functional read hits observed during warm replay (estimate-side
    /// only — never part of the deterministic stats view).
    pub warm_read_hits: u64,
    /// Functional read misses observed during warm replay.
    pub warm_read_misses: u64,
    /// Functional write hits observed during warm replay.
    pub warm_write_hits: u64,
    /// Functional write misses observed during warm replay.
    pub warm_write_misses: u64,
    /// Functional upgrade misses observed during warm replay.
    pub warm_upgrade_misses: u64,
    /// Warm-replay cycles that a full replay would charge to the cpu
    /// component (compute, single-cycle hits, writes).
    pub warm_cpu_cycles: u64,
    /// Warm-replay cycles a full replay would charge to load stall.
    pub warm_load_cycles: u64,
    /// Warm-replay cycles a full replay would charge to merge stall.
    pub warm_merge_cycles: u64,
}

impl SamplingStats {
    /// Operations actually replayed (measured + warm).
    pub fn ops_simulated(&self) -> u64 {
        self.ops_measured + self.ops_warm
    }

    /// Copies the warm-replay functional outcomes and per-component
    /// cycle counts out of an engine run into the provenance record.
    pub fn with_warm(mut self, warm: &MissStats, warm_bd: &Breakdown) -> SamplingStats {
        self.warm_read_hits = warm.read_hits;
        self.warm_read_misses = warm.read_misses;
        self.warm_write_hits = warm.write_hits;
        self.warm_write_misses = warm.write_misses;
        self.warm_upgrade_misses = warm.upgrade_misses;
        self.warm_cpu_cycles = warm_bd.cpu;
        self.warm_load_cycles = warm_bd.load;
        self.warm_merge_cycles = warm_bd.merge;
        self
    }

    /// Extrapolation factor from *simulated* (measured + warm) work to
    /// the whole trace. Warm operations advance the clock, so only the
    /// skipped remainder needs scaling; at the default spec every
    /// non-measured operation falls inside a warmup window and the
    /// factor is exactly 1.
    pub fn scale(&self) -> f64 {
        let simulated = self.weight_measured + self.weight_warm;
        if simulated == 0 {
            1.0
        } else {
            self.weight_total as f64 / simulated as f64
        }
    }

    /// Full-run execution-time estimate from a sampled replay's
    /// execution time (which already includes warm-op time at
    /// full-replay cost); [`Self::scale`] extrapolates over any
    /// skipped remainder.
    pub fn estimated_exec_time(&self, sampled_exec: u64) -> f64 {
        sampled_exec as f64 * self.scale()
    }

    /// Full-run read-miss-rate estimate: the measured counters plus
    /// the warm replay's functional outcomes, i.e. every access the
    /// sampled replay actually simulated.
    pub fn estimated_read_miss_rate(&self, measured: &MissStats) -> f64 {
        let misses = self.warm_read_misses + measured.read_misses;
        let denom = misses + self.warm_read_hits + measured.read_hits;
        if denom == 0 {
            0.0
        } else {
            misses as f64 / denom as f64
        }
    }

    /// Full-run execution-time breakdown-fraction estimate, in order
    /// `[cpu, load, merge, sync]`. Warm time is charged to the clock
    /// but to no breakdown component; the engine records where a full
    /// replay *would* have charged it, so each measured component is
    /// topped up with its warm share (sync is always tracked in
    /// full). With no skipped operations the result is exact; with
    /// skipping it describes the simulated portion of the run.
    pub fn estimated_breakdown_fractions(&self, rs: &RunStats) -> [f64; 4] {
        let bd = rs.total_breakdown();
        let parts = [
            (bd.cpu + self.warm_cpu_cycles) as f64,
            (bd.load + self.warm_load_cycles) as f64,
            (bd.merge + self.warm_merge_cycles) as f64,
            bd.sync as f64,
        ];
        let total: f64 = parts.iter().sum();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            parts[0] / total,
            parts[1] / total,
            parts[2] / total,
            parts[3] / total,
        ]
    }

    /// The spec these stats were produced under — used to decide
    /// whether a journal or cache entry may stand in for a requested
    /// run.
    pub fn spec(&self) -> SampleSpec {
        SampleSpec {
            mode: self.mode,
            rate: self.rate,
            warmup_ops: self.warmup_ops,
            interval_ops: self.interval_ops,
            seed: self.seed,
        }
    }

    /// JSON provenance object (`sampling` in journals and manifests).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("mode", self.mode.label())
            .with("rate", self.rate)
            .with("warmup_ops", self.warmup_ops)
            .with("interval_ops", self.interval_ops)
            .with("seed", self.seed)
            .with("ops_total", self.ops_total)
            .with("ops_measured", self.ops_measured)
            .with("ops_warm", self.ops_warm)
            .with("ops_simulated", self.ops_simulated())
            .with("weight_total", self.weight_total)
            .with("weight_measured", self.weight_measured)
            .with("weight_warm", self.weight_warm)
            .with("warm_read_hits", self.warm_read_hits)
            .with("warm_read_misses", self.warm_read_misses)
            .with("warm_write_hits", self.warm_write_hits)
            .with("warm_write_misses", self.warm_write_misses)
            .with("warm_upgrade_misses", self.warm_upgrade_misses)
            .with("warm_cpu_cycles", self.warm_cpu_cycles)
            .with("warm_load_cycles", self.warm_load_cycles)
            .with("warm_merge_cycles", self.warm_merge_cycles)
    }

    /// Inverse of [`Self::to_json`] (field-exact; `ops_simulated` is
    /// derived and ignored on read).
    pub fn from_json(j: &Json) -> Option<SamplingStats> {
        Some(SamplingStats {
            mode: SampleMode::parse(j.get("mode")?.as_str()?).ok()?,
            rate: j.get("rate")?.as_f64()?,
            warmup_ops: j.get("warmup_ops")?.as_u64()?,
            interval_ops: j.get("interval_ops")?.as_u64()?,
            seed: j.get("seed")?.as_u64()?,
            ops_total: j.get("ops_total")?.as_u64()?,
            ops_measured: j.get("ops_measured")?.as_u64()?,
            ops_warm: j.get("ops_warm")?.as_u64()?,
            weight_total: j.get("weight_total")?.as_u64()?,
            weight_measured: j.get("weight_measured")?.as_u64()?,
            weight_warm: j.get("weight_warm")?.as_u64()?,
            warm_read_hits: j.get("warm_read_hits")?.as_u64()?,
            warm_read_misses: j.get("warm_read_misses")?.as_u64()?,
            warm_write_hits: j.get("warm_write_hits")?.as_u64()?,
            warm_write_misses: j.get("warm_write_misses")?.as_u64()?,
            warm_upgrade_misses: j.get("warm_upgrade_misses")?.as_u64()?,
            warm_cpu_cycles: j.get("warm_cpu_cycles")?.as_u64()?,
            warm_load_cycles: j.get("warm_load_cycles")?.as_u64()?,
            warm_merge_cycles: j.get("warm_merge_cycles")?.as_u64()?,
        })
    }
}

/// Relative error with a floored denominator, the error metric the
/// validation harness records: `|sampled − full| / max(|full|, floor)`.
pub fn rel_err(sampled: f64, full: f64, floor: f64) -> f64 {
    (sampled - full).abs() / full.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::TraceBuilder;

    fn small_trace(n_procs: usize, ops_per_proc: usize) -> Trace {
        let mut b = TraceBuilder::new(n_procs);
        let base = b.space_mut().alloc_shared(64 * 64);
        for p in 0..n_procs {
            for i in 0..ops_per_proc {
                match i % 3 {
                    0 => b.read(p as u32, base + ((i * 64) % (64 * 64)) as u64),
                    1 => b.write(p as u32, base + ((i * 64) % (64 * 64)) as u64),
                    _ => b.compute(p as u32, 2),
                }
            }
        }
        b.finish()
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in SampleMode::ALL {
            assert_eq!(SampleMode::parse(m.label()).unwrap(), m);
        }
        assert!(matches!(
            SampleMode::parse("nope"),
            Err(SampleError::UnknownMode(_))
        ));
    }

    #[test]
    fn validated_rejects_out_of_range_rates() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let spec = SampleSpec {
                rate: bad,
                ..SampleSpec::new(SampleMode::Periodic)
            };
            assert!(matches!(
                spec.validated(),
                Err(SampleError::RateOutOfRange(_))
            ));
        }
        assert!(SampleSpec::new(SampleMode::Periodic).validated().is_ok());
    }

    #[test]
    fn rate_one_measures_everything() {
        let t = small_trace(2, 500);
        for mode in SampleMode::ALL {
            let spec = SampleSpec {
                rate: 1.0,
                ..SampleSpec::new(mode)
            };
            let plan = SamplePlan::for_trace(&t, &spec);
            assert!(plan.is_full());
            let s = plan.stats();
            assert_eq!(s.ops_measured, s.ops_total);
            assert_eq!(s.ops_warm, 0);
            assert!((s.scale() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_selects_every_fourth_interval() {
        let t = small_trace(1, 1024);
        let spec = SampleSpec {
            rate: 0.25,
            interval_ops: 64,
            warmup_ops: 0,
            ..SampleSpec::new(SampleMode::Periodic)
        };
        let plan = SamplePlan::for_trace(&t, &spec);
        let ranges = plan.measured_ranges(0);
        assert!(!ranges.is_empty());
        for (i, &(s, _)) in ranges.iter().enumerate() {
            assert_eq!(s, i * 4 * 64);
        }
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let t = small_trace(2, 2000);
        let spec = SampleSpec::new(SampleMode::Reservoir);
        let a = SamplePlan::for_trace(&t, &spec);
        let b = SamplePlan::for_trace(&t, &spec);
        assert_eq!(a, b);
        let other = SamplePlan::for_trace(
            &t,
            &SampleSpec {
                seed: spec.seed + 1,
                ..spec
            },
        );
        assert_ne!(a.measured_ranges(0), other.measured_ranges(0));
    }

    #[test]
    fn warm_ranges_abut_measured_and_never_overlap() {
        let t = small_trace(1, 4096);
        for mode in SampleMode::ALL {
            let spec = SampleSpec {
                rate: 0.125,
                interval_ops: 128,
                warmup_ops: 96,
                ..SampleSpec::new(mode)
            };
            let plan = SamplePlan::for_trace(&t, &spec);
            let n = t.per_proc[0].len();
            let mut seen = vec![0u8; n];
            for &(s, e) in plan.measured_ranges(0) {
                for c in &mut seen[s..e] {
                    *c += 1;
                }
            }
            for &(s, e) in plan.warm_ranges(0) {
                for c in &mut seen[s..e] {
                    *c += 1;
                }
            }
            assert!(seen.iter().all(|&c| c <= 1), "{mode:?}: overlap");
            for i in 0..n {
                let c = plan.class(0, i);
                let expected = if in_ranges(plan.measured_ranges(0), i) {
                    OpClass::Measure
                } else if in_ranges(plan.warm_ranges(0), i) {
                    OpClass::Warm
                } else {
                    OpClass::Skip
                };
                assert_eq!(c, expected);
            }
        }
    }

    #[test]
    fn sampling_stats_json_round_trips() {
        let t = small_trace(2, 600);
        let spec = SampleSpec::new(SampleMode::PhaseDetect);
        let s = SamplePlan::for_trace(&t, &spec).stats();
        let j = s.to_json();
        assert_eq!(SamplingStats::from_json(&j), Some(s));
        assert_eq!(s.spec(), spec);
    }

    #[test]
    fn key_label_names_every_parameter() {
        let spec = SampleSpec::new(SampleMode::Reservoir);
        let l = spec.key_label();
        assert!(l.starts_with("reservoir:"));
        assert!(l.contains(":r0.25:"));
        assert!(l.contains(":w2048:"));
        let other = SampleSpec { rate: 0.5, ..spec };
        assert_ne!(l, other.key_label());
    }

    #[test]
    fn with_warm_counted_reclassifies_warm_ops() {
        let t = small_trace(1, 2048);
        let spec = SampleSpec {
            rate: 0.25,
            interval_ops: 128,
            warmup_ops: 64,
            ..SampleSpec::new(SampleMode::Periodic)
        };
        let plan = SamplePlan::for_trace(&t, &spec);
        let warm_idx = plan.warm_ranges(0).first().map(|&(s, _)| s);
        let Some(i) = warm_idx else {
            panic!("expected a warm range")
        };
        assert_eq!(plan.class(0, i), OpClass::Warm);
        assert_eq!(
            plan.clone().with_warm_counted().class(0, i),
            OpClass::Measure
        );
    }
}
