//! Witness types for the race detector and the replay-order certifier.
//!
//! Two verification passes (crate `cluster_check`, DESIGN.md §15) share
//! these types:
//!
//! * **Race detection** consumes raw traces and produces
//!   [`RaceReport`]s: a pair of conflicting accesses to the same cache
//!   line that no happens-before path orders, plus a minimal replayable
//!   schedule ([`RaceReport::witness`]) shrunk by `propcheck`.
//! * **Order certification** consumes a stream of [`WitnessEvent`]s —
//!   one per *committed* memory access, emitted by the `tango` replay
//!   observation hook — and checks the §3.1 serialization invariants on
//!   a real full-scale run.
//!
//! Both reports serialize through the writers at the bottom of this
//! file; the `schema-sync` lint pins their key sets against
//! `crates/check/tests/schema_race.rs`.

use crate::addr::{line_of, LineAddr};
use crate::json::Json;
use crate::ops::Op;
use crate::space::ProcId;

/// Schema tag of the race-report document.
pub const RACE_REPORT_SCHEMA: &str = "clustered-smp/race-report/v1";
/// Schema tag of the order-certificate document.
pub const CERTIFICATE_SCHEMA: &str = "clustered-smp/order-certificate/v1";

/// Whether a memory access loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// How the memory system committed an access (the subset of coherence
/// outcomes that complete an access; retried merge waits never appear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitKind {
    /// Load hit in the local cache.
    ReadHit,
    /// Load missed and was served through the directory.
    ReadMiss,
    /// Load missed locally but a bus mate supplied the line
    /// (shared-memory-cluster mode).
    ReadBus,
    /// Store found the line already EXCLUSIVE locally.
    WriteHit,
    /// Store fetched the line EXCLUSIVE through the directory.
    WriteMiss,
    /// Store found the line SHARED and invalidated the other copies.
    Upgrade,
}

impl CommitKind {
    /// Whether this commit grants (or requires) exclusive ownership.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            CommitKind::WriteHit | CommitKind::WriteMiss | CommitKind::Upgrade
        )
    }
}

/// One committed memory access observed during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessEvent {
    /// Global replay clock at which the access was issued.
    pub time: u64,
    /// Issuing processor.
    pub proc: ProcId,
    /// Byte address accessed.
    pub addr: u64,
    /// How the memory system committed it.
    pub commit: CommitKind,
}

impl WitnessEvent {
    /// Cache line of the access.
    #[inline]
    pub fn line(&self) -> LineAddr {
        line_of(self.addr)
    }
}

/// One side of a racing pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// Processor issuing the access.
    pub proc: ProcId,
    /// Byte address accessed.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

/// A detected data race: two conflicting same-line accesses that no
/// happens-before path orders, plus a minimal schedule reproducing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The contested cache line.
    pub line: LineAddr,
    /// The access the detector saw first (in canonical schedule order).
    pub first: RaceAccess,
    /// The later, conflicting access.
    pub second: RaceAccess,
    /// Minimal witness schedule: `(proc, op)` in an order that still
    /// exhibits the race, shrunk by `propcheck` (typically just the two
    /// conflicting accesses).
    pub witness: Vec<(ProcId, Op)>,
}

/// Stable lowercase name of an op for reports.
pub fn op_name(op: Op) -> &'static str {
    match op {
        Op::Read(_) => "read",
        Op::Write(_) => "write",
        Op::Compute(_) => "compute",
        Op::Barrier(_) => "barrier",
        Op::Lock(_) => "lock",
        Op::Unlock(_) => "unlock",
    }
}

/// Payload of an op (address, cycles, or sync id) for reports.
pub fn op_arg(op: Op) -> u64 {
    match op {
        Op::Read(a) | Op::Write(a) | Op::Compute(a) => a,
        Op::Barrier(id) | Op::Lock(id) | Op::Unlock(id) => u64::from(id),
    }
}

fn access_json(a: &RaceAccess) -> Json {
    Json::obj()
        .with("proc", a.proc)
        .with("addr", a.addr)
        .with("kind", a.kind.name())
}

impl RaceReport {
    /// JSON form of one race, including the minimal witness schedule.
    pub fn to_json(&self) -> Json {
        let witness: Vec<Json> = self
            .witness
            .iter()
            .map(|(p, op)| {
                Json::obj()
                    .with("proc", *p)
                    .with("op", op_name(*op))
                    .with("arg", op_arg(*op))
            })
            .collect();
        Json::obj()
            .with("line", self.line)
            .with("first", access_json(&self.first))
            .with("second", access_json(&self.second))
            .with("witness", Json::Arr(witness))
    }
}

/// The race-report document for one analyzed trace.
pub fn race_report_json(app: &str, n_procs: usize, races: &[RaceReport]) -> Json {
    let races_json: Vec<Json> = races.iter().map(RaceReport::to_json).collect();
    Json::obj()
        .with("schema", RACE_REPORT_SCHEMA)
        .with("app", app)
        .with("n_procs", n_procs)
        .with("race_free", races.is_empty())
        .with("races", Json::Arr(races_json))
}

/// The order-certificate document for one replayed configuration.
pub fn certificate_json(
    app: &str,
    per_cluster: u32,
    cache: &str,
    certified: bool,
    events_checked: u64,
    violations: &[String],
) -> Json {
    let violations_json: Vec<Json> = violations.iter().map(|v| Json::from(v.as_str())).collect();
    Json::obj()
        .with("schema", CERTIFICATE_SCHEMA)
        .with("app", app)
        .with("per_cluster", per_cluster)
        .with("cache", cache)
        .with("certified", certified)
        .with("events_checked", events_checked)
        .with("violations", Json::Arr(violations_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_event_line_and_write_class() {
        let e = WitnessEvent {
            time: 10,
            proc: 3,
            addr: 130,
            commit: CommitKind::Upgrade,
        };
        assert_eq!(e.line(), 2);
        assert!(e.commit.is_write());
        assert!(!CommitKind::ReadBus.is_write());
    }

    #[test]
    fn race_report_serializes_all_fields() {
        let r = RaceReport {
            line: 4,
            first: RaceAccess {
                proc: 0,
                addr: 256,
                kind: AccessKind::Write,
            },
            second: RaceAccess {
                proc: 1,
                addr: 260,
                kind: AccessKind::Read,
            },
            witness: vec![(0, Op::Write(256)), (1, Op::Read(260))],
        };
        let doc = race_report_json("mp3d", 4, &[r]);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(RACE_REPORT_SCHEMA)
        );
        assert_eq!(doc.get("race_free").and_then(Json::as_bool), Some(false));
        let races = doc.get("races").and_then(Json::as_arr).unwrap();
        assert_eq!(races.len(), 1);
        let first = races[0].get("first").unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("write"));
        let w = races[0].get("witness").and_then(Json::as_arr).unwrap();
        assert_eq!(w[1].get("op").and_then(Json::as_str), Some("read"));
        assert_eq!(w[1].get("arg").and_then(Json::as_u64), Some(260));
    }

    #[test]
    fn clean_report_is_race_free() {
        let doc = race_report_json("fft", 16, &[]);
        assert_eq!(doc.get("race_free").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("races").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn certificate_serializes_all_fields() {
        let doc = certificate_json("ocean", 4, "16k", true, 1234, &[]);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(CERTIFICATE_SCHEMA)
        );
        assert_eq!(doc.get("certified").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("events_checked").and_then(Json::as_u64), Some(1234));
        let bad = certificate_json("ocean", 4, "16k", false, 10, &["v".to_string()]);
        assert_eq!(
            bad.get("violations")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
