//! Deterministic fault injection for the study executor.
//!
//! Long simulation campaigns must survive worker failures; proving
//! that requires *causing* failures on demand. This module decides —
//! as a pure function of a seed, a work-item key and an attempt
//! number — whether a work item should fail, so the guarded executor
//! (`cluster_study::parallel`) can inject a panic or a delay at the
//! moment it runs the item. Because the decision is deterministic:
//!
//! * the same `(rate, seed)` plan selects the same items on every
//!   run, on every platform, at every `--jobs` value;
//! * a selected item fails its first [`FaultPlan::depth`] attempts
//!   and then succeeds, so `--retries >= depth` *provably* recovers
//!   every injected fault and `--retries < depth` *provably* leaves
//!   failures behind — integration tests and the CI fault-smoke job
//!   assert both directions without flakiness.
//!
//! The plan is normally constructed from the environment
//! ([`FaultPlan::from_env`]): `STUDY_FAULT_RATE` (selection
//! probability, default 0 = disabled), `STUDY_FAULT_SEED`,
//! `STUDY_FAULT_DEPTH` (consecutive failing attempts per selected
//! item, default 1), `STUDY_FAULT_KIND` (`panic` | `delay`) and
//! `STUDY_FAULT_DELAY_MS` (straggler duration for `delay`).

use std::time::Duration;

use crate::rng::{mix_seed, Rng64};

/// What an injected fault does to a work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable payload (tests panic isolation and
    /// retry).
    Panic,
    /// Sleep for [`FaultPlan::delay`] before running the item (tests
    /// the soft timeout watchdog).
    Delay,
}

/// Payload prefix of every injected panic, so reports and tests can
/// tell injected faults from real bugs.
pub const PANIC_PREFIX: &str = "injected fault";

/// A deterministic fault-injection schedule.
///
/// `decide(key, attempt)` is a pure function: item `key` is *selected*
/// with probability [`FaultPlan::rate`] (drawn from an RNG seeded by
/// `mix_seed(seed, fnv1a(key))`, so selection is independent of
/// execution order), and a selected item faults on attempts
/// `0..depth` only.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a work item is selected to fault.
    pub rate: f64,
    /// Seed decorrelating selection across plans.
    pub seed: u64,
    /// How many consecutive attempts of a selected item fault before
    /// it succeeds (so `retries >= depth` always recovers).
    pub depth: u32,
    /// What a fault does.
    pub kind: FaultKind,
    /// Sleep duration for [`FaultKind::Delay`] faults.
    pub delay: Duration,
}

impl FaultPlan {
    /// The no-faults plan (rate 0): [`FaultPlan::apply`] is a no-op.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            rate: 0.0,
            seed: 0,
            depth: 1,
            kind: FaultKind::Panic,
            delay: Duration::from_millis(50),
        }
    }

    /// A panic-injection plan with the given selection rate and seed.
    pub fn new(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            rate: rate.clamp(0.0, 1.0),
            seed,
            ..FaultPlan::disabled()
        }
    }

    /// Builds the plan from `STUDY_FAULT_*` environment variables
    /// (unset or unparsable values fall back to the defaults, i.e.
    /// unset `STUDY_FAULT_RATE` means no injection at all).
    pub fn from_env() -> FaultPlan {
        FaultPlan::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`FaultPlan::from_env`] over an explicit variable source, so
    /// parsing is testable without mutating process state.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> FaultPlan {
        let parse = |k: &str| get(k).and_then(|v| v.trim().parse::<u64>().ok());
        let mut plan = FaultPlan::disabled();
        if let Some(rate) = get("STUDY_FAULT_RATE").and_then(|v| v.trim().parse::<f64>().ok()) {
            plan.rate = rate.clamp(0.0, 1.0);
        }
        if let Some(seed) = parse("STUDY_FAULT_SEED") {
            plan.seed = seed;
        }
        if let Some(depth) = parse("STUDY_FAULT_DEPTH") {
            plan.depth = u32::try_from(depth).unwrap_or(u32::MAX);
        }
        match get("STUDY_FAULT_KIND").as_deref().map(str::trim) {
            Some("delay") => plan.kind = FaultKind::Delay,
            _ => plan.kind = FaultKind::Panic,
        }
        if let Some(ms) = parse("STUDY_FAULT_DELAY_MS") {
            plan.delay = Duration::from_millis(ms);
        }
        plan
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && self.depth > 0
    }

    /// Whether item `key` is selected to fault at all (independent of
    /// the attempt number).
    pub fn selects(&self, key: &str) -> bool {
        self.is_active() && Rng64::new(mix_seed(self.seed, fnv1a(key))).gen_bool(self.rate)
    }

    /// The fault (if any) to inject into attempt `attempt` (0-based)
    /// of item `key`. Pure: same inputs, same answer, forever.
    pub fn decide(&self, key: &str, attempt: u32) -> Option<FaultKind> {
        (attempt < self.depth && self.selects(key)).then_some(self.kind)
    }

    /// Injects the decided fault, if any: panics with a
    /// [`PANIC_PREFIX`]-tagged payload or sleeps for
    /// [`FaultPlan::delay`].
    pub fn apply(&self, key: &str, attempt: u32) {
        match self.decide(key, attempt) {
            Some(FaultKind::Panic) => {
                // cluster_check: allow(no-panic) — injecting this panic
                // is the module's whole purpose (tagged payload).
                panic!("{PANIC_PREFIX}: {key} (attempt {attempt})");
            }
            Some(FaultKind::Delay) => std::thread::sleep(self.delay),
            None => {}
        }
    }
}

/// A network-side fault injected into one socket I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Deliver (or accept) at most one byte — a short read/write.
    Short,
    /// Fail the call with `ErrorKind::Interrupted` (EINTR storm).
    Interrupted,
    /// Fail the call with `ErrorKind::WouldBlock` (spurious readiness).
    WouldBlock,
}

/// Which disk fault kinds a plan may inject into store appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskFaultKind {
    /// `write(2)` fails before any byte lands.
    Write,
    /// The line is written but `fdatasync` fails.
    Fsync,
    /// Only a prefix of the line lands — a torn append.
    Torn,
    /// Rotate deterministically among all three.
    #[default]
    Mix,
}

/// A disk-side fault injected into one store append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The append's `write(2)` fails; nothing lands on disk.
    WriteErr,
    /// The line lands but its `fdatasync` fails (not durable).
    FsyncErr,
    /// Only the first `keep` bytes of the line land.
    Torn {
        /// Bytes of the line that reach the file before the tear.
        keep: usize,
    },
}

/// A deterministic network/disk fault schedule for the serving stack.
///
/// Like [`FaultPlan`], every decision is a pure function of the seed
/// and a structural key — here `(connection id, I/O-op index)` for
/// sockets and `(shard index, append index)` for the store — so a
/// chaos run with a fixed seed injects the same faults at the same
/// structural points on every platform, and the torture suite can
/// assert recovery without wall-clock flakiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// Seed decorrelating selection across plans.
    pub seed: u64,
    /// Per-I/O-call probability of a [`NetFault`].
    pub net_rate: f64,
    /// Per-connection probability of a mid-stream connection drop.
    pub drop_rate: f64,
    /// Per-connection probability that the accept is refused outright.
    pub accept_rate: f64,
    /// Per-append probability of a [`DiskFault`].
    pub disk_rate: f64,
    /// Which disk faults [`IoFaultPlan::disk_fault`] may pick.
    pub disk_kind: DiskFaultKind,
}

impl IoFaultPlan {
    /// The no-faults plan: every decider answers `None`/`false`.
    pub fn disabled() -> IoFaultPlan {
        IoFaultPlan {
            seed: 0,
            net_rate: 0.0,
            drop_rate: 0.0,
            accept_rate: 0.0,
            disk_rate: 0.0,
            disk_kind: DiskFaultKind::Mix,
        }
    }

    /// Builds the plan from `SERVE_FAULT_*` environment variables
    /// (`SERVE_FAULT_SEED`, `SERVE_FAULT_NET_RATE`,
    /// `SERVE_FAULT_DROP_RATE`, `SERVE_FAULT_ACCEPT_RATE`,
    /// `SERVE_FAULT_DISK_RATE`, `SERVE_FAULT_DISK_KIND` =
    /// `write|fsync|torn|mix`). Unset or unparsable values fall back
    /// to the disabled defaults.
    pub fn from_env() -> IoFaultPlan {
        IoFaultPlan::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`IoFaultPlan::from_env`] over an explicit variable source, so
    /// parsing is testable without mutating process state.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> IoFaultPlan {
        let rate = |k: &str| {
            get(k)
                .and_then(|v| v.trim().parse::<f64>().ok())
                .map(|r| r.clamp(0.0, 1.0))
        };
        let mut plan = IoFaultPlan::disabled();
        if let Some(seed) = get("SERVE_FAULT_SEED").and_then(|v| v.trim().parse::<u64>().ok()) {
            plan.seed = seed;
        }
        if let Some(r) = rate("SERVE_FAULT_NET_RATE") {
            plan.net_rate = r;
        }
        if let Some(r) = rate("SERVE_FAULT_DROP_RATE") {
            plan.drop_rate = r;
        }
        if let Some(r) = rate("SERVE_FAULT_ACCEPT_RATE") {
            plan.accept_rate = r;
        }
        if let Some(r) = rate("SERVE_FAULT_DISK_RATE") {
            plan.disk_rate = r;
        }
        match get("SERVE_FAULT_DISK_KIND").as_deref().map(str::trim) {
            Some("write") => plan.disk_kind = DiskFaultKind::Write,
            Some("fsync") => plan.disk_kind = DiskFaultKind::Fsync,
            Some("torn") => plan.disk_kind = DiskFaultKind::Torn,
            _ => plan.disk_kind = DiskFaultKind::Mix,
        }
        plan
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.net_rate > 0.0
            || self.drop_rate > 0.0
            || self.accept_rate > 0.0
            || self.disk_rate > 0.0
    }

    fn rng_for(&self, key: &str) -> Rng64 {
        Rng64::new(mix_seed(self.seed, fnv1a(key)))
    }

    /// The network fault (if any) for I/O call `op` (a per-connection
    /// 0-based counter) on connection `conn`. Pure.
    pub fn net_op(&self, conn: u64, op: u64) -> Option<NetFault> {
        if self.net_rate <= 0.0 {
            return None;
        }
        let mut rng = self.rng_for(&format!("net:{conn}:{op}"));
        if !rng.gen_bool(self.net_rate) {
            return None;
        }
        Some(match rng.bounded_u64(3) {
            0 => NetFault::Short,
            1 => NetFault::Interrupted,
            _ => NetFault::WouldBlock,
        })
    }

    /// Whether connection `conn` is refused at accept time. Pure.
    pub fn refuse_accept(&self, conn: u64) -> bool {
        self.accept_rate > 0.0
            && self
                .rng_for(&format!("accept:{conn}"))
                .gen_bool(self.accept_rate)
    }

    /// The I/O-op index at which connection `conn` is dropped
    /// mid-stream, if it is selected to drop at all. Pure.
    pub fn drop_after(&self, conn: u64) -> Option<u64> {
        if self.drop_rate <= 0.0 {
            return None;
        }
        let mut rng = self.rng_for(&format!("drop:{conn}"));
        rng.gen_bool(self.drop_rate)
            .then(|| 1 + rng.bounded_u64(64))
    }

    /// The disk fault (if any) for append number `append` (a
    /// per-shard 1-based counter) on shard `shard`, where the line
    /// being appended is `line_len` bytes. Pure.
    pub fn disk_fault(&self, shard: u64, append: u64, line_len: usize) -> Option<DiskFault> {
        if self.disk_rate <= 0.0 || line_len == 0 {
            return None;
        }
        let mut rng = self.rng_for(&format!("disk:{shard}:{append}"));
        if !rng.gen_bool(self.disk_rate) {
            return None;
        }
        let kind = match self.disk_kind {
            DiskFaultKind::Write => 0,
            DiskFaultKind::Fsync => 1,
            DiskFaultKind::Torn => 2,
            DiskFaultKind::Mix => rng.bounded_u64(3),
        };
        Some(match kind {
            0 => DiskFault::WriteErr,
            1 => DiskFault::FsyncErr,
            _ => DiskFault::Torn {
                // cluster_check: allow(no-lossy-cast) — bounded by
                // line_len, which is itself a usize.
                keep: rng.bounded_u64(line_len as u64) as usize,
            },
        })
    }
}

/// FNV-1a of a string — the same construction `splash::util::rng_for`
/// uses to seed workloads, replicated here (simcore sits below
/// splash) so fault selection is a stable pure function of the item
/// key.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(!p.is_active());
        for i in 0..100 {
            assert_eq!(p.decide(&format!("sim:{i}"), 0), None);
            p.apply(&format!("sim:{i}"), 0); // must not panic
        }
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(0.5, 7);
        let b = FaultPlan::new(0.5, 7);
        let c = FaultPlan::new(0.5, 8);
        let keys: Vec<String> = (0..200).map(|i| format!("sim:{i}")).collect();
        let pick = |p: &FaultPlan| keys.iter().map(|k| p.selects(k)).collect::<Vec<bool>>();
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c), "different seeds select differently");
        let hits = pick(&a).iter().filter(|&&s| s).count();
        assert!((50..150).contains(&hits), "rate 0.5 selected {hits}/200");
    }

    #[test]
    fn rate_bounds_select_none_and_all() {
        let none = FaultPlan::new(0.0, 1);
        let all = FaultPlan::new(1.0, 1);
        for i in 0..50 {
            let k = format!("gen:{i}");
            assert!(!none.selects(&k));
            assert!(all.selects(&k));
        }
    }

    #[test]
    fn depth_bounds_consecutive_failures() {
        let mut p = FaultPlan::new(1.0, 3);
        p.depth = 2;
        assert_eq!(p.decide("sim:0", 0), Some(FaultKind::Panic));
        assert_eq!(p.decide("sim:0", 1), Some(FaultKind::Panic));
        assert_eq!(p.decide("sim:0", 2), None, "attempt depth succeeds");
        assert_eq!(p.decide("sim:0", 99), None);
    }

    #[test]
    #[should_panic(expected = "injected fault: sim:3 (attempt 0)")]
    fn apply_panics_with_tagged_payload() {
        FaultPlan::new(1.0, 0).apply("sim:3", 0);
    }

    #[test]
    fn delay_kind_sleeps_instead_of_panicking() {
        let mut p = FaultPlan::new(1.0, 0);
        p.kind = FaultKind::Delay;
        p.delay = Duration::from_millis(1);
        let t0 = std::time::Instant::now();
        p.apply("sim:0", 0); // must return, not panic
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn from_lookup_parses_all_variables() {
        let env = |k: &str| {
            let v = match k {
                "STUDY_FAULT_RATE" => "0.25",
                "STUDY_FAULT_SEED" => "42",
                "STUDY_FAULT_DEPTH" => "3",
                "STUDY_FAULT_KIND" => "delay",
                "STUDY_FAULT_DELAY_MS" => "120",
                _ => return None,
            };
            Some(v.to_string())
        };
        let p = FaultPlan::from_lookup(env);
        assert_eq!(p.rate, 0.25);
        assert_eq!(p.seed, 42);
        assert_eq!(p.depth, 3);
        assert_eq!(p.kind, FaultKind::Delay);
        assert_eq!(p.delay, Duration::from_millis(120));
        assert!(p.is_active());
    }

    #[test]
    fn from_lookup_defaults_to_disabled() {
        let p = FaultPlan::from_lookup(|_| None);
        assert_eq!(p, FaultPlan::disabled());
        // Garbage values fall back to defaults instead of erroring.
        let q = FaultPlan::from_lookup(|k| {
            (k == "STUDY_FAULT_RATE").then(|| "not-a-number".to_string())
        });
        assert!(!q.is_active());
    }

    #[test]
    fn io_plan_disabled_never_fires() {
        let p = IoFaultPlan::disabled();
        assert!(!p.is_active());
        for conn in 0..50u64 {
            assert!(!p.refuse_accept(conn));
            assert_eq!(p.drop_after(conn), None);
            assert_eq!(p.net_op(conn, 0), None);
            assert_eq!(p.disk_fault(conn % 4, conn, 128), None);
        }
    }

    #[test]
    fn io_plan_deciders_are_deterministic_and_seed_sensitive() {
        let mk = |seed| IoFaultPlan {
            seed,
            net_rate: 0.5,
            drop_rate: 0.5,
            accept_rate: 0.5,
            disk_rate: 0.5,
            disk_kind: DiskFaultKind::Mix,
        };
        let (a, b, c) = (mk(7), mk(7), mk(8));
        let trace = |p: &IoFaultPlan| {
            (0..100u64)
                .map(|i| {
                    (
                        p.net_op(i, i * 3),
                        p.refuse_accept(i),
                        p.drop_after(i),
                        p.disk_fault(i % 4, i, 200),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(&a), trace(&b), "same seed, same schedule");
        assert_ne!(trace(&a), trace(&c), "different seeds differ");
        let drops = trace(&a).iter().filter(|t| t.2.is_some()).count();
        assert!((20..80).contains(&drops), "rate 0.5 dropped {drops}/100");
    }

    #[test]
    fn io_plan_rate_one_always_selects_and_faults_are_well_formed() {
        let p = IoFaultPlan {
            seed: 3,
            net_rate: 1.0,
            drop_rate: 1.0,
            accept_rate: 1.0,
            disk_rate: 1.0,
            disk_kind: DiskFaultKind::Mix,
        };
        let mut kinds = std::collections::BTreeSet::new();
        for i in 0..60u64 {
            assert!(p.refuse_accept(i));
            let at = p.drop_after(i).expect("rate 1 always drops");
            assert!((1..=64).contains(&at), "drop point {at} within budget");
            assert!(p.net_op(i, 0).is_some());
            match p.disk_fault(0, i, 100).expect("rate 1 always faults") {
                DiskFault::WriteErr => kinds.insert("write"),
                DiskFault::FsyncErr => kinds.insert("fsync"),
                DiskFault::Torn { keep } => {
                    assert!(keep < 100, "torn keeps a strict prefix");
                    kinds.insert("torn")
                }
            };
        }
        assert_eq!(kinds.len(), 3, "mix rotates through all disk faults");
        // A fixed kind pins the fault shape.
        let fsync_only = IoFaultPlan {
            disk_kind: DiskFaultKind::Fsync,
            ..p
        };
        for i in 0..20u64 {
            assert_eq!(fsync_only.disk_fault(1, i, 64), Some(DiskFault::FsyncErr));
        }
    }

    #[test]
    fn io_plan_from_lookup_parses_all_variables() {
        let env = |k: &str| {
            let v = match k {
                "SERVE_FAULT_SEED" => "99",
                "SERVE_FAULT_NET_RATE" => "0.1",
                "SERVE_FAULT_DROP_RATE" => "0.2",
                "SERVE_FAULT_ACCEPT_RATE" => "0.3",
                "SERVE_FAULT_DISK_RATE" => "1.5", // clamped to 1
                "SERVE_FAULT_DISK_KIND" => "torn",
                _ => return None,
            };
            Some(v.to_string())
        };
        let p = IoFaultPlan::from_lookup(env);
        assert_eq!(p.seed, 99);
        assert_eq!(p.net_rate, 0.1);
        assert_eq!(p.drop_rate, 0.2);
        assert_eq!(p.accept_rate, 0.3);
        assert_eq!(p.disk_rate, 1.0);
        assert_eq!(p.disk_kind, DiskFaultKind::Torn);
        assert!(p.is_active());
    }

    #[test]
    fn io_plan_from_lookup_defaults_to_disabled() {
        let p = IoFaultPlan::from_lookup(|_| None);
        assert_eq!(p, IoFaultPlan::disabled());
        let q =
            IoFaultPlan::from_lookup(|k| (k == "SERVE_FAULT_NET_RATE").then(|| "nope".to_string()));
        assert!(!q.is_active());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }
}
