//! Property tests of the coherence protocol: after any sequence of
//! reads and writes from any processors, the global invariants hold
//! (single-writer/multiple-reader, directory-cache agreement), and the
//! latency classification is consistent with the home assignment.
//! Runs on the in-tree `simcore::propcheck` harness; case count is
//! controlled by `PROPCHECK_CASES` (default 64 here, matching the old
//! proptest config).

use coherence::config::CacheSpec;
use coherence::protocol::Outcome;
use coherence::{LatencyTable, MachineConfig, MemorySystem};
use simcore::propcheck::{self, halves, no_shrink, Gen};
use simcore::space::AddressSpace;
use simcore::stats::LatencyClass;
use simcore::{prop_ensure, prop_ensure_eq};

const CASES: u32 = 64;

#[derive(Debug, Clone)]
struct Access {
    proc: u32,
    line: u64,
    is_write: bool,
}

fn accesses(g: &mut Gen, n_procs: u32, n_lines: u64) -> Vec<Access> {
    g.vec_of(1..250, |g| Access {
        proc: g.u32_in(0..n_procs),
        line: g.u64_in(0..n_lines),
        is_write: g.any_bool(),
    })
}

/// Shrinks an access sequence but never to empty (the generators keep
/// at least one access, and the properties assume nothing either way).
fn shrink_accesses(ops: &[Access]) -> Vec<Vec<Access>> {
    halves(ops).into_iter().filter(|h| !h.is_empty()).collect()
}

fn machine(per_cluster: u32, cache_lines: Option<u64>) -> (MemorySystem, u64) {
    let mut space = AddressSpace::new();
    let base = space.alloc_shared(64 * 64);
    let cfg = MachineConfig {
        n_procs: 8,
        per_cluster,
        cache: match cache_lines {
            None => CacheSpec::Infinite,
            Some(l) => CacheSpec::PerProcBytes(l * 64),
        },
        lat: LatencyTable::paper(),
    };
    (MemorySystem::try_new(cfg, &space).unwrap(), base)
}

fn private_machine(per_cluster: u32, cache_lines: u64) -> (MemorySystem, u64) {
    let mut space = AddressSpace::new();
    let base = space.alloc_shared(64 * 64);
    let cfg = MachineConfig {
        n_procs: 8,
        per_cluster,
        cache: CacheSpec::PrivatePerProc {
            bytes: cache_lines * 64,
            bus_cycles: 15,
        },
        lat: LatencyTable::paper(),
    };
    (MemorySystem::try_new(cfg, &space).unwrap(), base)
}

#[test]
fn invariants_hold_under_random_traffic() {
    propcheck::check_cases(
        CASES,
        "invariants_hold_under_random_traffic",
        |g| (accesses(g, 8, 32), g.pick(&[1u32, 2, 4, 8]), g.any_bool()),
        |(ops, pc, fin)| {
            shrink_accesses(ops)
                .into_iter()
                .map(|h| (h, *pc, *fin))
                .collect()
        },
        |(ops, per_cluster, finite)| {
            let (mut m, base) = machine(*per_cluster, finite.then_some(4));
            let mut now = 0u64;
            for a in ops {
                let addr = base + a.line * 64;
                if a.is_write {
                    let _ = m.try_write(a.proc, addr, now).unwrap();
                } else if let Outcome::MergeWait { ready_at } =
                    m.try_read(a.proc, addr, now).unwrap()
                {
                    now = ready_at;
                    let _ = m.try_read(a.proc, addr, now).unwrap();
                }
                now += 7;
                m.check_invariants()
                    .map_err(|e| format!("invariant violated: {e}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn invariants_hold_in_shared_memory_clusters() {
    propcheck::check_cases(
        CASES,
        "invariants_hold_in_shared_memory_clusters",
        |g| {
            (
                accesses(g, 8, 32),
                g.pick(&[2u32, 4, 8]),
                g.pick(&[2u64, 8, 1024]),
            )
        },
        |(ops, pc, cl)| {
            shrink_accesses(ops)
                .into_iter()
                .map(|h| (h, *pc, *cl))
                .collect()
        },
        |(ops, per_cluster, cache_lines)| {
            let (mut m, base) = private_machine(*per_cluster, *cache_lines);
            let mut now = 0u64;
            for a in ops {
                let addr = base + a.line * 64;
                if a.is_write {
                    let _ = m.try_write(a.proc, addr, now).unwrap();
                } else if let Outcome::MergeWait { ready_at } =
                    m.try_read(a.proc, addr, now).unwrap()
                {
                    now = ready_at;
                    let _ = m.try_read(a.proc, addr, now).unwrap();
                }
                now += 7;
                m.check_invariants()
                    .map_err(|e| format!("private-mode invariant violated: {e}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn read_after_write_same_cluster_hits() {
    propcheck::check_cases(
        CASES,
        "read_after_write_same_cluster_hits",
        |g| (g.u32_in(0..8), g.u64_in(0..16)),
        no_shrink,
        |&(writer, line)| {
            // After a write, a read by any processor of the same cluster is
            // a hit (pending window aside — we read after the fill).
            let (mut m, base) = machine(4, None);
            let addr = base + line * 64;
            let _ = m.try_write(writer, addr, 0).unwrap();
            let mate = (writer / 4) * 4 + (writer + 1) % 4;
            let outcome = m.try_read(mate, addr, 1_000).unwrap();
            prop_ensure_eq!(outcome, Outcome::ReadHit);
            Ok(())
        },
    );
}

#[test]
fn miss_latency_matches_home_relation() {
    propcheck::check_cases(
        CASES,
        "miss_latency_matches_home_relation",
        |g| (g.u32_in(0..8), g.u64_in(0..32)),
        no_shrink,
        |&(reader, line)| {
            // On a cold machine, the first read's latency class must be
            // LocalClean iff the line's round-robin home equals the
            // reader's cluster.
            let (mut m, base) = machine(2, None);
            let addr = base + line * 64;
            match m.try_read(reader, addr, 0).unwrap() {
                Outcome::ReadMiss { class, stall } => {
                    // Cold lines are never dirty anywhere.
                    prop_ensure!(
                        class == LatencyClass::LocalClean || class == LatencyClass::RemoteClean,
                        "cold miss classified dirty: {class:?}"
                    );
                    let lat = LatencyTable::paper();
                    prop_ensure_eq!(stall, lat.of(class));
                    Ok(())
                }
                o => Err(format!("expected miss, got {o:?}")),
            }
        },
    );
}

#[test]
fn at_most_one_dirty_copy_everywhere() {
    propcheck::check_cases(
        CASES,
        "at_most_one_dirty_copy_everywhere",
        |g| accesses(g, 8, 16),
        |ops| shrink_accesses(ops),
        |ops| {
            let (mut m, base) = machine(1, None);
            for (i, a) in ops.iter().enumerate() {
                let addr = base + a.line * 64;
                let now = i as u64 * 3;
                if a.is_write {
                    let _ = m.try_write(a.proc, addr, now).unwrap();
                } else if let Outcome::MergeWait { ready_at } =
                    m.try_read(a.proc, addr, now).unwrap()
                {
                    let _ = m.try_read(a.proc, addr, ready_at).unwrap();
                }
            }
            // check_invariants already asserts the SWMR property; run it
            // once more at the end for the final state.
            m.check_invariants()
                .map_err(|e| format!("invariant violated at end: {e}"))
        },
    );
}

#[test]
fn stats_balance() {
    propcheck::check_cases(
        CASES,
        "stats_balance",
        |g| accesses(g, 8, 16),
        |ops| shrink_accesses(ops),
        |ops| {
            let (mut m, base) = machine(2, Some(2));
            let mut reads = 0u64;
            let mut writes = 0u64;
            for (i, a) in ops.iter().enumerate() {
                let addr = base + a.line * 64;
                let now = i as u64 * 200; // spaced out: no merges
                if a.is_write {
                    writes += 1;
                    let _ = m.try_write(a.proc, addr, now).unwrap();
                } else {
                    reads += 1;
                    let _ = m.try_read(a.proc, addr, now).unwrap();
                }
            }
            let s = &m.stats;
            prop_ensure_eq!(s.read_hits + s.read_misses, reads);
            prop_ensure_eq!(s.write_hits + s.write_misses + s.upgrade_misses, writes);
            // Every latency-classified miss is a read or write miss.
            let classified: u64 = s.by_latency.iter().sum();
            prop_ensure_eq!(classified, s.read_misses + s.write_misses);
            Ok(())
        },
    );
}
