//! Machine configuration: processor count, cluster size, cache
//! organization.
//!
//! The paper fixes the machine at 64 processors and varies the cluster
//! size over {1, 2, 4, 8} while keeping the *total* cache per processor
//! fixed: a cluster of `C` processors shares a single cache of
//! `C × (per-processor size)`.

use simcore::cache::CacheKind;
use simcore::space::ProcId;

use crate::latency::LatencyTable;

/// A rejected machine configuration. These are user-reachable (the
/// bench CLIs accept `--procs` and cluster sizes), so validation
/// offers [`MachineConfig::validate`] returning this typed error
/// alongside the panicking [`MachineConfig::validated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Zero processors.
    ZeroProcessors,
    /// Zero processors per cluster.
    ZeroClusterSize,
    /// Cluster size does not divide the processor count.
    ClusterDoesNotDivide {
        /// Requested processors per cluster.
        per_cluster: u32,
        /// Requested total processors.
        n_procs: u32,
    },
    /// More clusters than the directory's 64-bit sharer vector can
    /// track.
    TooManyClusters {
        /// The resulting cluster count.
        clusters: u32,
        /// The directory's limit.
        max: u32,
    },
    /// Invalid per-cluster cache geometry.
    Cache(simcore::cache::CacheError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroProcessors => write!(f, "processor count must be positive"),
            ConfigError::ZeroClusterSize => write!(f, "cluster size must be positive"),
            ConfigError::ClusterDoesNotDivide {
                per_cluster,
                n_procs,
            } => write!(
                f,
                "cluster size {per_cluster} must divide processor count {n_procs}"
            ),
            ConfigError::TooManyClusters { clusters, max } => write!(
                f,
                "{clusters} clusters exceed the directory bit vector's {max}"
            ),
            ConfigError::Cache(e) => write!(f, "invalid cache geometry: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<simcore::cache::CacheError> for ConfigError {
    fn from(e: simcore::cache::CacheError) -> ConfigError {
        ConfigError::Cache(e)
    }
}

/// Per-processor cache size specification used by the study sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSpec {
    /// Infinite cache (Section 4: compulsory + coherence misses only).
    Infinite,
    /// Fully-associative LRU, this many bytes per processor (Section 5
    /// uses 4 KB, 16 KB and 32 KB).
    PerProcBytes(u64),
    /// Set-associative, bytes per processor and ways (extension study).
    PerProcSetAssoc {
        /// Bytes per processor.
        bytes: u64,
        /// Associativity.
        ways: usize,
    },
    /// The paper's *second* cluster type (§2): a shared-main-memory
    /// cluster. Each processor keeps a private fully-associative cache
    /// of `bytes`; cluster mates are kept coherent over a snoopy bus,
    /// and a miss that a mate can supply costs `bus_cycles` instead of
    /// going off-cluster. "In clustered memory systems destructive
    /// interference does not exist, since the caches are separate"; the
    /// flip side is that read-shared working sets are duplicated per
    /// processor rather than stored once.
    PrivatePerProc {
        /// Bytes per private per-processor cache.
        bytes: u64,
        /// Latency of an intra-cluster cache-to-cache (bus) transfer.
        bus_cycles: u64,
    },
}

impl CacheSpec {
    /// Resolves to a concrete per-cluster cache organization. For
    /// [`CacheSpec::PrivatePerProc`] this is the organization of each
    /// *processor's* private cache instead.
    pub fn to_kind(self, procs_per_cluster: u32) -> CacheKind {
        match self {
            CacheSpec::Infinite => CacheKind::Infinite,
            CacheSpec::PerProcBytes(b) => {
                CacheKind::full_lru_per_proc(b, simcore::cast::usize_from(procs_per_cluster))
            }
            CacheSpec::PerProcSetAssoc { bytes, ways } => {
                let lines = usize::try_from(bytes / simcore::addr::LINE_BYTES)
                    .unwrap_or(usize::MAX)
                    .saturating_mul(simcore::cast::usize_from(procs_per_cluster));
                CacheKind::SetAssoc {
                    lines: lines.max(ways),
                    ways,
                }
            }
            CacheSpec::PrivatePerProc { bytes, .. } => CacheKind::full_lru_per_proc(bytes, 1),
        }
    }

    /// Whether this is the shared-main-memory cluster organization
    /// (private caches + snoopy bus).
    pub fn is_private(&self) -> bool {
        matches!(self, CacheSpec::PrivatePerProc { .. })
    }

    /// Human-readable label ("inf", "4k", ...), matching the paper's
    /// figure axes.
    pub fn label(&self) -> String {
        match self {
            CacheSpec::Infinite => "inf".to_string(),
            CacheSpec::PerProcBytes(b) => format!("{}k", b / 1024),
            CacheSpec::PerProcSetAssoc { bytes, ways } => {
                format!("{}k/{}w", bytes / 1024, ways)
            }
            CacheSpec::PrivatePerProc { bytes, .. } => format!("{}k-priv", bytes / 1024),
        }
    }
}

/// Complete machine configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Total processors (64 in all the paper's runs).
    pub n_procs: u32,
    /// Processors per cluster (1, 2, 4 or 8).
    pub per_cluster: u32,
    /// Per-cluster cache organization.
    pub cache: CacheSpec,
    /// Miss-latency model.
    pub lat: LatencyTable,
}

impl MachineConfig {
    /// The paper's configuration: 64 processors, Table 1 latencies.
    pub fn paper(per_cluster: u32, cache: CacheSpec) -> Self {
        MachineConfig {
            n_procs: 64,
            per_cluster,
            cache,
            lat: LatencyTable::paper(),
        }
        .validated()
    }

    /// Validates internal consistency and returns `self`, panicking
    /// on an invalid shape; [`MachineConfig::validate`] is the
    /// non-panicking form for user-supplied configurations.
    pub fn validated(self) -> Self {
        // cluster_check: allow(no-panic) — documented panicking
        // convenience; validate() is the typed form for user input.
        self.validate().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks internal consistency, returning `self` or the typed
    /// reason the shape is invalid. (The directory's 64-cluster limit
    /// is a protocol-layer constraint checked by
    /// `MemorySystem::try_new`, not here.)
    pub fn validate(self) -> Result<Self, ConfigError> {
        if self.n_procs == 0 {
            return Err(ConfigError::ZeroProcessors);
        }
        if self.per_cluster == 0 {
            return Err(ConfigError::ZeroClusterSize);
        }
        if !self.n_procs.is_multiple_of(self.per_cluster) {
            return Err(ConfigError::ClusterDoesNotDivide {
                per_cluster: self.per_cluster,
                n_procs: self.n_procs,
            });
        }
        Ok(self)
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> u32 {
        self.n_procs / self.per_cluster
    }

    /// Cluster containing processor `p`. Processors are numbered so
    /// that consecutive processors share a cluster, matching the apps'
    /// partitioning assumptions (e.g. Ocean assigns adjacent subgrids in
    /// a row to consecutive processors, so clustering captures
    /// neighbors).
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> u32 {
        debug_assert!(p < self.n_procs);
        p / self.per_cluster
    }

    /// Concrete cache organization for one cluster.
    pub fn cluster_cache_kind(&self) -> CacheKind {
        self.cache.to_kind(self.per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cache::CacheKind;

    #[test]
    fn cluster_mapping_is_contiguous() {
        let m = MachineConfig::paper(4, CacheSpec::Infinite);
        assert_eq!(m.n_clusters(), 16);
        assert_eq!(m.cluster_of(0), 0);
        assert_eq!(m.cluster_of(3), 0);
        assert_eq!(m.cluster_of(4), 1);
        assert_eq!(m.cluster_of(63), 15);
    }

    #[test]
    fn cache_scaling_keeps_total_per_proc() {
        let m = MachineConfig::paper(8, CacheSpec::PerProcBytes(4096));
        match m.cluster_cache_kind() {
            CacheKind::FullLru { lines } => assert_eq!(lines, 8 * 64),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic]
    fn invalid_cluster_size_rejected() {
        let _ = MachineConfig::paper(3, CacheSpec::Infinite);
    }

    #[test]
    fn labels() {
        assert_eq!(CacheSpec::Infinite.label(), "inf");
        assert_eq!(CacheSpec::PerProcBytes(4096).label(), "4k");
        assert_eq!(
            CacheSpec::PerProcSetAssoc {
                bytes: 16384,
                ways: 2
            }
            .label(),
            "16k/2w"
        );
    }

    #[test]
    fn validate_reports_typed_errors() {
        let base = MachineConfig {
            n_procs: 64,
            per_cluster: 4,
            cache: CacheSpec::Infinite,
            lat: LatencyTable::paper(),
        };
        assert!(base.validate().is_ok());
        let zero = MachineConfig { n_procs: 0, ..base };
        assert_eq!(zero.validate().err(), Some(ConfigError::ZeroProcessors));
        let zc = MachineConfig {
            per_cluster: 0,
            ..base
        };
        assert_eq!(zc.validate().err(), Some(ConfigError::ZeroClusterSize));
        let odd = MachineConfig {
            per_cluster: 3,
            ..base
        };
        assert_eq!(
            odd.validate().err(),
            Some(ConfigError::ClusterDoesNotDivide {
                per_cluster: 3,
                n_procs: 64
            })
        );
        assert!(odd
            .validate()
            .unwrap_err()
            .to_string()
            .contains("must divide"));
    }

    #[test]
    fn set_assoc_spec_resolves() {
        let spec = CacheSpec::PerProcSetAssoc {
            bytes: 4096,
            ways: 4,
        };
        match spec.to_kind(2) {
            CacheKind::SetAssoc { lines, ways } => {
                assert_eq!(lines, 128);
                assert_eq!(ways, 4);
            }
            _ => panic!(),
        }
    }
}
