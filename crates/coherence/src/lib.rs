//! The simulated clustered memory system of the SC'95 clustering study.
//!
//! Implements the architecture of the paper's Figure 1: 64 processors
//! grouped into clusters of 1/2/4/8, each cluster sharing one cache;
//! memory distributed among clusters DASH-style; an invalidation-based
//! protocol kept coherent by a distributed full-bit-vector directory
//! with replacement hints.
//!
//! * [`latency`] — the miss-latency model of Table 1.
//! * [`config`] — machine configuration (processor count, cluster size,
//!   cache organization).
//! * [`protocol`] — the coherence protocol state machine and the
//!   per-access [`protocol::Outcome`] consumed by the timing engine.

pub mod config;
pub mod latency;
pub mod protocol;

pub use config::{ConfigError, MachineConfig};
pub use latency::LatencyTable;
pub use protocol::{
    CacheLineView, DirEntryView, LineState, MemorySystem, Mutation, Outcome, ProtocolError,
    ProtocolSnapshot,
};
