//! The invalidation-based coherence protocol over clustered shared
//! caches and a distributed full-bit-vector directory (§3.1).
//!
//! Cache states are INVALID / SHARED / EXCLUSIVE; the directory tracks
//! NOT CACHED / SHARED / EXCLUSIVE with a full bit vector of sharer
//! clusters and receives *replacement hints* on every eviction, so
//! directory state never goes stale. Invalidations are instantaneous
//! ("For simulation simplicity, invalidations occur instantaneously,
//! possibly invalidating a line still pending in the cache").
//!
//! Only READ misses are assigned latency; WRITE and UPGRADE misses are
//! assumed hidden by store buffers and relaxed consistency, but WRITE
//! misses still open a *pending window* on the fetched line so that
//! subsequent reads by cluster-mates MERGE on it ("READ misses to lines
//! pending in the cache from outstanding READ or WRITE misses are said
//! to MERGE MISS and will block till the associated data returns").

use std::collections::HashMap;

use simcore::addr::{line_base, line_of, LineAddr};
use simcore::cache::{CacheKind, EvictedLine, FullLruCache, SetAssocCache};
use simcore::cast::usize_from;
use simcore::space::{AddressSpace, Placement, ProcId};
use simcore::stats::{LatencyClass, MissStats};

use crate::config::{ConfigError, MachineConfig};

/// A protocol-level failure reachable from user input (a bad machine
/// shape, or a trace touching memory its address space never
/// allocated). Every construction and access path propagates this
/// typed error ([`MemorySystem::try_new`] / `try_read` / `try_write`);
/// panicking convenience wrappers were removed so the `cluster_check`
/// no-panic lint holds over this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An access touched a line no allocation covers — a malformed
    /// trace, not a protocol invariant.
    UnallocatedAccess {
        /// The offending line address.
        line: LineAddr,
    },
    /// The machine configuration is invalid (shape or the directory's
    /// 64-cluster sharer-vector limit).
    Config(ConfigError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnallocatedAccess { line } => {
                write!(f, "access to unallocated line {line:#x}")
            }
            ProtocolError::Config(e) => write!(f, "invalid machine configuration: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ProtocolError {
    fn from(e: ConfigError) -> ProtocolError {
        ProtocolError::Config(e)
    }
}

/// Cache-line state within a cluster cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineState {
    /// Readable copy; other clusters may also hold SHARED copies.
    #[default]
    Shared,
    /// Sole, writable (dirty) copy in the machine.
    Exclusive,
}

/// Payload stored per resident line in a cluster cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachedLine {
    /// Coherence state.
    pub state: LineState,
    /// Cycle at which the fill completes; reads before this merge-stall.
    pub pending_until: u64,
}

/// One cluster's shared cache, in whichever organization the
/// configuration selects.
#[derive(Debug, Clone)]
enum ClusterCache {
    Lru(FullLruCache<CachedLine>),
    Assoc(SetAssocCache<CachedLine>),
}

impl ClusterCache {
    fn new(kind: CacheKind) -> Self {
        match kind {
            CacheKind::Infinite => ClusterCache::Lru(FullLruCache::infinite()),
            CacheKind::FullLru { lines } => ClusterCache::Lru(FullLruCache::new(lines)),
            CacheKind::SetAssoc { lines, ways } => {
                ClusterCache::Assoc(SetAssocCache::new(lines, ways))
            }
        }
    }

    #[inline]
    fn get_mut(&mut self, line: LineAddr) -> Option<&mut CachedLine> {
        match self {
            ClusterCache::Lru(c) => c.get_mut(line),
            ClusterCache::Assoc(c) => c.get_mut(line),
        }
    }

    #[inline]
    fn peek(&self, line: LineAddr) -> Option<&CachedLine> {
        match self {
            ClusterCache::Lru(c) => c.peek(line),
            ClusterCache::Assoc(c) => c.peek(line),
        }
    }

    #[inline]
    fn peek_mut(&mut self, line: LineAddr) -> Option<&mut CachedLine> {
        match self {
            ClusterCache::Lru(c) => c.peek_mut(line),
            ClusterCache::Assoc(c) => c.peek_mut(line),
        }
    }

    #[inline]
    fn insert(&mut self, line: LineAddr, val: CachedLine) -> Option<EvictedLine<CachedLine>> {
        match self {
            ClusterCache::Lru(c) => c.insert(line, val),
            ClusterCache::Assoc(c) => c.insert(line, val),
        }
    }

    #[inline]
    fn remove(&mut self, line: LineAddr) -> Option<CachedLine> {
        match self {
            ClusterCache::Lru(c) => c.remove(line),
            ClusterCache::Assoc(c) => c.remove(line),
        }
    }

    fn len(&self) -> usize {
        match self {
            ClusterCache::Lru(c) => c.len(),
            ClusterCache::Assoc(c) => c.len(),
        }
    }

    /// Every resident line, in no particular order.
    fn iter_lines(&self) -> Box<dyn Iterator<Item = (LineAddr, &CachedLine)> + '_> {
        match self {
            ClusterCache::Lru(c) => Box::new(c.iter_mru()),
            ClusterCache::Assoc(c) => Box::new(c.iter()),
        }
    }
}

/// Directory entry for one line: its (sticky) home cluster, the sharer
/// bit vector, and whether the single sharer holds it EXCLUSIVE.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    home: u32,
    sharers: u64,
    dirty: bool,
}

impl DirEntry {
    fn owner(&self) -> u32 {
        debug_assert!(self.dirty && self.sharers.count_ones() == 1);
        self.sharers.trailing_zeros()
    }
}

/// Result of snooping the cluster bus for a line.
enum Snoop {
    /// No cluster mate holds the line.
    Absent,
    /// A mate's fill is still outstanding; merge until this cycle.
    Pending(u64),
    /// A mate supplied the line (downgrading a dirty copy).
    Supplied,
}

/// A deliberately planted protocol bug, for the `cluster_check` model
/// checker's planted-mutation tests (the same philosophy as
/// `simcore::fault`: to prove the verifier catches a class of bug, the
/// repo must be able to *cause* that bug on demand). Each variant
/// disables exactly one correct transition; the model checker must
/// report an invariant violation with a short counterexample for every
/// variant, and zero violations with no mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// An UPGRADE no longer invalidates the other clusters' SHARED
    /// copies (directory is updated as if it had).
    DropUpgradeInvalidation,
    /// A capacity eviction no longer sends the replacement hint, so
    /// the directory keeps a sharer bit for a departed line.
    DropReplacementHint,
    /// A read miss to a dirty line no longer downgrades the owner's
    /// EXCLUSIVE copy to SHARED (directory goes clean as if it had).
    SkipOwnerDowngrade,
}

impl Mutation {
    /// Every variant, for exhaustive planted-mutation sweeps.
    pub const ALL: [Mutation; 3] = [
        Mutation::DropUpgradeInvalidation,
        Mutation::DropReplacementHint,
        Mutation::SkipOwnerDowngrade,
    ];
}

/// One resident line of one cache, as reported by
/// [`MemorySystem::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLineView {
    /// The line address.
    pub line: LineAddr,
    /// Its coherence state.
    pub state: LineState,
    /// Cycle at which its outstanding fill completes (reads before
    /// this merge-stall).
    pub pending_until: u64,
}

/// One directory entry, as reported by [`MemorySystem::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntryView {
    /// The line address.
    pub line: LineAddr,
    /// Home cluster (sticky after first touch).
    pub home: u32,
    /// Sharer bit vector over clusters.
    pub sharers: u64,
    /// Whether the single sharer holds the line EXCLUSIVE.
    pub dirty: bool,
}

/// A complete, deterministic view of the protocol state: every cache's
/// resident lines and every directory entry, sorted by line address.
/// This is the inspection surface the `cluster_check` model checker
/// canonicalizes reachable states over; it deliberately excludes the
/// statistics counters (monotonic, not protocol state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSnapshot {
    /// Per cache (cluster cache, or per-processor private cache in
    /// shared-memory-cluster mode): resident lines sorted by address.
    pub caches: Vec<Vec<CacheLineView>>,
    /// Directory entries sorted by line address.
    pub dir: Vec<DirEntryView>,
    /// Next round-robin home assignment (placement state).
    pub rr_next: u32,
}

/// Result of one memory access, consumed by the timing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Read found a resident, ready line. Costs the base (1-cycle) hit.
    ReadHit,
    /// Read missed; the processor stalls `stall` cycles (Table 1).
    ReadMiss {
        /// Stall cycles charged to load-stall time.
        stall: u64,
        /// Which Table 1 case applied.
        class: LatencyClass,
    },
    /// Read found the line pending from an earlier miss; the processor
    /// must wait until `ready_at` and retry (merge stall).
    MergeWait {
        /// Cycle at which the outstanding fill completes.
        ready_at: u64,
    },
    /// Shared-memory-cluster mode: the private cache missed but a
    /// cluster mate supplied the line over the snoopy bus.
    ReadBus {
        /// Bus-transfer stall cycles.
        stall: u64,
    },
    /// Write found an EXCLUSIVE line. No cost.
    WriteHit,
    /// Write missed; latency hidden, but the line is fetched EXCLUSIVE
    /// and a pending window opens.
    WriteMiss,
    /// Write found a SHARED line (UPGRADE): other copies invalidated
    /// instantly, no cost to the writer.
    Upgrade,
}

/// The clustered memory system: per-cluster caches plus the distributed
/// directory.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MachineConfig,
    /// One cache per cluster in shared-cache mode; one per *processor*
    /// in shared-memory-cluster mode.
    caches: Vec<ClusterCache>,
    dir: HashMap<LineAddr, DirEntry>,
    space: AddressSpace,
    rr_next: u32,
    /// Shared-memory-cluster mode (private caches + snoopy bus).
    private: bool,
    /// Intra-cluster cache-to-cache transfer latency.
    bus_cycles: u64,
    /// Planted protocol bug, if any (see [`Mutation`]).
    mutation: Option<Mutation>,
    /// Aggregate statistics.
    pub stats: MissStats,
}

impl MemorySystem {
    /// Builds the memory system for `cfg`, resolving placement policies
    /// against `space` (cloned; the allocator is not consulted again),
    /// or returns the typed reason the configuration is rejected.
    pub fn try_new(cfg: MachineConfig, space: &AddressSpace) -> Result<Self, ProtocolError> {
        let cfg = cfg.validate()?;
        if cfg.n_clusters() > 64 {
            return Err(ConfigError::TooManyClusters {
                clusters: cfg.n_clusters(),
                max: 64,
            }
            .into());
        }
        let kind = cfg.cluster_cache_kind();
        let (private, bus_cycles) = match cfg.cache {
            crate::config::CacheSpec::PrivatePerProc { bus_cycles, .. } => (true, bus_cycles),
            _ => (false, 0),
        };
        let n_caches = if private {
            cfg.n_procs
        } else {
            cfg.n_clusters()
        };
        Ok(MemorySystem {
            cfg,
            caches: (0..n_caches).map(|_| ClusterCache::new(kind)).collect(),
            dir: HashMap::new(),
            space: space.clone(),
            rr_next: 0,
            private,
            bus_cycles,
            mutation: None,
            stats: MissStats::default(),
        })
    }

    /// Plants (or clears) a deliberate protocol bug. Verification
    /// machinery only: the model checker's planted-mutation tests use
    /// this to prove the invariant oracle catches each bug class.
    pub fn set_mutation(&mut self, mutation: Option<Mutation>) {
        self.mutation = mutation;
    }

    /// Cache index used by processor `p`.
    #[inline]
    fn cache_of(&self, p: ProcId) -> usize {
        if self.private {
            usize_from(p)
        } else {
            usize_from(self.cfg.cluster_of(p))
        }
    }

    /// Cache indices belonging to cluster `c`.
    fn member_caches(&self, c: u32) -> std::ops::Range<usize> {
        if self.private {
            let start = usize_from(c) * usize_from(self.cfg.per_cluster);
            start..start + usize_from(self.cfg.per_cluster)
        } else {
            usize_from(c)..usize_from(c) + 1
        }
    }

    /// Whether any cache of cluster `c` holds `line`.
    fn cluster_holds(&self, c: u32, line: LineAddr) -> bool {
        self.member_caches(c)
            .any(|i| self.caches[i].peek(line).is_some())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Home cluster of `line`, assigning it on first touch. Errors
    /// when the line was never allocated — a malformed trace, which is
    /// user input, not a protocol invariant.
    fn home_of(&mut self, line: LineAddr) -> Result<u32, ProtocolError> {
        if let Some(e) = self.dir.get(&line) {
            return Ok(e.home);
        }
        let placement = self
            .space
            .placement_of(line_base(line))
            .ok_or(ProtocolError::UnallocatedAccess { line })?;
        let home = match placement {
            Placement::RoundRobin => {
                let h = self.rr_next % self.cfg.n_clusters();
                self.rr_next = self.rr_next.wrapping_add(1);
                h
            }
            Placement::Owner(p) => self.cfg.cluster_of(p),
        };
        self.dir.insert(
            line,
            DirEntry {
                home,
                sharers: 0,
                dirty: false,
            },
        );
        Ok(home)
    }

    /// Classifies a miss by cluster `c` to `line` per Table 1. Must be
    /// called after `home_of` so the entry exists.
    fn classify_miss(&self, c: u32, line: LineAddr) -> LatencyClass {
        let e = &self.dir[&line];
        let local = e.home == c;
        if e.dirty {
            let owner = e.owner();
            debug_assert_ne!(owner, c, "requester cannot miss on a line it owns dirty");
            if local {
                // Dirty in a remote cluster, home is ours: 100 cycles.
                LatencyClass::LocalDirtyRemote
            } else if owner == e.home {
                // The home itself holds the dirty copy and satisfies the
                // request directly: two hops, 100 cycles.
                LatencyClass::RemoteClean
            } else {
                // Dirty in a third cluster: three hops, 150 cycles.
                LatencyClass::RemoteDirtyThird
            }
        } else if local {
            LatencyClass::LocalClean
        } else {
            LatencyClass::RemoteClean
        }
    }

    /// Handles a capacity eviction: sends the replacement hint to the
    /// directory (clearing the sharer bit) and counts a writeback for
    /// dirty lines.
    fn on_evicted(&mut self, c: u32, ev: EvictedLine<CachedLine>) {
        self.stats.evictions += 1;
        if ev.val.state == LineState::Exclusive {
            self.stats.writebacks += 1;
        }
        if self.mutation == Some(Mutation::DropReplacementHint) {
            // Planted bug: the hint never reaches the directory, which
            // keeps a sharer bit for the departed line.
            return;
        }
        // In shared-memory-cluster mode another member may still hold a
        // copy; the hint only clears the cluster's directory bit once
        // the last copy leaves.
        let still_held = self.private && self.cluster_holds(c, ev.line);
        let e = self
            .dir
            .get_mut(&ev.line)
            // cluster_check: allow(no-panic) — internal invariant:
            // every resident line has a directory entry (checked by
            // check_invariants and the model checker).
            .expect("evicted line must have a directory entry");
        debug_assert!(e.sharers & (1 << c) != 0, "directory out of sync");
        if ev.val.state == LineState::Exclusive {
            // The (sole) dirty copy left the machine: written back.
            e.dirty = false;
        }
        if !still_held {
            e.sharers &= !(1 << c);
        }
    }

    /// Invalidates every cached copy of `line` outside cluster `keep`.
    fn invalidate_others(&mut self, line: LineAddr, keep: u32) {
        let e = match self.dir.get_mut(&line) {
            Some(e) => e,
            None => return,
        };
        let mut others = e.sharers & !(1u64 << keep);
        e.sharers &= 1u64 << keep;
        e.dirty = false;
        while others != 0 {
            let b = others.trailing_zeros();
            others &= others - 1;
            let mut removed_any = false;
            for i in self.member_caches(b) {
                if self.caches[i].remove(line).is_some() {
                    removed_any = true;
                    self.stats.invalidations += 1;
                }
            }
            debug_assert!(removed_any, "directory said cluster {b} had a copy");
        }
    }

    /// Shared-memory-cluster mode: invalidates copies held by `p`'s
    /// cluster mates (the snoopy-bus invalidation that "keeps ownership
    /// within the cluster", §2).
    fn invalidate_mates(&mut self, p: ProcId, line: LineAddr) {
        let own = self.cache_of(p);
        for i in self.member_caches(self.cfg.cluster_of(p)) {
            if i != own && self.caches[i].remove(line).is_some() {
                self.stats.bus_invalidations += 1;
            }
        }
    }

    /// Shared-memory-cluster mode: looks for a cluster mate able to
    /// supply `line` at time `now`.
    fn snoop_mates(&mut self, p: ProcId, line: LineAddr, now: u64) -> Snoop {
        let own = self.cache_of(p);
        let members: Vec<usize> = self.member_caches(self.cfg.cluster_of(p)).collect();
        for i in members {
            if i == own {
                continue;
            }
            let Some(mcl) = self.caches[i].peek_mut(line) else {
                continue;
            };
            if mcl.pending_until > now {
                // The mate's own fill is still in flight: merge on it.
                return Snoop::Pending(mcl.pending_until);
            }
            if mcl.state == LineState::Exclusive {
                // Supplying a dirty line writes it back: both copies
                // become SHARED and the directory goes clean.
                mcl.state = LineState::Shared;
                self.dir
                    .get_mut(&line)
                    // cluster_check: allow(no-panic) — internal
                    // invariant: a cached line always has an entry.
                    .expect("cached line has entry")
                    .dirty = false;
            }
            return Snoop::Supplied;
        }
        Snoop::Absent
    }

    /// Processor `p` issues a load of byte address `addr` at cycle
    /// `now`. Errors on an access to unallocated memory (a malformed
    /// trace, which is user input, not a protocol invariant).
    pub fn try_read(&mut self, p: ProcId, addr: u64, now: u64) -> Result<Outcome, ProtocolError> {
        let line = line_of(addr);
        let c = self.cfg.cluster_of(p);
        let ci = self.cache_of(p);
        if let Some(cl) = self.caches[ci].get_mut(line) {
            if cl.pending_until > now {
                self.stats.merge_stalls += 1;
                return Ok(Outcome::MergeWait {
                    ready_at: cl.pending_until,
                });
            }
            self.stats.read_hits += 1;
            return Ok(Outcome::ReadHit);
        }
        // Shared-memory-cluster mode: snoop the cluster bus before
        // going off-cluster.
        if self.private {
            match self.snoop_mates(p, line, now) {
                Snoop::Pending(ready_at) => {
                    self.stats.merge_stalls += 1;
                    return Ok(Outcome::MergeWait { ready_at });
                }
                Snoop::Supplied => {
                    let stall = self.bus_cycles;
                    if let Some(ev) = self.caches[ci].insert(
                        line,
                        CachedLine {
                            state: LineState::Shared,
                            pending_until: now + stall,
                        },
                    ) {
                        self.on_evicted(c, ev);
                    }
                    // The cluster's directory bit is already set.
                    self.stats.bus_transfers += 1;
                    return Ok(Outcome::ReadBus { stall });
                }
                Snoop::Absent => {}
            }
        }
        // Miss: resolve home, classify, downgrade any dirty owner, fill
        // SHARED with a pending window.
        self.home_of(line)?;
        let class = self.classify_miss(c, line);
        let stall = self.cfg.lat.of(class);
        {
            // cluster_check: allow(no-panic) — home_of above inserted
            // the entry (internal invariant).
            let e = self.dir.get_mut(&line).expect("home_of inserted entry");
            let dirty_owner = e.dirty.then(|| e.owner());
            e.dirty = false;
            e.sharers |= 1 << c;
            let downgrade = self.mutation != Some(Mutation::SkipOwnerDowngrade);
            if let Some(owner) = dirty_owner.filter(|_| downgrade) {
                // The owning cluster keeps a SHARED copy (cache-to-cache
                // transfer + sharing writeback to home). Find the member
                // cache actually holding it.
                let holder = self
                    .member_caches(owner)
                    .find(|&i| self.caches[i].peek(line).is_some())
                    // cluster_check: allow(no-panic) — internal
                    // invariant: the directory's dirty owner holds the
                    // line (checked by check_invariants).
                    .expect("dirty owner cluster must hold the line");
                // cluster_check: allow(no-panic) — found just above.
                let oc = self.caches[holder].peek_mut(line).expect("just found it");
                oc.state = LineState::Shared;
            }
        }
        if let Some(ev) = self.caches[ci].insert(
            line,
            CachedLine {
                state: LineState::Shared,
                pending_until: now + stall,
            },
        ) {
            self.on_evicted(c, ev);
        }
        self.stats.read_misses += 1;
        self.stats.by_latency[class.idx()] += 1;
        if class == LatencyClass::LocalClean {
            self.stats.local_satisfied += 1;
        }
        Ok(Outcome::ReadMiss { stall, class })
    }

    /// Processor `p` issues a store to byte address `addr` at cycle
    /// `now`. Errors on an access to unallocated memory (a malformed
    /// trace, which is user input, not a protocol invariant).
    pub fn try_write(&mut self, p: ProcId, addr: u64, now: u64) -> Result<Outcome, ProtocolError> {
        let line = line_of(addr);
        let c = self.cfg.cluster_of(p);
        let ci = self.cache_of(p);
        if let Some(cl) = self.caches[ci].get_mut(line) {
            match cl.state {
                LineState::Exclusive => {
                    self.stats.write_hits += 1;
                    return Ok(Outcome::WriteHit);
                }
                LineState::Shared => {
                    // UPGRADE: invalidate other copies instantly; the
                    // pending window (if any) is preserved — the data is
                    // still in flight for cluster-mates' reads.
                    // cluster_check: allow(no-panic) — get_mut above
                    // proved residency (internal invariant).
                    let cl = self.caches[ci].peek_mut(line).expect("just found it");
                    cl.state = LineState::Exclusive;
                    if self.mutation != Some(Mutation::DropUpgradeInvalidation) {
                        self.invalidate_others(line, c);
                        if self.private {
                            self.invalidate_mates(p, line);
                        }
                    }
                    // cluster_check: allow(no-panic) — internal
                    // invariant: a resident line has an entry.
                    let e = self.dir.get_mut(&line).expect("resident line has entry");
                    e.sharers = 1 << c;
                    e.dirty = true;
                    self.stats.upgrade_misses += 1;
                    return Ok(Outcome::Upgrade);
                }
            }
        }
        // Shared-memory-cluster mode: a mate may hold the line, in
        // which case the write acquires ownership over the bus —
        // "the invalidations are sent to processors that have copies of
        // the data item, but ownership is kept within the cluster" (§2)
        // — with no network traffic.
        if self.private && self.cluster_holds(c, line) {
            self.invalidate_others(line, c);
            self.invalidate_mates(p, line);
            {
                // cluster_check: allow(no-panic) — cluster_holds above
                // proved a resident copy (internal invariant).
                let e = self.dir.get_mut(&line).expect("resident line has entry");
                e.sharers = 1 << c;
                e.dirty = true;
            }
            if let Some(ev) = self.caches[ci].insert(
                line,
                CachedLine {
                    state: LineState::Exclusive,
                    pending_until: now + self.bus_cycles,
                },
            ) {
                self.on_evicted(c, ev);
            }
            self.stats.upgrade_misses += 1;
            return Ok(Outcome::Upgrade);
        }
        // WRITE miss: latency hidden, but classify for statistics and
        // to size the pending window.
        self.home_of(line)?;
        let class = self.classify_miss(c, line);
        let stall = self.cfg.lat.of(class);
        self.invalidate_others(line, c);
        {
            // cluster_check: allow(no-panic) — home_of above inserted
            // the entry (internal invariant).
            let e = self.dir.get_mut(&line).expect("home_of inserted entry");
            e.sharers = 1 << c;
            e.dirty = true;
        }
        if let Some(ev) = self.caches[ci].insert(
            line,
            CachedLine {
                state: LineState::Exclusive,
                pending_until: now + stall,
            },
        ) {
            self.on_evicted(c, ev);
        }
        self.stats.write_misses += 1;
        self.stats.by_latency[class.idx()] += 1;
        Ok(Outcome::WriteMiss)
    }

    /// Lines resident in cache `i` — a cluster's cache in shared-cache
    /// mode, a processor's private cache in shared-memory-cluster mode
    /// (for tests and working-set inspection).
    pub fn resident_lines(&self, i: u32) -> usize {
        self.caches[usize_from(i)].len()
    }

    /// A complete, canonical view of the protocol state (caches,
    /// directory, placement counter), sorted so that two equal machine
    /// states always produce equal snapshots regardless of internal
    /// iteration order. The `cluster_check` model checker keys its
    /// visited-state set on this.
    pub fn snapshot(&self) -> ProtocolSnapshot {
        let caches = self
            .caches
            .iter()
            .map(|cache| {
                let mut lines: Vec<CacheLineView> = cache
                    .iter_lines()
                    .map(|(line, cl)| CacheLineView {
                        line,
                        state: cl.state,
                        pending_until: cl.pending_until,
                    })
                    .collect();
                lines.sort_by_key(|v| v.line);
                lines
            })
            .collect();
        let mut dir: Vec<DirEntryView> = self
            .dir
            .iter()
            .map(|(&line, e)| DirEntryView {
                line,
                home: e.home,
                sharers: e.sharers,
                dirty: e.dirty,
            })
            .collect();
        dir.sort_by_key(|v| v.line);
        ProtocolSnapshot {
            caches,
            dir,
            rr_next: self.rr_next,
        }
    }

    /// Checks the protocol's global invariants; returns the first
    /// violation found. Used heavily by property tests.
    ///
    /// * a dirty line has exactly one sharer, holding it EXCLUSIVE;
    /// * a clean line's sharers all hold it SHARED;
    /// * every directory sharer bit corresponds to a resident copy and
    ///   vice versa;
    /// * at most one EXCLUSIVE copy exists machine-wide.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&line, e) in &self.dir {
            if e.dirty && e.sharers.count_ones() != 1 {
                return Err(format!(
                    "line {line:#x}: dirty with {} sharers",
                    e.sharers.count_ones()
                ));
            }
            for c in 0..self.cfg.n_clusters() {
                let bit = e.sharers & (1 << c) != 0;
                let copies: Vec<&CachedLine> = self
                    .member_caches(c)
                    .filter_map(|i| self.caches[i].peek(line))
                    .collect();
                if bit && copies.is_empty() {
                    return Err(format!("line {line:#x}: dir says cluster {c} has it"));
                }
                if !bit && !copies.is_empty() {
                    return Err(format!(
                        "line {line:#x}: cluster {c} caches it but dir bit clear"
                    ));
                }
                if bit {
                    if e.dirty {
                        // The dirty cluster holds exactly one copy,
                        // EXCLUSIVE (a mate read would have downgraded
                        // and cleaned it).
                        if copies.len() != 1 || copies[0].state != LineState::Exclusive {
                            return Err(format!(
                                "line {line:#x} cluster {c}: dirty but {} copies, first {:?}",
                                copies.len(),
                                copies[0].state
                            ));
                        }
                    } else if copies.iter().any(|cl| cl.state != LineState::Shared) {
                        return Err(format!(
                            "line {line:#x} cluster {c}: clean but holds an EXCLUSIVE copy"
                        ));
                    }
                }
            }
        }
        // No cached line may lack a directory entry.
        for cache in &self.caches {
            for (line, _) in cache.iter_lines() {
                if !self.dir.contains_key(&line) {
                    return Err(format!("line {line:#x} cached without directory entry"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheSpec;
    use crate::latency::LatencyTable;
    use simcore::addr::LINE_BYTES;

    fn machine(per_cluster: u32, cache: CacheSpec) -> (MemorySystem, u64, u64) {
        // Two regions: `a` homed round-robin (first touch -> cluster 0),
        // `b` owned by the last processor.
        let mut space = AddressSpace::new();
        let a = space.alloc_shared(LINE_BYTES * 16);
        let b = space.alloc_owned(LINE_BYTES * 16, 63);
        let cfg = MachineConfig::paper(per_cluster, cache);
        (MemorySystem::try_new(cfg, &space).unwrap(), a, b)
    }

    #[test]
    fn try_new_rejects_bad_shapes_with_typed_errors() {
        let space = AddressSpace::new();
        let cfg = MachineConfig {
            n_procs: 64,
            per_cluster: 3,
            cache: CacheSpec::Infinite,
            lat: LatencyTable::paper(),
        };
        assert_eq!(
            MemorySystem::try_new(cfg, &space).err(),
            Some(ProtocolError::Config(ConfigError::ClusterDoesNotDivide {
                per_cluster: 3,
                n_procs: 64
            }))
        );
        let too_many = MachineConfig {
            n_procs: 128,
            per_cluster: 1,
            ..cfg
        };
        assert_eq!(
            MemorySystem::try_new(too_many, &space).err(),
            Some(ProtocolError::Config(ConfigError::TooManyClusters {
                clusters: 128,
                max: 64
            }))
        );
    }

    #[test]
    fn try_read_rejects_unallocated_access() {
        let (mut m, _, _) = machine(1, CacheSpec::Infinite);
        let bogus = 0xdead_0000u64;
        let err = m.try_read(0, bogus, 0).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::UnallocatedAccess {
                line: line_of(bogus)
            }
        );
        assert!(err.to_string().contains("unallocated line"));
        assert!(m.try_write(0, bogus, 0).is_err());
        // The typed path leaves no half-built directory state behind.
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn cold_read_local_home_costs_30() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        // First touch: round-robin gives home cluster 0. Processor 0 is
        // in cluster 0, so the miss is local-clean.
        match m.try_read(0, a, 0).unwrap() {
            Outcome::ReadMiss { stall, class } => {
                assert_eq!(stall, 30);
                assert_eq!(class, LatencyClass::LocalClean);
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(m.try_read(0, a, 100).unwrap(), Outcome::ReadHit);
        m.check_invariants().unwrap();
    }

    #[test]
    fn round_robin_homes_cycle() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        // Touch 3 distinct lines from processor 5; homes go 0, 1, 2.
        for i in 0..3u64 {
            match m.try_read(5, a + i * LINE_BYTES, 0).unwrap() {
                Outcome::ReadMiss { class, .. } => {
                    // Only the line homed at cluster 5 would be local;
                    // none of 0,1,2 are.
                    assert_eq!(class, LatencyClass::RemoteClean);
                }
                o => panic!("unexpected {o:?}"),
            }
        }
        // Fourth line from processor 3: home is cluster 3 => local.
        match m.try_read(3, a + 3 * LINE_BYTES, 0).unwrap() {
            Outcome::ReadMiss { class, .. } => assert_eq!(class, LatencyClass::LocalClean),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn owner_placement_homes_at_owner_cluster() {
        let (mut m, _, b) = machine(8, CacheSpec::Infinite);
        // Region `b` is owned by processor 63 => cluster 7.
        match m.try_read(56, b, 0).unwrap() {
            // Processor 56 is in cluster 7 too: local home.
            Outcome::ReadMiss { stall, .. } => assert_eq!(stall, 30),
            o => panic!("unexpected {o:?}"),
        }
        match m.try_read(0, b + LINE_BYTES, 0).unwrap() {
            Outcome::ReadMiss { stall, .. } => assert_eq!(stall, 100),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn merge_on_pending_line_then_hit() {
        let (mut m, a, _) = machine(2, CacheSpec::Infinite);
        // Processor 0 misses at t=0 (remote home? first touch -> home 0,
        // proc 0 is cluster 0 => local, 30 cycles, ready at 30).
        assert!(matches!(
            m.try_read(0, a, 0).unwrap(),
            Outcome::ReadMiss { stall: 30, .. }
        ));
        // Cluster-mate processor 1 reads at t=10: merge until 30.
        match m.try_read(1, a, 10).unwrap() {
            Outcome::MergeWait { ready_at } => assert_eq!(ready_at, 30),
            o => panic!("unexpected {o:?}"),
        }
        // Retry at 30: hit.
        assert_eq!(m.try_read(1, a, 30).unwrap(), Outcome::ReadHit);
        assert_eq!(m.stats.merge_stalls, 1);
        assert_eq!(m.stats.read_hits, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_opens_pending_window_for_merges() {
        let (mut m, a, _) = machine(2, CacheSpec::Infinite);
        assert_eq!(m.try_write(0, a, 0).unwrap(), Outcome::WriteMiss);
        match m.try_read(1, a, 5).unwrap() {
            Outcome::MergeWait { ready_at } => assert_eq!(ready_at, 30),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(m.try_read(1, a, 30).unwrap(), Outcome::ReadHit);
    }

    #[test]
    fn upgrade_invalidates_other_clusters() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        // Clusters 0 and 1 both read the line.
        let _ = m.try_read(0, a, 0).unwrap();
        let _ = m.try_read(1, a, 100).unwrap();
        m.check_invariants().unwrap();
        // Cluster 0 writes: UPGRADE, cluster 1 invalidated.
        assert_eq!(m.try_write(0, a, 200).unwrap(), Outcome::Upgrade);
        assert_eq!(m.stats.invalidations, 1);
        m.check_invariants().unwrap();
        // Cluster 1 re-reads: miss, satisfied three-hop? Home is cluster
        // 0 (first touch rr), dirty at cluster 0 == home => remote clean
        // (satisfied by home), 100 cycles.
        match m.try_read(1, a, 300).unwrap() {
            Outcome::ReadMiss { stall, class } => {
                assert_eq!(class, LatencyClass::RemoteClean);
                assert_eq!(stall, 100);
            }
            o => panic!("unexpected {o:?}"),
        }
        // The dirty copy was downgraded, not invalidated.
        assert_eq!(m.try_read(0, a, 400).unwrap(), Outcome::ReadHit);
        m.check_invariants().unwrap();
    }

    #[test]
    fn three_hop_miss_costs_150() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        // Line homed at cluster 0 (first touch). Cluster 2 writes it
        // (dirty at 2). Cluster 5 reads: remote home (0), dirty third
        // party (2) => 150.
        let _ = m.try_write(2, a, 0).unwrap();
        match m.try_read(5, a, 100).unwrap() {
            Outcome::ReadMiss { stall, class } => {
                assert_eq!(class, LatencyClass::RemoteDirtyThird);
                assert_eq!(stall, 150);
            }
            o => panic!("unexpected {o:?}"),
        }
        m.check_invariants().unwrap();
    }

    #[test]
    fn local_home_dirty_remote_costs_100() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        let _ = m.try_write(2, a, 0).unwrap(); // home 0, dirty at 2
        match m.try_read(0, a, 50).unwrap() {
            Outcome::ReadMiss { stall, class } => {
                assert_eq!(class, LatencyClass::LocalDirtyRemote);
                assert_eq!(stall, 100);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn write_hit_on_exclusive() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        let _ = m.try_write(0, a, 0).unwrap();
        assert_eq!(m.try_write(0, a, 10).unwrap(), Outcome::WriteHit);
        assert_eq!(m.stats.write_hits, 1);
        assert_eq!(m.stats.write_misses, 1);
    }

    #[test]
    fn eviction_sends_replacement_hint() {
        // 1 processor per cluster, cache of exactly 1 line.
        let mut space = AddressSpace::new();
        let a = space.alloc_shared(LINE_BYTES * 4);
        let cfg = MachineConfig {
            n_procs: 4,
            per_cluster: 1,
            cache: CacheSpec::PerProcBytes(LINE_BYTES),
            lat: LatencyTable::paper(),
        };
        let mut m = MemorySystem::try_new(cfg, &space).unwrap();
        let _ = m.try_read(0, a, 0).unwrap();
        let _ = m.try_read(0, a + LINE_BYTES, 100).unwrap(); // evicts line 0
        assert_eq!(m.stats.evictions, 1);
        m.check_invariants().unwrap();
        // Re-read of line 0 must miss again (capacity).
        assert!(matches!(
            m.try_read(0, a, 200).unwrap(),
            Outcome::ReadMiss { .. }
        ));
    }

    #[test]
    fn dirty_eviction_counts_writeback_and_cleans_dir() {
        let mut space = AddressSpace::new();
        let a = space.alloc_shared(LINE_BYTES * 4);
        let cfg = MachineConfig {
            n_procs: 2,
            per_cluster: 1,
            cache: CacheSpec::PerProcBytes(LINE_BYTES),
            lat: LatencyTable::paper(),
        };
        let mut m = MemorySystem::try_new(cfg, &space).unwrap();
        let _ = m.try_write(0, a, 0).unwrap();
        let _ = m.try_read(0, a + LINE_BYTES, 100).unwrap(); // evicts dirty line
        assert_eq!(m.stats.writebacks, 1);
        m.check_invariants().unwrap();
        // Other cluster now reads the line: home has it clean => no
        // three-hop penalty.
        match m.try_read(1, a, 200).unwrap() {
            Outcome::ReadMiss { class, .. } => {
                assert_ne!(class, LatencyClass::RemoteDirtyThird);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn clustering_turns_remote_misses_into_hits() {
        // The core clustering effect: two processors touching the same
        // line. Unclustered -> two misses; clustered -> one miss + hit.
        let (mut m1, a, _) = machine(1, CacheSpec::Infinite);
        let _ = m1.try_read(0, a, 0).unwrap();
        assert!(matches!(
            m1.try_read(1, a, 1000).unwrap(),
            Outcome::ReadMiss { .. }
        ));

        let (mut m2, a2, _) = machine(2, CacheSpec::Infinite);
        let _ = m2.try_read(0, a2, 0).unwrap();
        assert_eq!(m2.try_read(1, a2, 1000).unwrap(), Outcome::ReadHit);
    }

    #[test]
    fn invalidation_kills_pending_line() {
        let (mut m, a, _) = machine(2, CacheSpec::Infinite);
        // Cluster 0 (procs 0,1) misses at t=0, pending until 30.
        let _ = m.try_read(0, a, 0).unwrap();
        // Cluster 1 (procs 2,3) writes at t=10: invalidates the pending
        // line in cluster 0.
        let _ = m.try_write(2, a, 10).unwrap();
        assert_eq!(m.stats.invalidations, 1);
        // Proc 1 reads at t=20: the line is gone; fresh miss, not merge.
        assert!(matches!(
            m.try_read(1, a, 20).unwrap(),
            Outcome::ReadMiss { .. }
        ));
        m.check_invariants().unwrap();
    }

    fn private_machine(per_cluster: u32, bytes: u64) -> (MemorySystem, u64) {
        let mut space = AddressSpace::new();
        let a = space.alloc_shared(LINE_BYTES * 64);
        let cfg = MachineConfig {
            n_procs: 8,
            per_cluster,
            cache: CacheSpec::PrivatePerProc {
                bytes,
                bus_cycles: 15,
            },
            lat: LatencyTable::paper(),
        };
        (MemorySystem::try_new(cfg, &space).unwrap(), a)
    }

    #[test]
    fn private_mode_mate_supplies_over_bus() {
        let (mut m, a) = private_machine(4, 1 << 20);
        // Proc 0 fetches the line; cluster mate proc 1 then reads it:
        // supplied over the bus at bus latency, not a network miss.
        assert!(matches!(
            m.try_read(0, a, 0).unwrap(),
            Outcome::ReadMiss { .. }
        ));
        match m.try_read(1, a, 1_000).unwrap() {
            Outcome::ReadBus { stall } => assert_eq!(stall, 15),
            o => panic!("expected bus transfer, got {o:?}"),
        }
        assert_eq!(m.stats.bus_transfers, 1);
        m.check_invariants().unwrap();
        // A processor in another cluster still pays the network.
        assert!(matches!(
            m.try_read(4, a, 2_000).unwrap(),
            Outcome::ReadMiss { .. }
        ));
    }

    #[test]
    fn private_mode_no_destructive_interference() {
        // Shared cache: proc 1's streaming evicts proc 0's line.
        // Private caches: it cannot ("destructive interference does not
        // exist, since the caches are separate", §2).
        let run = |private: bool| -> bool {
            let mut space = AddressSpace::new();
            let a = space.alloc_shared(LINE_BYTES * 64);
            let cache = if private {
                CacheSpec::PrivatePerProc {
                    bytes: 4 * LINE_BYTES,
                    bus_cycles: 15,
                }
            } else {
                CacheSpec::PerProcBytes(4 * LINE_BYTES)
            };
            let cfg = MachineConfig {
                n_procs: 2,
                per_cluster: 2,
                cache,
                lat: LatencyTable::paper(),
            };
            let mut m = MemorySystem::try_new(cfg, &space).unwrap();
            let _ = m.try_read(0, a, 0).unwrap(); // proc 0 caches line 0
            for i in 1..32u64 {
                let _ = m.try_read(1, a + i * LINE_BYTES, i * 200).unwrap(); // proc 1 streams
            }
            m.check_invariants().unwrap();
            // Is proc 0's line still a hit?
            matches!(m.try_read(0, a, 100_000).unwrap(), Outcome::ReadHit)
        };
        assert!(run(true), "private caches must be isolated");
        assert!(!run(false), "a shared cache must show interference");
    }

    #[test]
    fn private_mode_write_keeps_ownership_in_cluster() {
        let (mut m, a) = private_machine(4, 1 << 20);
        let _ = m.try_write(0, a, 0).unwrap(); // proc 0 owns dirty
                                               // Cluster mate proc 1 writes: bus invalidation, no network
                                               // invalidations, directory still shows the same cluster dirty.
        let out = m.try_write(1, a, 1_000).unwrap();
        assert_eq!(out, Outcome::Upgrade);
        assert_eq!(m.stats.bus_invalidations, 1);
        assert_eq!(m.stats.invalidations, 0);
        m.check_invariants().unwrap();
        // Proc 1 now write-hits.
        assert_eq!(m.try_write(1, a, 2_000).unwrap(), Outcome::WriteHit);
    }

    #[test]
    fn private_mode_read_of_mates_dirty_line_cleans_it() {
        let (mut m, a) = private_machine(2, 1 << 20);
        let _ = m.try_write(0, a, 0).unwrap();
        match m.try_read(1, a, 500).unwrap() {
            Outcome::ReadBus { .. } => {}
            o => panic!("expected bus supply of dirty line, got {o:?}"),
        }
        m.check_invariants().unwrap();
        // Another cluster's read now sees a clean line (two-hop, not
        // three-hop).
        match m.try_read(2, a, 1_000).unwrap() {
            Outcome::ReadMiss { class, .. } => {
                assert_ne!(class, LatencyClass::RemoteDirtyThird);
                assert_ne!(class, LatencyClass::LocalDirtyRemote);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn private_mode_eviction_hint_waits_for_last_copy() {
        // Two mates hold the line; one evicts it — the cluster bit must
        // survive until the second copy leaves.
        let mut space = AddressSpace::new();
        let a = space.alloc_shared(LINE_BYTES * 8);
        let cfg = MachineConfig {
            n_procs: 2,
            per_cluster: 2,
            cache: CacheSpec::PrivatePerProc {
                bytes: LINE_BYTES, // one line per private cache
                bus_cycles: 15,
            },
            lat: LatencyTable::paper(),
        };
        let mut m = MemorySystem::try_new(cfg, &space).unwrap();
        let _ = m.try_read(0, a, 0).unwrap();
        let _ = m.try_read(1, a, 200).unwrap(); // bus supply; both hold it
        let _ = m.try_read(0, a + LINE_BYTES, 400).unwrap(); // evicts proc 0's copy
        m.check_invariants().unwrap();
        // Proc 1 still hits; the cluster bit must still be set.
        assert_eq!(m.try_read(1, a, 600).unwrap(), Outcome::ReadHit);
    }

    #[test]
    fn stats_classify_read_write_upgrade() {
        let (mut m, a, _) = machine(1, CacheSpec::Infinite);
        let _ = m.try_read(0, a, 0).unwrap(); // READ miss
        let _ = m.try_write(0, a, 10).unwrap(); // UPGRADE (shared in own cache)
        let _ = m.try_write(1, a + LINE_BYTES, 20).unwrap(); // WRITE miss
        assert_eq!(m.stats.read_misses, 1);
        assert_eq!(m.stats.upgrade_misses, 1);
        assert_eq!(m.stats.write_misses, 1);
    }
}
