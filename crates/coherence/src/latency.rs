//! The miss-latency model of the paper's Table 1.
//!
//! | Memory operation | Cycles |
//! |---|---|
//! | Hit in cache (1 processor per cluster) | 1 |
//! | Hit in cache (2 processors per cluster) | 2 |
//! | Hit in cache (4 and 8 processors per cluster) | 3 |
//! | Miss to local home, satisfied by home (dir SHARED/NOT CACHED) | 30 |
//! | Miss to local home, satisfied by remote cluster (dir EXCL) | 100 |
//! | Miss to remote home, satisfied by home (dir NOT CACHED/SHARED) | 100 |
//! | Miss to remote home, satisfied by third-party cluster (dir EXCL) | 150 |
//!
//! Note that the event-driven simulation itself always uses single-cycle
//! cache hits ("This simulator produces application execution times by
//! simulating with single cycle cache hits", §3.1); the 2- and 3-cycle
//! shared-cache hit times enter only through the analytic cost model of
//! Section 6 (see `cluster_study::contention`).

use simcore::stats::LatencyClass;

/// Miss latencies in processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Miss to local home, satisfied by home cluster (dir SHARED or
    /// NOT CACHED).
    pub local_clean: u64,
    /// Miss to local home, satisfied by a remote dirty cluster.
    pub local_dirty_remote: u64,
    /// Miss to remote home, satisfied by the home (dir NOT CACHED,
    /// SHARED, or EXCL *at the home itself*).
    pub remote_clean: u64,
    /// Miss to remote home, satisfied by a dirty third-party cluster.
    pub remote_dirty_third: u64,
}

impl LatencyTable {
    /// The paper's Table 1 values.
    pub fn paper() -> Self {
        LatencyTable {
            local_clean: 30,
            local_dirty_remote: 100,
            remote_clean: 100,
            remote_dirty_third: 150,
        }
    }

    /// A uniform-latency table, useful for tests and ablations.
    pub fn uniform(miss: u64) -> Self {
        LatencyTable {
            local_clean: miss,
            local_dirty_remote: miss,
            remote_clean: miss,
            remote_dirty_third: miss,
        }
    }

    /// Latency of a miss in the given class.
    #[inline]
    pub fn of(&self, class: LatencyClass) -> u64 {
        match class {
            LatencyClass::LocalClean => self.local_clean,
            LatencyClass::LocalDirtyRemote => self.local_dirty_remote,
            LatencyClass::RemoteClean => self.remote_clean,
            LatencyClass::RemoteDirtyThird => self.remote_dirty_third,
        }
    }

    /// Target shared-cache hit time by cluster size (Table 1, first
    /// three rows). Used by the Section 6 analytic model, not by the
    /// cycle simulation.
    pub fn hit_cycles(procs_per_cluster: u32) -> u64 {
        match procs_per_cluster {
            // cluster_check: allow(no-panic) — zero-size clusters are
            // rejected by MachineConfig::validate before reaching here.
            0 => panic!("cluster size must be positive"),
            1 => 1,
            2 => 2,
            _ => 3,
        }
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let t = LatencyTable::paper();
        assert_eq!(t.of(LatencyClass::LocalClean), 30);
        assert_eq!(t.of(LatencyClass::LocalDirtyRemote), 100);
        assert_eq!(t.of(LatencyClass::RemoteClean), 100);
        assert_eq!(t.of(LatencyClass::RemoteDirtyThird), 150);
    }

    #[test]
    fn hit_cycles_match_table_1() {
        assert_eq!(LatencyTable::hit_cycles(1), 1);
        assert_eq!(LatencyTable::hit_cycles(2), 2);
        assert_eq!(LatencyTable::hit_cycles(4), 3);
        assert_eq!(LatencyTable::hit_cycles(8), 3);
    }

    #[test]
    fn three_hop_is_most_expensive() {
        let t = LatencyTable::paper();
        for c in LatencyClass::ALL {
            assert!(t.of(c) <= t.of(LatencyClass::RemoteDirtyThird));
            assert!(t.of(c) >= t.of(LatencyClass::LocalClean));
        }
    }

    #[test]
    fn uniform_table() {
        let t = LatencyTable::uniform(42);
        for c in LatencyClass::ALL {
            assert_eq!(t.of(c), 42);
        }
    }
}
