//! Regular-grid ocean simulation with a multigrid solver (SPLASH-2
//! Ocean, contiguous partitions).
//!
//! "Every processor is assigned a square subgrid of every grid, and
//! traverses its subgrid communicating with its neighbors at the
//! boundaries. ... The processors are assigned to adjacent subgrids in
//! the same row, thus doubling the size of the cluster doubles the
//! number of subgrids that are local to a cluster and halves the amount
//! of communication traffic to other clusters" (§4).
//!
//! The dominant border traffic is the left/right *column* exchange
//! (every element of a column border lives on a different cache line,
//! while a row border packs 8 elements per line), and row-major
//! processor numbering puts horizontally adjacent subgrids in the same
//! cluster — which is exactly why clustering helps Ocean.
//!
//! Paper configuration: 130×130 grids (128×128 interior), about 25 grid
//! data structures, and a 66×66 variant for Figure 3. The multigrid
//! solver is computed for real; tests check convergence.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::SharedArray;

use crate::util::proc_grid;
use crate::SplashApp;

/// Cycles charged per grid-point stencil update. Ocean's sweeps do
/// substantially more than a bare 5-point stencil per point (several
/// coefficient arrays, divisions, time-integration terms), so this is
/// calibrated to put the 1p communication fraction of the 130×130 run
/// in the paper's band (~10-15% load stall).
const CYCLES_PER_POINT: u64 = 44;

/// Number of full-resolution grid structures traversed per time step
/// (SPLASH-2 Ocean keeps ~25 grids; 15 of them are swept every step,
/// the rest belong to the two multigrid pyramids).
const FULL_GRIDS: usize = 15;

/// Stencil sweeps over full grids per time step (laplacians, jacobians,
/// time integration), before the two multigrid solves.
const SWEEPS_PER_STEP: &[(usize, usize)] = &[
    // (src grid index, dst grid index)
    (0, 2),
    (1, 3),
    (2, 4),
    (3, 5),
    (4, 6),
    (5, 7),
    (6, 8),
    (9, 10),
    (11, 12),
    (13, 14),
];

/// Ocean workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Ocean {
    /// Interior grid dimension (the paper's "130-by-130" includes the
    /// border: interior 128).
    pub n_interior: usize,
    /// Simulated time steps.
    pub steps: usize,
}

impl Ocean {
    /// The paper's Table 2 size: 130×130 grids.
    pub fn paper() -> Self {
        Ocean {
            n_interior: 128,
            steps: 3,
        }
    }

    /// The smaller 66×66 configuration of Figure 3.
    pub fn paper_small_grid() -> Self {
        Ocean {
            n_interior: 64,
            steps: 3,
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Ocean {
            n_interior: 32,
            steps: 1,
        }
    }
}

// ---------------------------------------------------------------------
// Real multigrid solver (numerics verified by tests).
// ---------------------------------------------------------------------

/// A square grid with a one-point border, stored row-major.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Interior dimension.
    pub n: usize,
    v: Vec<f64>,
}

impl Grid {
    /// Zero-initialized grid of interior size `n`.
    pub fn zeros(n: usize) -> Self {
        Grid {
            n,
            v: vec![0.0; (n + 2) * (n + 2)],
        }
    }

    /// Element accessor (border included: indices 0..=n+1).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.v[i * (self.n + 2) + j]
    }

    /// Element setter (border included: indices 0..=n+1).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, x: f64) {
        self.v[i * (self.n + 2) + j] = x;
    }

    /// Red-black Gauss-Seidel relaxation for -∇²u = f (unit spacing).
    pub fn relax_rb(&mut self, f: &Grid) {
        for color in 0..2 {
            for i in 1..=self.n {
                for j in 1..=self.n {
                    if (i + j) % 2 == color {
                        let s = self.at(i - 1, j)
                            + self.at(i + 1, j)
                            + self.at(i, j - 1)
                            + self.at(i, j + 1);
                        self.set(i, j, (s + f.at(i, j)) * 0.25);
                    }
                }
            }
        }
    }

    /// Max-norm residual of -∇²u = f.
    pub fn residual(&self, f: &Grid) -> f64 {
        let mut worst = 0.0f64;
        for i in 1..=self.n {
            for j in 1..=self.n {
                let lap = 4.0 * self.at(i, j)
                    - self.at(i - 1, j)
                    - self.at(i + 1, j)
                    - self.at(i, j - 1)
                    - self.at(i, j + 1);
                worst = worst.max((lap - f.at(i, j)).abs());
            }
        }
        worst
    }

    /// Vertex-centered full-weighting restriction to an n/2 grid,
    /// including the ×4 rescaling of the stencil right-hand side for
    /// the doubled grid spacing.
    pub fn restrict(&self) -> Grid {
        let nc = self.n / 2;
        let mut c = Grid::zeros(nc);
        for i in 1..=nc {
            for j in 1..=nc {
                let (fi, fj) = (2 * i, 2 * j);
                let s = 4.0 * self.at(fi, fj)
                    + 2.0
                        * (self.at(fi - 1, fj)
                            + self.at(fi + 1, fj)
                            + self.at(fi, fj - 1)
                            + self.at(fi, fj + 1))
                    + self.at(fi - 1, fj - 1)
                    + self.at(fi - 1, fj + 1)
                    + self.at(fi + 1, fj - 1)
                    + self.at(fi + 1, fj + 1);
                c.set(i, j, s * 0.25); // (1/16 weighting) × (4 rescale)
            }
        }
        c
    }

    /// Bilinear prolongation added into `self` from a coarse grid
    /// (coarse (i,j) sits at fine (2i,2j); the zero border supplies the
    /// Dirichlet boundary values).
    pub fn prolong_add(&mut self, c: &Grid) {
        let n = self.n;
        for fi in 1..=n {
            for fj in 1..=n {
                let (ci, cj) = (fi / 2, fj / 2);
                let x = match (fi % 2, fj % 2) {
                    (0, 0) => c.at(ci, cj),
                    (1, 0) => 0.5 * (c.at(ci, cj) + c.at(ci + 1, cj)),
                    (0, 1) => 0.5 * (c.at(ci, cj) + c.at(ci, cj + 1)),
                    _ => {
                        0.25 * (c.at(ci, cj)
                            + c.at(ci + 1, cj)
                            + c.at(ci, cj + 1)
                            + c.at(ci + 1, cj + 1))
                    }
                };
                let cur = self.at(fi, fj);
                self.set(fi, fj, cur + x);
            }
        }
    }

    fn residual_grid(&self, f: &Grid) -> Grid {
        let mut r = Grid::zeros(self.n);
        for i in 1..=self.n {
            for j in 1..=self.n {
                let lap = 4.0 * self.at(i, j)
                    - self.at(i - 1, j)
                    - self.at(i + 1, j)
                    - self.at(i, j - 1)
                    - self.at(i, j + 1);
                r.set(i, j, f.at(i, j) - lap);
            }
        }
        r
    }
}

/// One multigrid V-cycle (2 pre- and 2 post-relaxations per level) for
/// -∇²u = f. Recurses down to 4×4.
pub fn v_cycle(u: &mut Grid, f: &Grid) {
    u.relax_rb(f);
    u.relax_rb(f);
    if u.n > 4 && u.n.is_multiple_of(2) {
        let r = u.residual_grid(f);
        let rc = r.restrict();
        let mut ec = Grid::zeros(rc.n);
        v_cycle(&mut ec, &rc);
        u.prolong_add(&ec);
    }
    u.relax_rb(f);
    u.relax_rb(f);
}

// ---------------------------------------------------------------------
// Trace generation.
// ---------------------------------------------------------------------

/// One grid structure, partitioned into per-processor subgrids, each
/// allocated in its owner's local memory.
struct SubgridSet {
    per_proc: Vec<SharedArray>,
    /// Subgrid rows / cols per processor.
    sgr: usize,
    sgc: usize,
    /// Processor grid.
    pr: usize,
    pc: usize,
}

impl SubgridSet {
    fn alloc(t: &mut TraceBuilder, n: usize, pr: usize, pc: usize) -> SubgridSet {
        assert!(
            n.is_multiple_of(pr) && n.is_multiple_of(pc),
            "grid {n} not divisible by processor grid {pr}x{pc}"
        );
        let (sgr, sgc) = (n / pr, n / pc);
        let per_proc = (0..pr * pc)
            .map(|p| {
                let base = t.space_mut().alloc_owned((sgr * sgc * 8) as u64, p as u32);
                SharedArray {
                    base,
                    elem_bytes: 8,
                    len: (sgr * sgc) as u64,
                }
            })
            .collect();
        SubgridSet {
            per_proc,
            sgr,
            sgc,
            pr,
            pc,
        }
    }

    /// Address of local element (i, j) of processor p's subgrid.
    fn addr(&self, p: usize, i: usize, j: usize) -> u64 {
        self.per_proc[p].addr((i * self.sgc + j) as u64)
    }

    /// Emits one stencil sweep by processor `p`: read own subgrid and
    /// the four neighbor borders, compute, write the destination (dst
    /// may be the same set for in-place relaxation).
    fn emit_sweep(&self, t: &mut TraceBuilder, dst: &SubgridSet, p: usize) {
        let (r, c) = (p / self.pc, p % self.pc);
        let pid = p as u32;
        // Own subgrid: contiguous rows.
        t.read_span(pid, self.per_proc[p].base, (self.sgr * self.sgc * 8) as u64);
        // Top neighbor's bottom row / bottom neighbor's top row:
        // contiguous spans.
        if r > 0 {
            let q = (r - 1) * self.pc + c;
            t.read_span(pid, self.addr(q, self.sgr - 1, 0), (self.sgc * 8) as u64);
        }
        if r + 1 < self.pr {
            let q = (r + 1) * self.pc + c;
            t.read_span(pid, self.addr(q, 0, 0), (self.sgc * 8) as u64);
        }
        // Left neighbor's right column / right neighbor's left column:
        // one element per subgrid row, each on its own line.
        if c > 0 {
            let q = r * self.pc + (c - 1);
            for i in 0..self.sgr {
                t.read(pid, self.addr(q, i, self.sgc - 1));
            }
        }
        if c + 1 < self.pc {
            let q = r * self.pc + (c + 1);
            for i in 0..self.sgr {
                t.read(pid, self.addr(q, i, 0));
            }
        }
        t.compute(pid, (self.sgr * self.sgc) as u64 * CYCLES_PER_POINT);
        t.write_span(pid, dst.per_proc[p].base, (self.sgr * self.sgc * 8) as u64);
    }
}

impl SplashApp for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let n = self.n_interior;
        let (pr, pc) = proc_grid(n_procs);
        let mut t = TraceBuilder::new(n_procs);

        // Run the real solver once at this size (verified in tests).
        {
            let mut f = Grid::zeros(n.min(128));
            for i in 1..=f.n {
                for j in 1..=f.n {
                    let x = (i as f64) / (f.n as f64) - 0.5;
                    let y = (j as f64) / (f.n as f64) - 0.5;
                    f.set(i, j, (x * x + y * y).sin());
                }
            }
            let mut u = Grid::zeros(f.n);
            v_cycle(&mut u, &f);
        }

        // Full-resolution grids.
        let fulls: Vec<SubgridSet> = (0..FULL_GRIDS)
            .map(|_| SubgridSet::alloc(&mut t, n, pr, pc))
            .collect();

        // Two multigrid pyramids (solution u and rhs f per level), plus
        // a shadow of u per level: relaxations ping-pong u ↔ shadow so
        // a neighbor-border read never races the neighbor's update of
        // the same sweep (an in-place sweep would be a data race).
        let mut levels = Vec::new();
        let mut ln = n;
        while ln >= pr.max(pc) * 2 && ln >= 8 {
            levels.push((
                SubgridSet::alloc(&mut t, ln, pr, pc),
                SubgridSet::alloc(&mut t, ln, pr, pc),
                SubgridSet::alloc(&mut t, ln, pr, pc),
            ));
            ln /= 2;
        }

        for _step in 0..self.steps {
            // Stencil sweeps over the named full grids.
            for &(s, d) in SWEEPS_PER_STEP {
                for p in 0..n_procs {
                    fulls[s].emit_sweep(&mut t, &fulls[d], p);
                }
                t.barrier_all();
            }

            // Two multigrid V-cycles (the psi and vorticity solves).
            for _solve in 0..2 {
                // Down sweep: relax twice per level, then restrict.
                for li in 0..levels.len() {
                    let (u, f, s) = &levels[li];
                    for (src, dst) in [(u, s), (s, u)] {
                        for p in 0..n_procs {
                            src.emit_sweep(&mut t, dst, p);
                            // The rhs is read during relaxation.
                            t.read_span(p as u32, f.per_proc[p].base, (f.sgr * f.sgc * 8) as u64);
                        }
                        t.barrier_all();
                    }
                    if li + 1 < levels.len() {
                        // Restriction: read fine residual, write coarse rhs.
                        let (fine_u, coarse_f) = (&levels[li].0, &levels[li + 1].1);
                        for p in 0..n_procs {
                            let pid = p as u32;
                            t.read_span(
                                pid,
                                fine_u.per_proc[p].base,
                                (fine_u.sgr * fine_u.sgc * 8) as u64,
                            );
                            t.compute(pid, (coarse_f.sgr * coarse_f.sgc) as u64 * 24);
                            t.write_span(
                                pid,
                                coarse_f.per_proc[p].base,
                                (coarse_f.sgr * coarse_f.sgc * 8) as u64,
                            );
                        }
                        t.barrier_all();
                    }
                }
                // Up sweep: prolongate and relax twice per level.
                for li in (0..levels.len().saturating_sub(1)).rev() {
                    let (fine_u, coarse_u) = (&levels[li].0, &levels[li + 1].0);
                    for p in 0..n_procs {
                        let pid = p as u32;
                        t.read_span(
                            pid,
                            coarse_u.per_proc[p].base,
                            (coarse_u.sgr * coarse_u.sgc * 8) as u64,
                        );
                        t.compute(pid, (fine_u.sgr * fine_u.sgc) as u64 * 16);
                        t.write_span(
                            pid,
                            fine_u.per_proc[p].base,
                            (fine_u.sgr * fine_u.sgc * 8) as u64,
                        );
                    }
                    t.barrier_all();
                    let (u, f, s) = &levels[li];
                    for (src, dst) in [(u, s), (s, u)] {
                        for p in 0..n_procs {
                            src.emit_sweep(&mut t, dst, p);
                            t.read_span(p as u32, f.per_proc[p].base, (f.sgr * f.sgc * 8) as u64);
                        }
                        t.barrier_all();
                    }
                }
            }
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::Op;
    use simcore::space::Placement;

    #[test]
    fn multigrid_converges() {
        // Vertex-centered coarsening on a 2^k interior carries a
        // one-cell geometric skew, so the per-cycle contraction is a
        // modest ~0.6 rather than textbook ~0.1 — but convergence is
        // robust and geometric.
        let n = 32;
        let mut f = Grid::zeros(n);
        for i in 1..=n {
            for j in 1..=n {
                f.set(i, j, 1.0);
            }
        }
        let mut u = Grid::zeros(n);
        let r0 = u.residual(&f);
        let mut prev = f64::INFINITY;
        for c in 0..12 {
            v_cycle(&mut u, &f);
            let r = u.residual(&f);
            if c >= 2 {
                assert!(r < prev, "cycle {c}: residual grew {prev} -> {r}");
            }
            prev = r;
        }
        assert!(prev < r0 * 0.02, "12 cycles reduced {r0} only to {prev}");
    }

    #[test]
    fn v_cycle_beats_equal_relaxation_work() {
        // One V-cycle on 32² does the work of roughly a dozen fine
        // relaxations but must reduce smooth error far more.
        let n = 32;
        let mut f = Grid::zeros(n);
        for i in 1..=n {
            for j in 1..=n {
                f.set(i, j, 1.0);
            }
        }
        let mut mg = Grid::zeros(n);
        for _ in 0..4 {
            v_cycle(&mut mg, &f);
        }
        let mut rel = Grid::zeros(n);
        for _ in 0..48 {
            rel.relax_rb(&f);
        }
        assert!(
            mg.residual(&f) < rel.residual(&f),
            "multigrid ({}) should beat pure relaxation ({})",
            mg.residual(&f),
            rel.residual(&f)
        );
    }

    #[test]
    fn restriction_prolongation_shapes() {
        let g = Grid::zeros(16);
        let c = g.restrict();
        assert_eq!(c.n, 8);
        let mut f = Grid::zeros(16);
        f.prolong_add(&c); // no panic, stays zero
        assert_eq!(f.residual(&Grid::zeros(16)), 0.0);
    }

    #[test]
    fn relaxation_reduces_residual() {
        let n = 16;
        let mut f = Grid::zeros(n);
        for i in 1..=n {
            for j in 1..=n {
                f.set(i, j, ((i + j) % 3) as f64);
            }
        }
        let mut u = Grid::zeros(n);
        let r0 = u.residual(&f);
        for _ in 0..50 {
            u.relax_rb(&f);
        }
        assert!(u.residual(&f) < r0 * 0.5);
    }

    #[test]
    fn trace_valid() {
        let t = Ocean::small().generate(4);
        t.validate().unwrap();
        assert!(t.total_refs() > 0);
    }

    #[test]
    fn neighbors_in_same_row_share_cluster_traffic() {
        // Proc 1 (row 0, col 1 of a 2x2 proc grid) must read elements
        // owned by procs 0 (left), and 3 (below), but never by the
        // diagonal proc 2's... (2 is below-left: not a neighbor).
        let t = Ocean::small().generate(4);
        let mut owners = std::collections::HashSet::new();
        for op in &t.per_proc[1] {
            if let Op::Read(a) = op.unpack() {
                if let Some(Placement::Owner(o)) = t.space.placement_of(a) {
                    owners.insert(o);
                }
            }
        }
        assert!(owners.contains(&0), "reads left neighbor");
        assert!(owners.contains(&3), "reads lower neighbor");
        assert!(!owners.contains(&2), "diagonal proc is not a neighbor");
    }

    #[test]
    fn column_border_dominates_line_traffic() {
        // Count distinct remote lines read from the left neighbor vs
        // the lower neighbor in one sweep: the column border touches
        // ~sgr lines, the row border ~sgc/8.
        let mut t = TraceBuilder::new(4);
        let set = SubgridSet::alloc(&mut t, 32, 2, 2);
        set.emit_sweep(&mut t, &set, 3); // proc 3 has left (2) and top (1)
        let trace = t.finish();
        let mut left_lines = std::collections::HashSet::new();
        let mut top_lines = std::collections::HashSet::new();
        for op in &trace.per_proc[3] {
            if let Op::Read(a) = op.unpack() {
                match trace.space.placement_of(a) {
                    Some(Placement::Owner(2)) => {
                        left_lines.insert(simcore::addr::line_of(a));
                    }
                    Some(Placement::Owner(1)) => {
                        top_lines.insert(simcore::addr::line_of(a));
                    }
                    _ => {}
                }
            }
        }
        assert!(
            left_lines.len() > 2 * top_lines.len(),
            "column border ({}) should dwarf row border ({})",
            left_lines.len(),
            top_lines.len()
        );
    }
}
