//! 2-D Fast Multipole Method (SPLASH-2 FMM).
//!
//! "FMM is similar to Barnes in these respects [low, unstructured,
//! hierarchical communication], but has a smaller working set" (§3.2).
//! Paper size: 8192 particles.
//!
//! The implementation is the classic Greengard–Rokhlin 2-D Laplace FMM
//! on a uniform quadtree: P2M at the leaves, M2M up, M2L over the
//! standard interaction lists, L2L down, and direct P2P between
//! adjacent leaves. The expansions are computed for real; tests check
//! the evaluated potential against direct summation.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::Placement;

use crate::util::{chunk_range, morton2, rng_for};
use crate::SplashApp;

/// Multipole/local expansion order (SPLASH-2 FMM's default
/// high-accuracy configuration carries 40-term expansions).
const ORDER: usize = 40;
/// Cycles per M2L translation (O(ORDER²) complex madds).
const CYCLES_M2L: u64 = (ORDER * ORDER * 4) as u64;
/// Cycles per M2M / L2L translation.
const CYCLES_SHIFT: u64 = (ORDER * ORDER * 2) as u64;
/// Cycles per direct particle-particle interaction.
const CYCLES_P2P: u64 = 15;
/// Bytes per particle record (x, y, q, potential).
const PARTICLE_BYTES: u64 = 32;
/// Bytes per expansion: ORDER+1 complex coefficients, line-aligned
/// (41 × 16 bytes rounded up to 10 lines).
const EXPANSION_BYTES: u64 = 640;
/// Bytes per box record: multipole expansion followed by the local
/// expansion.
const BOX_BYTES: u64 = 2 * EXPANSION_BYTES;

#[derive(Debug, Clone, Copy, PartialEq)]
struct C(f64, f64);

impl C {
    const ZERO: C = C(0.0, 0.0);
    fn add(self, o: C) -> C {
        C(self.0 + o.0, self.1 + o.1)
    }
    fn sub(self, o: C) -> C {
        C(self.0 - o.0, self.1 - o.1)
    }
    fn mul(self, o: C) -> C {
        C(self.0 * o.0 - self.1 * o.1, self.0 * o.1 + self.1 * o.0)
    }
    fn scale(self, s: f64) -> C {
        C(self.0 * s, self.1 * s)
    }
    fn inv(self) -> C {
        let d = self.0 * self.0 + self.1 * self.1;
        C(self.0 / d, -self.1 / d)
    }
    fn ln(self) -> C {
        C(
            (self.0 * self.0 + self.1 * self.1).sqrt().ln(),
            self.1.atan2(self.0),
        )
    }
    fn powi(self, k: usize) -> C {
        let mut r = C(1.0, 0.0);
        for _ in 0..k {
            r = r.mul(self);
        }
        r
    }
}

fn binom(n: usize, k: usize) -> f64 {
    let mut r = 1.0f64;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// A charged 2-D particle.
#[derive(Debug, Clone, Copy)]
pub struct Particle {
    /// Position x.
    pub x: f64,
    /// Position y.
    pub y: f64,
    /// Charge.
    pub q: f64,
}

/// The uniform quadtree FMM solver.
pub struct FmmSolver {
    /// Tree depth: leaves are at level `depth`, 4^depth of them.
    pub depth: usize,
    particles: Vec<Particle>,
    /// Particle indices per leaf (leaf indexed by Morton code).
    pub leaf_particles: Vec<Vec<usize>>,
    /// Multipole coefficients per (level, box-in-level).
    multipole: Vec<Vec<[C; ORDER + 1]>>,
    local: Vec<Vec<[C; ORDER + 1]>>,
}

/// Box center at `level`, Morton index `m` (unit square domain).
fn box_center(level: usize, m: usize) -> C {
    let side = 1usize << level;
    let (x, y) = demorton(m);
    let w = 1.0 / side as f64;
    C((x as f64 + 0.5) * w, (y as f64 + 0.5) * w)
}

fn demorton(m: usize) -> (u32, u32) {
    let mut x = 0u32;
    let mut y = 0u32;
    for b in 0..16 {
        x |= (((m >> (2 * b)) & 1) as u32) << b;
        y |= (((m >> (2 * b + 1)) & 1) as u32) << b;
    }
    (x, y)
}

/// Whether two boxes (same level, Morton indices) are adjacent or
/// identical.
fn adjacent(a: usize, b: usize) -> bool {
    let (ax, ay) = demorton(a);
    let (bx, by) = demorton(b);
    ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1
}

/// Interaction list of box `m` at `level`: children of the parent's
/// neighbors that are not adjacent to `m`.
pub fn interaction_list(level: usize, m: usize) -> Vec<usize> {
    if level < 2 {
        return Vec::new();
    }
    let side = 1usize << level;
    let parent = m >> 2;
    let (px, py) = demorton(parent);
    let mut out = Vec::new();
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            let nx = px as i64 + dx;
            let ny = py as i64 + dy;
            if nx < 0 || ny < 0 || nx >= (side / 2) as i64 || ny >= (side / 2) as i64 {
                continue;
            }
            let nb = morton2(nx as u32, ny as u32) as usize;
            for c in 0..4 {
                let cand = (nb << 2) | c;
                if !adjacent(m, cand) {
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// Neighbor leaves (including self) of leaf `m` at `level`.
pub fn neighbors(level: usize, m: usize) -> Vec<usize> {
    let side = 1usize << level;
    let (x, y) = demorton(m);
    let mut out = Vec::new();
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            let nx = x as i64 + dx;
            let ny = y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= side as i64 || ny >= side as i64 {
                continue;
            }
            out.push(morton2(nx as u32, ny as u32) as usize);
        }
    }
    out
}

impl FmmSolver {
    /// Builds the solver: bins particles into leaves and runs the full
    /// FMM (upward, M2L, downward).
    pub fn run(particles: Vec<Particle>, depth: usize) -> FmmSolver {
        let n_leaves = 1usize << (2 * depth);
        let side = 1usize << depth;
        let mut leaf_particles = vec![Vec::new(); n_leaves];
        for (i, p) in particles.iter().enumerate() {
            let lx = ((p.x * side as f64) as usize).min(side - 1);
            let ly = ((p.y * side as f64) as usize).min(side - 1);
            leaf_particles[morton2(lx as u32, ly as u32) as usize].push(i);
        }
        let mut s = FmmSolver {
            depth,
            particles,
            leaf_particles,
            multipole: (0..=depth)
                .map(|l| vec![[C::ZERO; ORDER + 1]; 1 << (2 * l)])
                .collect(),
            local: (0..=depth)
                .map(|l| vec![[C::ZERO; ORDER + 1]; 1 << (2 * l)])
                .collect(),
        };
        s.upward();
        s.translate();
        s.downward();
        s
    }

    /// P2M at leaves, then M2M up.
    fn upward(&mut self) {
        let d = self.depth;
        for m in 0..self.multipole[d].len() {
            let z0 = box_center(d, m);
            let mut a = [C::ZERO; ORDER + 1];
            for &i in &self.leaf_particles[m] {
                let p = self.particles[i];
                let dz = C(p.x, p.y).sub(z0);
                a[0] = a[0].add(C(p.q, 0.0));
                let mut pw = C(1.0, 0.0);
                for (k, ak) in a.iter_mut().enumerate().skip(1) {
                    pw = pw.mul(dz);
                    *ak = ak.add(pw.scale(-p.q / k as f64));
                }
            }
            self.multipole[d][m] = a;
        }
        for l in (0..d).rev() {
            for m in 0..self.multipole[l].len() {
                let z0 = box_center(l, m);
                let mut b = [C::ZERO; ORDER + 1];
                for c in 0..4 {
                    let child = (m << 2) | c;
                    let a = self.multipole[l + 1][child];
                    let t = box_center(l + 1, child).sub(z0);
                    b[0] = b[0].add(a[0]);
                    for (lidx, bl) in b.iter_mut().enumerate().skip(1) {
                        let mut s = a[0].mul(t.powi(lidx)).scale(-1.0 / lidx as f64);
                        for k in 1..=lidx {
                            s = s.add(a[k].mul(t.powi(lidx - k)).scale(binom(lidx - 1, k - 1)));
                        }
                        *bl = bl.add(s);
                    }
                }
                self.multipole[l][m] = b;
            }
        }
    }

    /// M2L over the interaction lists at every level.
    fn translate(&mut self) {
        for l in 2..=self.depth {
            for m in 0..self.local[l].len() {
                let zl = box_center(l, m);
                let mut b = self.local[l][m];
                for src in interaction_list(l, m) {
                    let a = self.multipole[l][src];
                    let z0 = box_center(l, src);
                    let t = z0.sub(zl); // z0 - zl
                                        // b0 += a0·log(zl - z0) + Σ a_k (-1)^k / t^k
                    let mut s = a[0].mul(zl.sub(z0).ln());
                    let tinv = t.inv();
                    let mut tk = C(1.0, 0.0);
                    for (k, &ak) in a.iter().enumerate().skip(1) {
                        tk = tk.mul(tinv);
                        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                        s = s.add(ak.mul(tk).scale(sign));
                    }
                    b[0] = b[0].add(s);
                    // b_l += (1/t^l)[ -a0/l + Σ_k a_k (-1)^k C(l+k-1,k-1)/t^k ]
                    for (lidx, bl) in b.iter_mut().enumerate().skip(1) {
                        let mut s = a[0].scale(-1.0 / lidx as f64);
                        let mut tk = C(1.0, 0.0);
                        for (k, &ak) in a.iter().enumerate().skip(1) {
                            tk = tk.mul(tinv);
                            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                            s = s.add(ak.mul(tk).scale(sign * binom(lidx + k - 1, k - 1)));
                        }
                        *bl = bl.add(s.mul(tinv.powi(lidx)));
                    }
                }
                self.local[l][m] = b;
            }
        }
    }

    /// L2L down the tree.
    fn downward(&mut self) {
        for l in 2..self.depth {
            for m in 0..self.local[l].len() {
                let parent_b = self.local[l][m];
                let zp = box_center(l, m);
                for c in 0..4 {
                    let child = (m << 2) | c;
                    let zc = box_center(l + 1, child);
                    let t = zc.sub(zp);
                    // Horner-style shift: b'_l = Σ_{k>=l} b_k C(k,l) t^{k-l}
                    let mut shifted = [C::ZERO; ORDER + 1];
                    for (lidx, sh) in shifted.iter_mut().enumerate() {
                        let mut s = C::ZERO;
                        for (k, &bk) in parent_b.iter().enumerate().skip(lidx) {
                            s = s.add(bk.mul(t.powi(k - lidx)).scale(binom(k, lidx)));
                        }
                        *sh = s;
                    }
                    let cur = &mut self.local[l + 1][child];
                    for (dst, src) in cur.iter_mut().zip(shifted.iter()) {
                        *dst = dst.add(*src);
                    }
                }
            }
        }
    }

    /// Potential at particle `i`: local expansion + direct near field.
    pub fn potential(&self, i: usize) -> f64 {
        let p = self.particles[i];
        let z = C(p.x, p.y);
        let side = 1usize << self.depth;
        let lx = ((p.x * side as f64) as usize).min(side - 1);
        let ly = ((p.y * side as f64) as usize).min(side - 1);
        let leaf = morton2(lx as u32, ly as u32) as usize;
        // Far field from the local expansion.
        let zl = box_center(self.depth, leaf);
        let dz = z.sub(zl);
        let b = self.local[self.depth][leaf];
        let mut phi = C::ZERO;
        let mut pw = C(1.0, 0.0);
        for &bl in b.iter() {
            phi = phi.add(bl.mul(pw));
            pw = pw.mul(dz);
        }
        // Near field directly.
        let mut near = 0.0;
        for nb in neighbors(self.depth, leaf) {
            for &j in &self.leaf_particles[nb] {
                if j == i {
                    continue;
                }
                let q = self.particles[j];
                let d2 = (p.x - q.x).powi(2) + (p.y - q.y).powi(2);
                near += q.q * 0.5 * d2.ln();
            }
        }
        phi.0 + near
    }

    /// Direct O(n²) potential for verification.
    pub fn direct_potential(&self, i: usize) -> f64 {
        let p = self.particles[i];
        let mut phi = 0.0;
        for (j, q) in self.particles.iter().enumerate() {
            if j == i {
                continue;
            }
            let d2 = (p.x - q.x).powi(2) + (p.y - q.y).powi(2);
            phi += q.q * 0.5 * d2.ln();
        }
        phi
    }
}

/// Deterministic particle set in the unit square.
pub fn initial_particles(n: usize) -> Vec<Particle> {
    let mut rng = rng_for("fmm", n as u64);
    (0..n)
        .map(|_| Particle {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
            q: rng.gen_range(0.5..1.5),
        })
        .collect()
}

/// FMM workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fmm {
    /// Number of particles.
    pub n_particles: usize,
    /// Quadtree depth.
    pub depth: usize,
}

impl Fmm {
    /// The paper's Table 2 size: 8192 particles.
    pub fn paper() -> Self {
        Fmm {
            n_particles: 8192,
            depth: 5,
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Fmm {
            n_particles: 512,
            depth: 3,
        }
    }
}

impl SplashApp for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let solver = FmmSolver::run(initial_particles(self.n_particles), self.depth);
        let d = self.depth;
        let n_leaves = 1usize << (2 * d);

        let mut t = TraceBuilder::new(n_procs);

        // Leaves (and their particles) are chunked over processors in
        // Morton order — spatially contiguous ownership.
        let leaf_owner = |m: usize| crate::util::chunk_owner(n_leaves, n_procs, m) as u32;

        // Particle storage: per-leaf contiguous, so a processor's
        // particles are contiguous too; regions are owner-local.
        let mut particle_addr = vec![0u64; self.n_particles];
        for p in 0..n_procs {
            let leaves = chunk_range(n_leaves, n_procs, p);
            let count: usize = leaves.clone().map(|m| solver.leaf_particles[m].len()).sum();
            let base = t
                .space_mut()
                .alloc_owned((count.max(1) as u64) * PARTICLE_BYTES, p as u32);
            let mut off = 0u64;
            for m in leaves {
                for &i in &solver.leaf_particles[m] {
                    particle_addr[i] = base + off * PARTICLE_BYTES;
                    off += 1;
                }
            }
        }

        // Box storage per level: shared round-robin (the upper tree is
        // read by everyone).
        let levels: Vec<_> = (0..=d)
            .map(|l| {
                t.space_mut()
                    .alloc_array(1u64 << (2 * l), BOX_BYTES, Placement::RoundRobin)
            })
            .collect();
        let mult_addr = |l: usize, m: usize| levels[l].addr(m as u64);
        let local_addr = |l: usize, m: usize| levels[l].addr(m as u64) + EXPANSION_BYTES;

        // Phase 1: P2M at owned leaves.
        for m in 0..n_leaves {
            let pid = leaf_owner(m);
            for &i in &solver.leaf_particles[m] {
                t.read(pid, particle_addr[i]);
                t.compute(pid, ORDER as u64 * 4);
            }
            t.write_span(pid, mult_addr(d, m), EXPANSION_BYTES);
        }
        t.barrier_all();

        // Phase 2: M2M up, one barrier per level; the parent's owner is
        // the owner of its first child's subtree.
        for l in (0..d).rev() {
            let n_boxes = 1usize << (2 * l);
            for m in 0..n_boxes {
                let pid = leaf_owner((m << 2) << (2 * (d - l - 1)));
                for c in 0..4 {
                    t.read_span(pid, mult_addr(l + 1, (m << 2) | c), EXPANSION_BYTES);
                    t.compute(pid, CYCLES_SHIFT);
                }
                t.write_span(pid, mult_addr(l, m), EXPANSION_BYTES);
            }
            t.barrier_all();
        }

        // Phase 3: M2L — the dominant communication: each box's owner
        // reads the multipoles of its interaction list.
        for l in 2..=d {
            let n_boxes = 1usize << (2 * l);
            for m in 0..n_boxes {
                let pid = leaf_owner(m << (2 * (d - l)));
                for src in interaction_list(l, m) {
                    t.read_span(pid, mult_addr(l, src), EXPANSION_BYTES);
                    t.compute(pid, CYCLES_M2L);
                }
                t.write_span(pid, local_addr(l, m), EXPANSION_BYTES);
            }
            t.barrier_all();
        }

        // Phase 4: L2L down.
        for l in 2..d {
            let n_boxes = 1usize << (2 * l);
            for m in 0..n_boxes {
                let pid = leaf_owner(m << (2 * (d - l)));
                t.read_span(pid, local_addr(l, m), EXPANSION_BYTES);
                for c in 0..4 {
                    t.compute(pid, CYCLES_SHIFT);
                    t.write_span(pid, local_addr(l + 1, (m << 2) | c), EXPANSION_BYTES);
                }
            }
            t.barrier_all();
        }

        // Phase 5: leaf evaluation + P2P with adjacent leaves. The
        // gather half reads neighbor leaves' particles — foreign data
        // when the neighbor has a different owner — so a barrier
        // separates it from the write-back of the accumulated forces:
        // without it a P2P read of particle i races its owner's store.
        for m in 0..n_leaves {
            let pid = leaf_owner(m);
            t.read_span(pid, local_addr(d, m), EXPANSION_BYTES);
            for &i in &solver.leaf_particles[m] {
                t.read(pid, particle_addr[i]);
                t.compute(pid, ORDER as u64 * 4);
                for nb in neighbors(d, m) {
                    for &j in &solver.leaf_particles[nb] {
                        if j == i {
                            continue;
                        }
                        t.read(pid, particle_addr[j]);
                        t.compute(pid, CYCLES_P2P);
                    }
                }
            }
        }
        t.barrier_all();
        for m in 0..n_leaves {
            let pid = leaf_owner(m);
            for &i in &solver.leaf_particles[m] {
                t.write(pid, particle_addr[i]);
            }
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmm_potential_matches_direct() {
        let solver = FmmSolver::run(initial_particles(256), 3);
        let mut worst: f64 = 0.0;
        for i in 0..256 {
            let fmm = solver.potential(i);
            let direct = solver.direct_potential(i);
            worst = worst.max((fmm - direct).abs() / (1.0 + direct.abs()));
        }
        assert!(worst < 1e-3, "FMM relative error {worst}");
    }

    #[test]
    fn interaction_lists_are_well_separated() {
        for m in 0..64 {
            for src in interaction_list(3, m) {
                assert!(!adjacent(m, src), "box {src} adjacent to {m}");
            }
        }
    }

    #[test]
    fn interaction_list_sizes_bounded() {
        // At most 27 in 2-D for interior boxes.
        for m in 0..256 {
            let len = interaction_list(4, m).len();
            assert!(len <= 27, "box {m}: list of {len}");
        }
    }

    #[test]
    fn neighbors_include_self_and_are_adjacent() {
        for m in 0..64 {
            let nb = neighbors(3, m);
            assert!(nb.contains(&m));
            assert!(nb.len() <= 9);
            for x in nb {
                assert!(adjacent(m, x));
            }
        }
    }

    #[test]
    fn demorton_roundtrip() {
        for x in 0..16u32 {
            for y in 0..16u32 {
                assert_eq!(demorton(morton2(x, y) as usize), (x, y));
            }
        }
    }

    #[test]
    fn every_particle_lands_in_exactly_one_leaf() {
        let solver = FmmSolver::run(initial_particles(500), 3);
        let total: usize = solver.leaf_particles.iter().map(|v| v.len()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn trace_valid_and_deterministic() {
        let app = Fmm::small();
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
    }
}
