//! Shared helpers for the workload generators: deterministic RNG,
//! partitioning, and space-filling-curve ordering.

use simcore::rng::Rng64;

/// A deterministic RNG for workload inputs. Seeds are derived from the
/// app name so different apps decorrelate but every run of the same app
/// is identical. (In-tree xoshiro256**: the suite has no external
/// dependencies, so workload inputs are reproducible on any toolchain.)
pub fn rng_for(app: &str, salt: u64) -> Rng64 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for b in app.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    seed ^= salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Rng64::new(seed)
}

/// Splits `n` items into `parts` contiguous chunks as evenly as
/// possible; returns the half-open range of chunk `i`.
pub fn chunk_range(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

/// Inverse of [`chunk_range`]: which chunk owns item `idx`.
pub fn chunk_owner(n: usize, parts: usize, idx: usize) -> usize {
    debug_assert!(idx < n);
    let base = n / parts;
    let rem = n % parts;
    let big = rem * (base + 1);
    if idx < big {
        idx / (base + 1)
    } else {
        rem + (idx - big) / base
    }
}

/// The processor grid used by grid-partitioned apps: the most square
/// `rows × cols` factorization of `p` with `rows <= cols`.
pub fn proc_grid(p: usize) -> (usize, usize) {
    let mut rows = (p as f64).sqrt() as usize;
    while rows > 1 && !p.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), p / rows.max(1))
}

/// Interleaved tile partition of a `w`×`w` pixel plane: square tiles of
/// `tile` pixels on a side, assigned round-robin to processors in
/// row-major tile order. This stands in for the graphics programs'
/// dynamic task distribution: tight load balance, while consecutive
/// processors (cluster mates) still work on adjacent tiles and so share
/// scene data.
#[derive(Debug, Clone, Copy)]
pub struct TilePartition {
    /// Image side in pixels.
    pub w: usize,
    /// Tile side in pixels.
    pub tile: usize,
    /// Number of processors.
    pub n_procs: usize,
}

impl TilePartition {
    /// Creates the partition. The tile size must divide the image side.
    pub fn new(w: usize, tile: usize, n_procs: usize) -> TilePartition {
        assert!(w.is_multiple_of(tile), "tile {tile} must divide image {w}");
        TilePartition { w, tile, n_procs }
    }

    /// Tiles per side.
    pub fn tiles_x(&self) -> usize {
        self.w / self.tile
    }

    /// Total tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles_x() * self.tiles_x()
    }

    /// Owner of tile `t`. Within every group of `n_procs` consecutive
    /// tiles each processor owns exactly one (balance); successive
    /// groups rotate by 7 so a processor's tiles do not line up in a
    /// fixed image column (which would recreate the center-vs-edge
    /// imbalance this partition exists to avoid).
    pub fn owner_of_tile(&self, t: usize) -> usize {
        (t + (t / self.n_procs) * 7) % self.n_procs
    }

    /// Tiles owned by processor `p`, in scan order.
    pub fn tiles_of(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_tiles()).filter(move |&t| self.owner_of_tile(t) == p)
    }

    /// Number of pixels processor `p` owns.
    pub fn pixels_of(&self, p: usize) -> usize {
        self.tiles_of(p).count() * self.tile * self.tile
    }

    /// Pixel coordinates `(x, y)` of tile `t`, in row-major order
    /// within the tile.
    pub fn tile_pixels(&self, t: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let tx = (t % self.tiles_x()) * self.tile;
        let ty = (t / self.tiles_x()) * self.tile;
        (0..self.tile * self.tile).map(move |i| (tx + i % self.tile, ty + i / self.tile))
    }
}

/// Interleaves the low 16 bits of `x` and `y` into a Morton (Z-order)
/// code, used to give N-body partitions spatial locality.
pub fn morton2(x: u32, y: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

/// Interleaves the low 10 bits of `x`, `y`, `z` into a 3-D Morton code.
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0x3ff;
        v = (v | (v << 16)) & 0x30000ff;
        v = (v | (v << 8)) & 0x300f00f;
        v = (v | (v << 4)) & 0x30c30c3;
        v = (v | (v << 2)) & 0x9249249;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1) | (spread(z as u64) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_app_specific() {
        let a: u64 = rng_for("lu", 0).next_u64();
        let b: u64 = rng_for("lu", 0).next_u64();
        let c: u64 = rng_for("fft", 0).next_u64();
        let d: u64 = rng_for("lu", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 3, 8, 64] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let r = chunk_range(n, parts, i);
                    assert_eq!(r.start, prev_end, "contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn chunk_owner_inverts_chunk_range() {
        for n in [1usize, 7, 64, 100, 1000] {
            for parts in [1usize, 3, 8, 64] {
                for i in 0..parts {
                    for idx in chunk_range(n, parts, i) {
                        assert_eq!(
                            chunk_owner(n, parts, idx),
                            i,
                            "n={n} parts={parts} idx={idx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_sizes_balanced() {
        for i in 0..8 {
            let len = chunk_range(100, 8, i).len();
            assert!(len == 12 || len == 13);
        }
    }

    #[test]
    fn proc_grids() {
        assert_eq!(proc_grid(64), (8, 8));
        assert_eq!(proc_grid(16), (4, 4));
        assert_eq!(proc_grid(8), (2, 4));
        assert_eq!(proc_grid(2), (1, 2));
        assert_eq!(proc_grid(1), (1, 1));
        assert_eq!(proc_grid(7), (1, 7));
    }

    #[test]
    fn tile_partition_covers_image_once() {
        let tp = TilePartition::new(32, 4, 5);
        let mut seen = vec![false; 32 * 32];
        let mut total = 0usize;
        for p in 0..5 {
            for t in tp.tiles_of(p) {
                assert_eq!(tp.owner_of_tile(t), p);
                for (x, y) in tp.tile_pixels(t) {
                    assert!(!seen[y * 32 + x], "pixel ({x},{y}) double-owned");
                    seen[y * 32 + x] = true;
                    total += 1;
                }
            }
        }
        assert_eq!(total, 32 * 32);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tile_partition_balances_load() {
        let tp = TilePartition::new(128, 4, 64);
        let counts: Vec<usize> = (0..64).map(|p| tp.pixels_of(p)).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert_eq!(min, max, "1024 tiles over 64 procs divides evenly");
    }

    #[test]
    fn morton_orders_locally() {
        // Adjacent cells differ less in code than distant ones, on
        // average; just sanity-check monotone block structure.
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        assert_eq!(morton2(2, 0), 4);
        assert_eq!(morton3(1, 1, 1), 7);
    }
}
