//! Barnes–Hut hierarchical N-body simulation (SPLASH-2 Barnes).
//!
//! "Barnes simulates the evolution of galaxies using the Barnes-Hut
//! hierarchical N-body method. It represents the space containing the
//! particles as an octree, and processors traverse the octree partially
//! once for each particle they own. ... The working sets are quite
//! small, and overlap substantially because processors overlap in the
//! parts of the tree they touch" (§3.2). Paper size: 8192 particles,
//! θ = 1.0.
//!
//! Per time step: concurrent octree build with hashed per-cell locks,
//! an upward center-of-mass pass, per-body force walks with the θ
//! opening criterion, position/velocity update, and a Morton-order
//! spatial re-partition (a simplified costzones). The gravity is
//! computed for real; tests check the Barnes-Hut force against direct
//! summation.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::Placement;

use crate::util::{chunk_range, morton3, rng_for};
use crate::SplashApp;

/// Gravitational softening.
const EPS: f64 = 0.05;
/// Leapfrog time step.
const DT: f64 = 0.025;
/// Cycles charged per visited cell during a walk (distance test).
const CYCLES_PER_VISIT: u64 = 45;
/// Cycles charged per accepted gravitational interaction: ~30 flops
/// including a square root and reciprocal, each tens of cycles on the
/// scalar FPUs of the era.
const CYCLES_PER_INTERACT: u64 = 200;
/// Hashed cell-lock array size (SPLASH-2 hashes cell locks the same
/// way).
const N_LOCKS: u32 = 512;

/// Bytes per body record: position+mass on the first line,
/// velocity+acceleration on the second (SPLASH-2 bodies are ~120
/// bytes).
const BODY_BYTES: u64 = 128;
/// Bytes per cell record: children pointers on the first line, center
/// of mass on the second, moments/geometry on the third and fourth
/// (SPLASH-2 cells are ~200+ bytes).
const CELL_BYTES: u64 = 256;

/// Barnes-Hut workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Barnes {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Opening criterion θ: a cell of diameter `s` at distance `d` is
    /// accepted when `s/d < θ`.
    pub theta: f64,
    /// Simulated time steps.
    pub steps: usize,
}

impl Barnes {
    /// The paper's Table 2 size: 8192 particles, θ = 1.0.
    pub fn paper() -> Self {
        Barnes {
            n_bodies: 8192,
            theta: 1.0,
            steps: 2,
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Barnes {
            n_bodies: 512,
            theta: 1.0,
            steps: 2,
        }
    }
}

// ---------------------------------------------------------------------
// Real Barnes-Hut gravity (verified against direct summation).
// ---------------------------------------------------------------------

/// A point mass.
#[derive(Debug, Clone, Copy)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// Octree node: children are cell indices (`>= 0`), body leaves
/// (`-(body+2)`), or [`EMPTY`].
#[derive(Debug, Clone)]
struct Cell {
    children: [i64; 8],
    center: [f64; 3],
    half: f64,
    com: [f64; 3],
    mass: f64,
}

const EMPTY: i64 = i64::MIN;

impl Cell {
    fn new(center: [f64; 3], half: f64) -> Cell {
        Cell {
            children: [EMPTY; 8],
            center,
            half,
            com: [0.0; 3],
            mass: 0.0,
        }
    }

    fn octant_of(&self, p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= self.center[0]) << 2)
            | (usize::from(p[1] >= self.center[1]) << 1)
            | usize::from(p[2] >= self.center[2])
    }

    fn child_center(&self, o: usize) -> [f64; 3] {
        let h = self.half * 0.5;
        [
            self.center[0] + if o & 4 != 0 { h } else { -h },
            self.center[1] + if o & 2 != 0 { h } else { -h },
            self.center[2] + if o & 1 != 0 { h } else { -h },
        ]
    }
}

/// The Barnes-Hut octree, rebuilt each step.
pub struct Octree {
    cells: Vec<Cell>,
    /// Per-body insertion path (cell indices visited), used by the
    /// trace emitter to replay the concurrent build.
    insert_paths: Vec<Vec<usize>>,
    /// For each cell, the body whose insertion created it (the root is
    /// attributed to body 0). The creator's owner computes the cell's
    /// center of mass, giving the upward pass the same spatial
    /// locality the original program gets from insertion ownership.
    creator: Vec<usize>,
}

impl Octree {
    /// Builds the tree over `bodies` within a cube covering all
    /// positions, recording the per-body insertion paths.
    pub fn build(bodies: &[Body]) -> Octree {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(b.pos[d]);
                hi[d] = hi[d].max(b.pos[d]);
            }
        }
        let center = [
            (lo[0] + hi[0]) * 0.5,
            (lo[1] + hi[1]) * 0.5,
            (lo[2] + hi[2]) * 0.5,
        ];
        let half = (0..3)
            .map(|d| (hi[d] - lo[d]) * 0.5)
            .fold(1e-9f64, f64::max)
            * 1.0001;
        let mut tree = Octree {
            cells: vec![Cell::new(center, half)],
            insert_paths: Vec::with_capacity(bodies.len()),
            creator: vec![0],
        };
        for i in 0..bodies.len() {
            let mut path = Vec::with_capacity(12);
            tree.insert(0, i, bodies[i].pos, bodies, &mut path);
            tree.insert_paths.push(path);
        }
        tree.compute_coms(0, bodies);
        tree
    }

    fn insert(
        &mut self,
        cell: usize,
        body: usize,
        pos: [f64; 3],
        bodies: &[Body],
        path: &mut Vec<usize>,
    ) {
        path.push(cell);
        let o = self.cells[cell].octant_of(&pos);
        match self.cells[cell].children[o] {
            EMPTY => self.cells[cell].children[o] = -(body as i64 + 2),
            c if c >= 0 => self.insert(c as usize, body, pos, bodies, path),
            occupied => {
                // Split: replace the body leaf with a new cell holding
                // both bodies.
                let prev = (-occupied - 2) as usize;
                let center = self.cells[cell].child_center(o);
                let half = self.cells[cell].half * 0.5;
                let new_idx = self.cells.len();
                self.cells.push(Cell::new(center, half));
                self.creator.push(body);
                self.cells[cell].children[o] = new_idx as i64;
                // The displaced occupant moves down without extending
                // the inserting body's recorded path.
                let mut scratch = Vec::new();
                self.insert(new_idx, prev, bodies[prev].pos, bodies, &mut scratch);
                self.insert(new_idx, body, pos, bodies, path);
            }
        }
    }

    fn compute_coms(&mut self, cell: usize, bodies: &[Body]) {
        let mut mass = 0.0;
        let mut com = [0.0f64; 3];
        for o in 0..8 {
            match self.cells[cell].children[o] {
                EMPTY => {}
                c if c >= 0 => {
                    self.compute_coms(c as usize, bodies);
                    let ch = &self.cells[c as usize];
                    mass += ch.mass;
                    for d in 0..3 {
                        com[d] += ch.mass * ch.com[d];
                    }
                }
                leaf => {
                    let b = &bodies[(-leaf - 2) as usize];
                    mass += b.mass;
                    for d in 0..3 {
                        com[d] += b.mass * b.pos[d];
                    }
                }
            }
        }
        if mass > 0.0 {
            for d in 0..3 {
                com[d] /= mass;
            }
        }
        self.cells[cell].mass = mass;
        self.cells[cell].com = com;
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// The body whose insertion created cell `c`.
    pub fn creator(&self, c: usize) -> usize {
        self.creator[c]
    }

    /// Root-cell total mass (for conservation checks).
    pub fn root_mass(&self) -> f64 {
        self.cells[0].mass
    }

    /// Computes the acceleration on `pos` (skipping body `skip`) with
    /// opening angle `theta`. When `visit` is provided it receives
    /// `(cell_index, accepted)` for every visited cell, letting the
    /// trace emitter replay the walk.
    pub fn accel(
        &self,
        pos: [f64; 3],
        skip: usize,
        theta: f64,
        bodies: &[Body],
        mut visit: Option<&mut dyn FnMut(usize, bool)>,
    ) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        let mut stack = vec![0usize];
        while let Some(c) = stack.pop() {
            let cell = &self.cells[c];
            if cell.mass == 0.0 {
                continue;
            }
            let dx = [
                cell.com[0] - pos[0],
                cell.com[1] - pos[1],
                cell.com[2] - pos[2],
            ];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let d = d2.sqrt();
            // Corner-distance opening criterion (cell diagonal vs θ·d),
            // the conservative variant used by SPLASH-2-era codes to
            // bound worst-case error.
            let accepted = (2.0 * cell.half) * 1.732 < theta * d;
            if let Some(v) = visit.as_deref_mut() {
                v(c, accepted);
            }
            if accepted {
                let r2 = d2 + EPS * EPS;
                let f = cell.mass / (r2 * r2.sqrt());
                for dim in 0..3 {
                    acc[dim] += f * dx[dim];
                }
            } else {
                for o in 0..8 {
                    match cell.children[o] {
                        EMPTY => {}
                        ch if ch >= 0 => stack.push(ch as usize),
                        leaf => {
                            let bi = (-leaf - 2) as usize;
                            if bi == skip {
                                continue;
                            }
                            let b = &bodies[bi];
                            let dx = [b.pos[0] - pos[0], b.pos[1] - pos[1], b.pos[2] - pos[2]];
                            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + EPS * EPS;
                            let f = b.mass / (r2 * r2.sqrt());
                            for dim in 0..3 {
                                acc[dim] += f * dx[dim];
                            }
                        }
                    }
                }
            }
        }
        acc
    }
}

/// Direct O(n²) acceleration for verification.
pub fn direct_accel(bodies: &[Body], i: usize) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    for (j, b) in bodies.iter().enumerate() {
        if j == i {
            continue;
        }
        let dx = [
            b.pos[0] - bodies[i].pos[0],
            b.pos[1] - bodies[i].pos[1],
            b.pos[2] - bodies[i].pos[2],
        ];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + EPS * EPS;
        let f = b.mass / (r2 * r2.sqrt());
        for d in 0..3 {
            acc[d] += f * dx[d];
        }
    }
    acc
}

/// Deterministic initial conditions: a uniform sphere with small random
/// velocities.
pub fn initial_bodies(n: usize) -> Vec<Body> {
    let mut rng = rng_for("barnes", n as u64);
    (0..n)
        .map(|_| {
            // Rejection-sample the unit ball.
            let pos = loop {
                let p = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ];
                if p[0] * p[0] + p[1] * p[1] + p[2] * p[2] <= 1.0 {
                    break p;
                }
            };
            Body {
                pos,
                vel: [
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                ],
                mass: 1.0 / n as f64,
            }
        })
        .collect()
}

/// Morton-order partition of body indices into `n_procs` chunks — the
/// simplified costzones assignment.
fn partition(bodies: &[Body], n_procs: usize) -> Vec<Vec<usize>> {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for b in bodies {
        for d in 0..3 {
            lo[d] = lo[d].min(b.pos[d]);
            hi[d] = hi[d].max(b.pos[d]);
        }
    }
    let mut order: Vec<usize> = (0..bodies.len()).collect();
    let code = |b: &Body| {
        let q = |d: usize| {
            let span = (hi[d] - lo[d]).max(1e-12);
            (((b.pos[d] - lo[d]) / span) * 1023.0) as u32
        };
        morton3(q(0), q(1), q(2))
    };
    order.sort_by_key(|&i| code(&bodies[i]));
    (0..n_procs)
        .map(|p| {
            chunk_range(bodies.len(), n_procs, p)
                .map(|k| order[k])
                .collect()
        })
        .collect()
}

impl SplashApp for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let n = self.n_bodies;
        let mut bodies = initial_bodies(n);

        let mut t = TraceBuilder::new(n_procs);
        let _lock_base = t.new_locks(N_LOCKS);

        // Bodies: one line each, distributed round-robin (ownership
        // rotates between steps, so no static home is right).
        let body_arr = t
            .space_mut()
            .alloc_array(n as u64, BODY_BYTES, Placement::RoundRobin);
        // Cells: rebuilt each step; a generous shared pool.
        let cell_arr = t
            .space_mut()
            .alloc_array(2 * n as u64, CELL_BYTES, Placement::RoundRobin);
        // Per-processor private scratch (work lists, per-body local
        // state — SPLASH keeps substantial private per-body arrays),
        // one line per locally owned body slot.
        let scratch: Vec<simcore::space::SharedArray> = (0..n_procs)
            .map(|p| {
                t.space_mut()
                    .alloc_array((n / n_procs + 1) as u64, 64, Placement::Owner(p as u32))
            })
            .collect();
        let cell_children = |c: usize| cell_arr.addr(c as u64);
        let cell_com = |c: usize| cell_arr.addr(c as u64) + 64;
        let cell_moments = |c: usize| cell_arr.addr(c as u64) + 128;
        let body_pos = |b: u64| body_arr.addr(b);
        let body_vel = |b: u64| body_arr.addr(b) + 64;

        for _step in 0..self.steps {
            let owner_of = partition(&bodies, n_procs);
            let tree = Octree::build(&bodies);
            assert!(tree.n_cells() <= 2 * n, "cell pool exhausted");

            // Phase 1: concurrent tree build. Each processor inserts
            // its bodies: read the child pointers along the recorded
            // path, then update the insertion cell. Every child-pointer
            // access — reads included — takes the cell-hashed lock,
            // because another processor may be splitting that very cell
            // concurrently (an unlocked path read races its write).
            for (p, mine) in owner_of.iter().enumerate() {
                let pid = p as u32;
                for &b in mine {
                    let path = &tree.insert_paths[b];
                    t.read(pid, body_pos(b as u64));
                    for &c in path {
                        let lock = (c as u32) % N_LOCKS;
                        t.lock(pid, lock);
                        t.read(pid, cell_children(c));
                        t.unlock(pid, lock);
                        t.compute(pid, 12);
                    }
                    if let Some(&last) = path.last() {
                        let lock = (last as u32) % N_LOCKS;
                        t.lock(pid, lock);
                        t.write(pid, cell_children(last));
                        t.unlock(pid, lock);
                    }
                }
            }
            t.barrier_all();

            // Phase 2: center-of-mass upward pass. Each cell is
            // computed by the processor that owns the body whose
            // insertion created it, mirroring the original's
            // insertion-based cell ownership (and its spatial
            // locality).
            let mut body_owner = vec![0u32; n];
            for (p, mine) in owner_of.iter().enumerate() {
                for &b in mine {
                    body_owner[b] = p as u32;
                }
            }
            // Cell owners run concurrently, so a parent's read of a
            // child's center-of-mass races the child owner's write of
            // it unless both sides hold the child's cell-hashed lock
            // (the SPLASH code's per-cell locks).
            for c in 0..tree.n_cells() {
                let pid = body_owner[tree.creator(c)];
                t.read(pid, cell_children(c));
                for o in 0..8 {
                    let ch = tree.cells[c].children[o];
                    if ch >= 0 {
                        let lock = (ch as u32) % N_LOCKS;
                        t.lock(pid, lock);
                        t.read(pid, cell_com(ch as usize));
                        t.read(pid, cell_moments(ch as usize));
                        t.unlock(pid, lock);
                    } else if ch != EMPTY {
                        t.read(pid, body_pos((-ch - 2) as u64));
                    }
                }
                t.compute(pid, 200);
                let lock = (c as u32) % N_LOCKS;
                t.lock(pid, lock);
                t.write(pid, cell_com(c));
                t.write(pid, cell_moments(c));
                t.unlock(pid, lock);
            }
            t.barrier_all();

            // Phase 3: force walks.
            let mut accs = vec![[0.0f64; 3]; n];
            for (p, mine) in owner_of.iter().enumerate() {
                let pid = p as u32;
                for (k, &b) in mine.iter().enumerate() {
                    t.read(pid, body_pos(b as u64));
                    t.read(pid, scratch[p].addr((k % scratch[p].len as usize) as u64));
                    let mut visited: Vec<(usize, bool)> = Vec::new();
                    accs[b] = tree.accel(
                        bodies[b].pos,
                        b,
                        self.theta,
                        &bodies,
                        Some(&mut |c, acc| visited.push((c, acc))),
                    );
                    for (c, accepted) in visited {
                        t.read(pid, cell_com(c));
                        t.compute(pid, CYCLES_PER_VISIT);
                        if accepted {
                            // The accepted interaction also reads the
                            // cell's multipole moments.
                            t.read(pid, cell_moments(c));
                            t.compute(pid, CYCLES_PER_INTERACT);
                        } else {
                            t.read(pid, cell_children(c));
                            // Opening a cell also examines its extent
                            // (geometry shares the moments line).
                            t.read(pid, cell_moments(c));
                            // Leaf bodies under an opened cell.
                            for o in 0..8 {
                                let ch = tree.cells[c].children[o];
                                if ch < 0 && ch != EMPTY && (-ch - 2) as usize != b {
                                    t.read(pid, body_pos((-ch - 2) as u64));
                                    t.compute(pid, CYCLES_PER_INTERACT);
                                }
                            }
                        }
                    }
                    t.write(pid, body_vel(b as u64)); // store acc
                    t.write(pid, scratch[p].addr((k % scratch[p].len as usize) as u64));
                }
            }
            t.barrier_all();

            // Phase 4: leapfrog update of owned bodies.
            for (p, mine) in owner_of.iter().enumerate() {
                let pid = p as u32;
                for &b in mine {
                    t.read(pid, body_pos(b as u64));
                    t.read(pid, body_vel(b as u64));
                    t.compute(pid, 140);
                    t.write(pid, body_pos(b as u64));
                    t.write(pid, body_vel(b as u64));
                    for d in 0..3 {
                        bodies[b].vel[d] += accs[b][d] * DT;
                        bodies[b].pos[d] += bodies[b].vel[d] * DT;
                    }
                }
            }
            t.barrier_all();
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::Op;

    #[test]
    fn tree_force_matches_direct_sum_at_small_theta() {
        let bodies = initial_bodies(128);
        let tree = Octree::build(&bodies);
        for i in (0..128).step_by(17) {
            let bh = tree.accel(bodies[i].pos, i, 0.01, &bodies, None);
            let ds = direct_accel(&bodies, i);
            for d in 0..3 {
                assert!(
                    (bh[d] - ds[d]).abs() < 1e-6 * (1.0 + ds[d].abs()),
                    "body {i} dim {d}: bh {} vs direct {}",
                    bh[d],
                    ds[d]
                );
            }
        }
    }

    #[test]
    fn theta_one_is_reasonable_approximation() {
        // Individual bodies near the cluster center can have near-zero
        // net force, so pointwise relative error is meaningless; use
        // the aggregate RMS error over the body set, the standard
        // Barnes-Hut accuracy metric.
        let bodies = initial_bodies(256);
        let tree = Octree::build(&bodies);
        let mut err2 = 0.0f64;
        let mut mag2 = 0.0f64;
        for i in 0..256 {
            let bh = tree.accel(bodies[i].pos, i, 1.0, &bodies, None);
            let ds = direct_accel(&bodies, i);
            for d in 0..3 {
                err2 += (bh[d] - ds[d]).powi(2);
                mag2 += ds[d].powi(2);
            }
        }
        let rel = (err2 / mag2).sqrt();
        assert!(rel < 0.15, "θ=1 RMS relative error {rel}");
    }

    #[test]
    fn tree_mass_is_conserved() {
        let bodies = initial_bodies(200);
        let tree = Octree::build(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.root_mass() - total).abs() < 1e-12);
    }

    #[test]
    fn walk_shrinks_with_larger_theta() {
        let bodies = initial_bodies(512);
        let tree = Octree::build(&bodies);
        let count = |theta: f64| {
            let mut c = 0usize;
            let _ = tree.accel(bodies[0].pos, 0, theta, &bodies, Some(&mut |_, _| c += 1));
            c
        };
        assert!(count(1.0) < count(0.3));
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let bodies = initial_bodies(300);
        let parts = partition(&bodies, 8);
        let mut seen = vec![false; 300];
        for part in &parts {
            for &b in part {
                assert!(!seen[b]);
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn trace_valid_and_deterministic() {
        let app = Barnes {
            n_bodies: 128,
            theta: 1.0,
            steps: 2,
        };
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
        // 4 barriers per step + final.
        assert_eq!(t1.n_barriers, 4 * 2 + 1);
    }

    #[test]
    fn walks_share_upper_tree() {
        // Different processors' walks must overlap on shared cell COM
        // lines — the working-set overlap the paper highlights.
        let t = Barnes::small().generate(4);
        let read_lines = |p: usize| -> std::collections::HashSet<u64> {
            t.per_proc[p]
                .iter()
                .filter_map(|o| match o.unpack() {
                    Op::Read(a) => Some(simcore::addr::line_of(a)),
                    _ => None,
                })
                .collect()
        };
        let a = read_lines(0);
        let b = read_lines(3);
        let common = a.intersection(&b).count();
        assert!(
            common * 5 > a.len().min(b.len()),
            "walks share only {common} of {} lines",
            a.len().min(b.len())
        );
    }

    #[test]
    fn tree_build_uses_locks() {
        let t = Barnes::small().generate(4);
        let locks = t.per_proc[0]
            .iter()
            .filter(|o| matches!(o.unpack(), Op::Lock(_)))
            .count();
        assert!(locks > 0);
    }
}
