//! SPLASH-style workload suite for the clustering study (Table 2 of the
//! paper).
//!
//! Each application *actually computes* its algorithm (octree builds,
//! FFT butterflies, LU factorization, multigrid sweeps, particle
//! advection, ray casting, ...) while recording, per logical processor,
//! the stream of shared-memory references and synchronization
//! operations the parallel program would issue. The resulting
//! [`simcore::Trace`] is replayed by the `tango` engine under the
//! different cluster configurations.
//!
//! Two granularities of reference are emitted (see DESIGN.md):
//! element-granular reads/writes wherever access order is irregular and
//! matters (tree walks, particle/cell interactions, scatter writes),
//! and line-granular touches with explicit `Compute` filler for dense
//! regular sweeps, where the per-line miss sequence is provably the
//! same.
//!
//! | Module | Application | Representative of |
//! |---|---|---|
//! | [`barnes`] | Barnes-Hut N-body | hierarchical N-body codes |
//! | [`fft`] | six-step 1-D FFT | transform methods, high radix |
//! | [`fmm`] | 2-D adaptive Fast Multipole | FMM N-body |
//! | [`lu`] | blocked dense LU | blocked dense linear algebra |
//! | [`mp3d`] | rarefied-gas particle-in-cell | high-comm. unstructured |
//! | [`ocean`] | regular-grid multigrid solver | regular-grid iterative |
//! | [`radix`] | radix sort | parallel sorting |
//! | [`raytrace`] | recursive ray tracer | graphics, large read-only set |
//! | [`volrend`] | volume renderer | graphics, small read-only set |

// Coordinate-indexed loops (`for d in 0..3`) are the clearest form for
// the numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

pub mod barnes;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod mp3d;
pub mod mutate;
pub mod ocean;
pub mod radix;
pub mod raytrace;
pub mod util;
pub mod volrend;

use simcore::Trace;

/// A workload that can generate its multi-processor reference trace.
pub trait SplashApp {
    /// Short name matching the paper's figures ("barnes", "lu", ...).
    fn name(&self) -> &'static str;

    /// Runs the algorithm for `n_procs` logical processors and records
    /// the trace. Deterministic: equal configurations yield equal
    /// traces.
    fn generate(&self, n_procs: usize) -> Trace;
}

/// Problem-size selector used across the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSize {
    /// The paper's Table 2 sizes.
    Paper,
    /// Reduced sizes for tests and CI-speed benches.
    Small,
}

/// All nine applications at the given size, boxed for uniform driving.
pub fn suite(size: ProblemSize) -> Vec<Box<dyn SplashApp>> {
    match size {
        ProblemSize::Paper => vec![
            Box::new(barnes::Barnes::paper()),
            Box::new(fmm::Fmm::paper()),
            Box::new(fft::Fft::paper()),
            Box::new(lu::Lu::paper()),
            Box::new(mp3d::Mp3d::paper()),
            Box::new(ocean::Ocean::paper()),
            Box::new(radix::Radix::paper()),
            Box::new(raytrace::Raytrace::paper()),
            Box::new(volrend::Volrend::paper()),
        ],
        ProblemSize::Small => vec![
            Box::new(barnes::Barnes::small()),
            Box::new(fmm::Fmm::small()),
            Box::new(fft::Fft::small()),
            Box::new(lu::Lu::small()),
            Box::new(mp3d::Mp3d::small()),
            Box::new(ocean::Ocean::small()),
            Box::new(radix::Radix::small()),
            Box::new(raytrace::Raytrace::small()),
            Box::new(volrend::Volrend::small()),
        ],
    }
}

/// Looks up a single application by its figure name.
pub fn by_name(name: &str, size: ProblemSize) -> Option<Box<dyn SplashApp>> {
    suite(size).into_iter().find(|a| a.name() == name)
}
