//! Volume renderer (SPLASH-2 Volrend; the paper renders a CT head).
//!
//! Like Raytrace, the pixel plane is tiled over processors and the
//! volume data set is read-only and distributed among processors; but
//! "the rays that a processor shoots through its assigned pixels do not
//! reflect in Volrend ... (so Volrend's working sets are smaller and
//! more structured)" (§3.2).
//!
//! The volume is a synthetic head: nested ellipsoid shells (skin,
//! skull, brain) with deterministic texture. Rays march front-to-back
//! with trilinear sampling, early termination, and a min/max octree for
//! space leaping. Rendering is computed for real; tests verify the
//! octree is consistent with the volume and that space leaping does not
//! change the image.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::Placement;

use crate::util::TilePartition;
use crate::SplashApp;

/// Opacity threshold below which a voxel region is transparent.
const TRANSPARENT: u8 = 30;
/// Early ray termination opacity.
const TERM_OPACITY: f32 = 0.95;
/// Cycles per trilinear sample + compositing step.
const CYCLES_PER_SAMPLE: u64 = 140;
/// Cycles per octree skip test.
const CYCLES_PER_SKIP: u64 = 40;

/// A cubic density volume.
pub struct Volume {
    /// Side length.
    pub n: usize,
    data: Vec<u8>,
}

impl Volume {
    /// Builds the synthetic head: skin, skull and brain as nested
    /// ellipsoid shells with a deterministic wiggle.
    pub fn head(n: usize) -> Volume {
        let mut data = vec![0u8; n * n * n];
        let c = (n as f64 - 1.0) / 2.0;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let dx = (x as f64 - c) / c;
                    let dy = (y as f64 - c) / (c * 0.85);
                    let dz = (z as f64 - c) / (c * 0.95);
                    let r = (dx * dx + dy * dy + dz * dz).sqrt();
                    // Deterministic texture wiggle.
                    let wiggle = 0.03
                        * ((x as f64 * 0.9).sin() * (y as f64 * 0.7).cos()
                            + (z as f64 * 0.5).sin());
                    let r = r + wiggle;
                    let d = if r > 0.95 {
                        0 // air
                    } else if r > 0.85 {
                        80 // skin
                    } else if r > 0.70 {
                        220 // skull
                    } else if r > 0.25 {
                        120 // brain
                    } else {
                        150 // deep structure
                    };
                    data[(z * n + y) * n + x] = d;
                }
            }
        }
        Volume { n, data }
    }

    /// Density at integer voxel coordinates (zero outside).
    #[inline]
    pub fn at(&self, x: i64, y: i64, z: i64) -> u8 {
        let n = self.n as i64;
        if x < 0 || y < 0 || z < 0 || x >= n || y >= n || z >= n {
            return 0;
        }
        self.data[((z * n + y) * n + x) as usize]
    }

    /// Byte offset of a voxel within the volume array.
    #[inline]
    pub fn offset(&self, x: usize, y: usize, z: usize) -> u64 {
        ((z * self.n + y) * self.n + x) as u64
    }

    /// Trilinear sample at a continuous position.
    pub fn sample(&self, p: [f64; 3]) -> f64 {
        let f = [p[0].floor(), p[1].floor(), p[2].floor()];
        let (x, y, z) = (f[0] as i64, f[1] as i64, f[2] as i64);
        let (fx, fy, fz) = (p[0] - f[0], p[1] - f[1], p[2] - f[2]);
        let mut acc = 0.0;
        for (dz, wz) in [(0, 1.0 - fz), (1, fz)] {
            for (dy, wy) in [(0, 1.0 - fy), (1, fy)] {
                for (dx, wx) in [(0, 1.0 - fx), (1, fx)] {
                    acc += wx * wy * wz * self.at(x + dx, y + dy, z + dz) as f64;
                }
            }
        }
        acc
    }
}

/// Min/max octree over the volume for space leaping. Level 0 is the
/// coarsest (a single node); the finest level has `brick` voxels per
/// node side.
pub struct MinMaxOctree {
    /// Per level: side length in nodes and the (min,max) grid.
    pub levels: Vec<(usize, Vec<(u8, u8)>)>,
    /// Voxels per finest-level node side.
    pub brick: usize,
}

impl MinMaxOctree {
    /// Builds the octree with `brick`-voxel leaves.
    pub fn build(vol: &Volume, brick: usize) -> MinMaxOctree {
        assert!(vol.n.is_multiple_of(brick));
        let fine_side = vol.n / brick;
        assert!(fine_side.is_power_of_two());
        let mut levels = Vec::new();
        // Finest level from the volume.
        let mut cur: Vec<(u8, u8)> = vec![(u8::MAX, 0); fine_side * fine_side * fine_side];
        for z in 0..vol.n {
            for y in 0..vol.n {
                for x in 0..vol.n {
                    let d = vol.at(x as i64, y as i64, z as i64);
                    let i = ((z / brick) * fine_side + y / brick) * fine_side + x / brick;
                    cur[i].0 = cur[i].0.min(d);
                    cur[i].1 = cur[i].1.max(d);
                }
            }
        }
        levels.push((fine_side, cur));
        // Coarser levels by 2x reduction.
        while levels.last().unwrap().0 > 1 {
            let (side, fine) = levels.last().unwrap();
            let cs = side / 2;
            let mut coarse = vec![(u8::MAX, 0u8); cs * cs * cs];
            for z in 0..*side {
                for y in 0..*side {
                    for x in 0..*side {
                        let f = fine[(z * side + y) * side + x];
                        let i = ((z / 2) * cs + y / 2) * cs + x / 2;
                        coarse[i].0 = coarse[i].0.min(f.0);
                        coarse[i].1 = coarse[i].1.max(f.1);
                    }
                }
            }
            levels.push((cs, coarse));
        }
        levels.reverse(); // coarsest first

        // Dilate the finest-level maxima over the 26-neighborhood so a
        // trilinear stencil whose floor lies in a node can never read a
        // voxel brighter than the node's (dilated) max — making space
        // leaps exact.
        {
            let li = levels.len() - 1;
            let (side, nodes) = &levels[li];
            let side = *side;
            let orig = nodes.clone();
            let nodes = &mut levels[li].1;
            for z in 0..side {
                for y in 0..side {
                    for x in 0..side {
                        let mut m = 0u8;
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    let (nx, ny, nz) =
                                        (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                    if nx < 0
                                        || ny < 0
                                        || nz < 0
                                        || nx >= side as i64
                                        || ny >= side as i64
                                        || nz >= side as i64
                                    {
                                        continue;
                                    }
                                    let i =
                                        ((nz as usize * side) + ny as usize) * side + nx as usize;
                                    m = m.max(orig[i].1);
                                }
                            }
                        }
                        nodes[(z * side + y) * side + x].1 = m;
                    }
                }
            }
        }
        MinMaxOctree { levels, brick }
    }

    /// Probes the finest-level node containing position `p`. Returns
    /// `(level_index, node_index, transparent, node_lo, node_span)`;
    /// when transparent, every trilinear sample whose base voxel lies
    /// inside the node is below the opacity threshold, so the caller
    /// may leap to the node's exit.
    pub fn probe(&self, vol_n: usize, p: [f64; 3]) -> (usize, usize, bool, [f64; 3], f64) {
        let li = self.levels.len() - 1;
        let (side, nodes) = &self.levels[li];
        let scale = vol_n / side;
        let clampi = |v: f64| (v.max(0.0) as usize).min(vol_n - 1) / scale;
        let (x, y, z) = (clampi(p[0]), clampi(p[1]), clampi(p[2]));
        let idx = (z * side + y) * side + x;
        let lo = [(x * scale) as f64, (y * scale) as f64, (z * scale) as f64];
        (li, idx, nodes[idx].1 < TRANSPARENT, lo, scale as f64)
    }
}

/// Volrend workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Volrend {
    /// Volume side (cubic volume).
    pub vol: usize,
    /// Image side in pixels.
    pub image: usize,
}

impl Volrend {
    /// The paper's configuration: a head volume (we synthesize 128³)
    /// rendered at 128×128.
    pub fn paper() -> Self {
        Volrend {
            vol: 128,
            image: 256,
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Volrend { vol: 32, image: 32 }
    }

    /// Renders the volume. `touch(pixel, kind)` receives every data
    /// access when given: `VolAccess::Voxel(offset)` for voxel loads and
    /// `VolAccess::Node(level, index)` for octree probes.
    pub fn render(
        &self,
        vol: &Volume,
        tree: Option<&MinMaxOctree>,
        mut touch: Option<&mut dyn FnMut(usize, VolAccess)>,
    ) -> Vec<f32> {
        let w = self.image;
        let n = vol.n as f64;
        // View rotated 30° about the vertical axis.
        let (s30, c30) = (30f64.to_radians().sin(), 30f64.to_radians().cos());
        let dir = [s30, 0.15, -c30];
        let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
        let dir = [dir[0] / norm, dir[1] / norm, dir[2] / norm];
        let right = [c30, 0.0, s30];
        let up = [0.0, 1.0, 0.0];
        let mut img = vec![0.0f32; w * w];
        for py in 0..w {
            for px in 0..w {
                let pixel = py * w + px;
                let u = (px as f64 / w as f64 - 0.5) * n * 1.4;
                let v = (py as f64 / w as f64 - 0.5) * n * 1.4;
                let center = [n / 2.0, n / 2.0, n / 2.0];
                let start = [
                    center[0] + right[0] * u + up[0] * v - dir[0] * n,
                    center[1] + right[1] * u + up[1] * v - dir[1] * n,
                    center[2] + right[2] * u + up[2] * v - dir[2] * n,
                ];
                let mut t = 0.0f64;
                let t_max = 2.2 * n;
                let mut opacity = 0.0f32;
                let mut color = 0.0f32;
                while t < t_max && opacity < TERM_OPACITY {
                    let p = [
                        start[0] + dir[0] * t,
                        start[1] + dir[1] * t,
                        start[2] + dir[2] * t,
                    ];
                    let inside = p.iter().all(|&c| c >= 0.0 && c < n - 1.0);
                    if !inside {
                        t += 1.0;
                        continue;
                    }
                    if let Some(tree) = tree {
                        let (li, idx, transparent, lo, span) = tree.probe(vol.n, p);
                        if let Some(f) = touch.as_deref_mut() {
                            f(pixel, VolAccess::Node(li, idx));
                        }
                        if transparent {
                            // Leap by whole unit steps while staying
                            // inside the node, preserving the sampling
                            // phase so the image is bit-identical to
                            // unaccelerated marching (maxima are
                            // dilated, so skipped samples are zero).
                            let mut exit = f64::INFINITY;
                            for d in 0..3 {
                                if dir[d].abs() > 1e-12 {
                                    let bound = if dir[d] > 0.0 { lo[d] + span } else { lo[d] };
                                    exit = exit.min((bound - p[d]) / dir[d]);
                                }
                            }
                            t += (exit - 1e-9).floor().max(1.0);
                            continue;
                        }
                    }
                    let d = vol.sample(p);
                    if let Some(f) = touch.as_deref_mut() {
                        // The trilinear stencil touches two x-runs on
                        // two rows of two slices: report the 4 row
                        // starts (the distinct cache regions).
                        let (x, y, z) = (p[0] as usize, p[1] as usize, p[2] as usize);
                        for (dy, dz) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                            let yy = (y + dy).min(vol.n - 1);
                            let zz = (z + dz).min(vol.n - 1);
                            f(pixel, VolAccess::Voxel(vol.offset(x, yy, zz)));
                        }
                    }
                    let a = ((d - 40.0) / 200.0).clamp(0.0, 1.0) as f32 * 0.25;
                    color += (1.0 - opacity) * a * (d as f32 / 255.0);
                    opacity += (1.0 - opacity) * a;
                    t += 1.0;
                }
                img[pixel] = color;
            }
        }
        img
    }
}

/// One data access performed during rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolAccess {
    /// A voxel load at the given byte offset within the volume.
    Voxel(u64),
    /// A min/max octree probe of `(level, node index)`.
    Node(usize, usize),
}

impl SplashApp for Volrend {
    fn name(&self) -> &'static str {
        "volrend"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let vol = Volume::head(self.vol);
        let brick = (self.vol / 16).max(2);
        let tree = MinMaxOctree::build(&vol, brick);
        let w = self.image;
        // Interleaved small tiles stand in for the original's task
        // stealing; cluster mates still get adjacent tiles.
        let tp = TilePartition::new(w, 4.min(w), n_procs);

        let mut t = TraceBuilder::new(n_procs);
        // Volume voxels: read-only, distributed round-robin.
        let vol_arr = t.space_mut().alloc_array(
            (self.vol * self.vol * self.vol) as u64,
            1,
            Placement::RoundRobin,
        );
        // Octree nodes: 2 bytes each, per level.
        let node_arrs: Vec<simcore::space::SharedArray> = tree
            .levels
            .iter()
            .map(|(side, _)| {
                t.space_mut()
                    .alloc_array((side * side * side) as u64, 2, Placement::RoundRobin)
            })
            .collect();
        // Pixel tiles, owner-local.
        let tiles: Vec<simcore::space::SharedArray> = (0..n_procs)
            .map(|p| {
                t.space_mut().alloc_array(
                    tp.pixels_of(p).max(1) as u64,
                    4,
                    Placement::Owner(p as u32),
                )
            })
            .collect();

        let mut per_pixel: Vec<Vec<VolAccess>> = vec![Vec::new(); w * w];
        let _img = self.render(
            &vol,
            Some(&tree),
            Some(&mut |pixel, acc| per_pixel[pixel].push(acc)),
        );

        for p in 0..n_procs {
            let pid = p as u32;
            let mut local = 0u64;
            for tile in tp.tiles_of(p) {
                for (px, py) in tp.tile_pixels(tile) {
                    let pixel = py * w + px;
                    for &acc in &per_pixel[pixel] {
                        match acc {
                            VolAccess::Voxel(off) => {
                                t.read(pid, vol_arr.base + off);
                                t.compute(pid, CYCLES_PER_SAMPLE / 4);
                            }
                            VolAccess::Node(li, idx) => {
                                t.read(pid, node_arrs[li].addr(idx as u64));
                                t.compute(pid, CYCLES_PER_SKIP);
                            }
                        }
                    }
                    t.compute(pid, 10);
                    t.write(pid, tiles[p].addr(local));
                    local += 1;
                }
            }
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_volume_has_structure() {
        let v = Volume::head(32);
        // Center is dense, corner is air.
        assert!(v.at(16, 16, 16) > 0);
        assert_eq!(v.at(0, 0, 0), 0);
        // Out of bounds is air.
        assert_eq!(v.at(-1, 0, 0), 0);
        assert_eq!(v.at(32, 0, 0), 0);
    }

    #[test]
    fn trilinear_interpolates_between_voxels() {
        let v = Volume::head(32);
        let a = v.at(16, 16, 16) as f64;
        let exact = v.sample([16.0, 16.0, 16.0]);
        assert!((exact - a).abs() < 1e-9);
        let mid = v.sample([16.5, 16.0, 16.0]);
        let b = v.at(17, 16, 16) as f64;
        assert!((mid - (a + b) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn octree_bounds_are_sound() {
        let v = Volume::head(32);
        let tree = MinMaxOctree::build(&v, 4);
        // Every voxel's density lies within its finest node's (min,max).
        let (side, nodes) = tree.levels.last().unwrap();
        for z in 0..32i64 {
            for y in 0..32i64 {
                for x in 0..32i64 {
                    let d = v.at(x, y, z);
                    let i = ((z as usize / 4) * side + y as usize / 4) * side + x as usize / 4;
                    let (lo, hi) = nodes[i];
                    assert!(lo <= d && d <= hi);
                }
            }
        }
        // Coarsest level is a single node spanning everything.
        assert_eq!(tree.levels[0].0, 1);
    }

    #[test]
    fn space_leaping_preserves_image() {
        let app = Volrend::small();
        let v = Volume::head(app.vol);
        let tree = MinMaxOctree::build(&v, 4);
        let with = app.render(&v, Some(&tree), None);
        let without = app.render(&v, None, None);
        for (a, b) in with.iter().zip(&without) {
            assert!(
                (a - b).abs() < 1e-4,
                "space leaping changed the image: {a} vs {b}"
            );
        }
    }

    #[test]
    fn image_has_contrast() {
        let app = Volrend::small();
        let v = Volume::head(app.vol);
        let img = app.render(&v, None, None);
        let max = img.iter().cloned().fold(0.0f32, f32::max);
        let min = img.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(max > min + 0.05, "flat image {min}..{max}");
    }

    #[test]
    fn trace_valid_and_deterministic() {
        let app = Volrend::small();
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
    }
}
