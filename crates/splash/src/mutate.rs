//! Test-only trace mutations that *remove* synchronization.
//!
//! The race detector (`cluster_check race`) is proven effective the
//! same way the PR 5 model checker was: plant a known defect and demand
//! the tool finds it, shrunk to a minimal counterexample. A [`Mutation`]
//! deletes one synchronization edge from a generated trace — one
//! processor's arrival at one barrier, or one lock/unlock pair —
//! exactly the class of bug a hand-parallelized SPLASH port ships with.
//!
//! Mutated traces deliberately fail [`simcore::Trace::validate`] (the
//! barrier sequences no longer agree) and must never reach the `tango`
//! replay engine, which asserts on barrier-id order. They exist solely
//! as detector input; nothing outside test and CI harness code should
//! apply one.

use simcore::ops::{Op, PackedOp};
use simcore::space::ProcId;
use simcore::Trace;

/// One synchronization-removal mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove processor `proc`'s `nth` (0-based) `Barrier` op, as if
    /// that processor forgot to arrive at the barrier.
    DropBarrier { proc: ProcId, nth: u32 },
    /// Remove processor `proc`'s `nth` (0-based) `Lock` op *and* its
    /// matching `Unlock`, as if the critical section was never guarded.
    SkipLock { proc: ProcId, nth: u32 },
}

/// Applies `m` to a copy of `trace`. Fails when the named processor or
/// sync op does not exist, so a planted mutation can never silently
/// turn into a no-op.
pub fn apply(trace: &Trace, m: Mutation) -> Result<Trace, String> {
    let mut out = trace.clone();
    match m {
        Mutation::DropBarrier { proc, nth } => {
            let ops = out
                .per_proc
                .get_mut(proc as usize)
                .ok_or_else(|| format!("no processor {proc}"))?;
            let pos = nth_matching(ops, nth, |op| matches!(op, Op::Barrier(_)))
                .ok_or_else(|| format!("proc {proc} has no barrier #{nth}"))?;
            ops.remove(pos);
        }
        Mutation::SkipLock { proc, nth } => {
            let ops = out
                .per_proc
                .get_mut(proc as usize)
                .ok_or_else(|| format!("no processor {proc}"))?;
            let pos = nth_matching(ops, nth, |op| matches!(op, Op::Lock(_)))
                .ok_or_else(|| format!("proc {proc} has no lock acquire #{nth}"))?;
            let Op::Lock(id) = ops[pos].unpack() else {
                return Err("lock scan desynced".to_string());
            };
            // Locks are non-recursive (Trace::validate), so the matching
            // release is the first Unlock(id) after the acquire.
            let rel = ops[pos + 1..]
                .iter()
                .position(|p| p.unpack() == Op::Unlock(id))
                .map(|off| pos + 1 + off)
                .ok_or_else(|| format!("proc {proc}: lock {id} is never released"))?;
            ops.remove(rel);
            ops.remove(pos);
        }
    }
    Ok(out)
}

/// Index of the `nth` op satisfying `pred`, if any.
fn nth_matching(ops: &[PackedOp], nth: u32, pred: impl Fn(&Op) -> bool) -> Option<usize> {
    ops.iter()
        .enumerate()
        .filter(|(_, p)| pred(&p.unpack()))
        .nth(nth as usize)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(2);
        let a = b.space_mut().alloc_shared(64);
        let l = b.new_lock();
        b.write(0, a);
        b.barrier_all();
        b.lock(1, l);
        b.read(1, a);
        b.unlock(1, l);
        b.barrier_all();
        b.finish() // appends a terminal barrier: 3 barriers total
    }

    #[test]
    fn drop_barrier_removes_one_arrival() {
        let t = sample_trace();
        let m = apply(&t, Mutation::DropBarrier { proc: 1, nth: 0 }).unwrap();
        let barriers = |tr: &Trace, p: usize| {
            tr.per_proc[p]
                .iter()
                .filter(|o| matches!(o.unpack(), Op::Barrier(_)))
                .count()
        };
        assert_eq!(barriers(&m, 0), 3);
        assert_eq!(barriers(&m, 1), 2);
        assert!(m.validate().is_err(), "mutant must fail validation");
        assert!(t.validate().is_ok(), "original is untouched");
    }

    #[test]
    fn skip_lock_removes_acquire_and_release() {
        let t = sample_trace();
        let m = apply(&t, Mutation::SkipLock { proc: 1, nth: 0 }).unwrap();
        assert!(!m.per_proc[1]
            .iter()
            .any(|o| matches!(o.unpack(), Op::Lock(_) | Op::Unlock(_))));
        // Everything else survives in order.
        assert_eq!(m.per_proc[1].len(), t.per_proc[1].len() - 2);
    }

    #[test]
    fn out_of_range_mutations_fail_loudly() {
        let t = sample_trace();
        assert!(apply(&t, Mutation::DropBarrier { proc: 9, nth: 0 }).is_err());
        assert!(apply(&t, Mutation::DropBarrier { proc: 0, nth: 99 }).is_err());
        assert!(apply(&t, Mutation::SkipLock { proc: 0, nth: 0 }).is_err());
    }
}
