//! MP3D: rarefied-gas particle-in-cell simulation (SPLASH MP3D).
//!
//! "MP3D is our communication stress test. It is a particle-in-cell
//! code that is written with vector rather than parallel machines in
//! mind. The communication volume is large, and the communication
//! patterns are very unstructured and are read-write in nature" (§3.2).
//!
//! Particles are statically partitioned over processors while the
//! space-cell array they scatter into is shared by everyone — every
//! move performs an unsynchronized read-modify-write of a cell record
//! (the original program tolerates these races), and in-cell collisions
//! read and write particles owned by other processors. Paper size:
//! 50,000 particles.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::SharedArray;

use crate::util::{chunk_range, rng_for};
use crate::SplashApp;

/// Cycles charged per particle move (position integration, cell index
/// arithmetic, boundary tests).
const CYCLES_PER_MOVE: u64 = 72;

/// Cycles charged per collision.
const CYCLES_PER_COLLISION: u64 = 96;

/// Bytes per particle record (3 position + 3 velocity f32 + cell id +
/// padding — two particles per cache line, as in the original).
const PARTICLE_BYTES: u64 = 32;

/// Bytes per space-cell record (counters and accumulators — two cells
/// per cache line, so false sharing on the cell array is represented).
const CELL_BYTES: u64 = 32;

/// Locks hashed over particle-array lines. The original MP3D tolerates
/// its races; this port is the MP3D-L locking variant, so the same
/// unstructured sharing (including the two-records-per-line false
/// sharing) stays, but every conflicting access pair is lock-ordered.
const N_PART_LOCKS: u32 = 256;

/// Locks hashed over cell-array lines.
const N_CELL_LOCKS: u32 = 128;

/// MP3D workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Mp3d {
    /// Number of gas particles.
    pub n_particles: usize,
    /// Simulated time steps.
    pub steps: usize,
    /// Space-cell grid dimensions (wind tunnel).
    pub cells: (usize, usize, usize),
}

impl Mp3d {
    /// The paper's Table 2 size: 50,000 particles.
    pub fn paper() -> Self {
        Mp3d {
            n_particles: 50_000,
            steps: 4,
            cells: (16, 16, 8),
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Mp3d {
            n_particles: 2000,
            steps: 2,
            cells: (8, 8, 4),
        }
    }

    fn n_cells(&self) -> usize {
        self.cells.0 * self.cells.1 * self.cells.2
    }
}

#[derive(Debug, Clone, Copy)]
struct Particle {
    pos: [f32; 3],
    vel: [f32; 3],
}

impl SplashApp for Mp3d {
    fn name(&self) -> &'static str {
        "mp3d"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let n = self.n_particles;
        let (cx, cy, cz) = self.cells;
        let dims = [cx as f32, cy as f32, cz as f32];
        let mut rng = rng_for("mp3d", n as u64);

        let mut parts: Vec<Particle> = (0..n)
            .map(|_| Particle {
                pos: [
                    rng.gen_range(0.0..dims[0]),
                    rng.gen_range(0.0..dims[1]),
                    rng.gen_range(0.0..dims[2]),
                ],
                vel: [
                    rng.gen_range(-0.9f32..0.9),
                    rng.gen_range(-0.4f32..0.4),
                    rng.gen_range(-0.4f32..0.4),
                ],
            })
            .collect();

        let mut t = TraceBuilder::new(n_procs);
        let part_locks = t.new_locks(N_PART_LOCKS);
        let cell_locks = t.new_locks(N_CELL_LOCKS);

        // Particle chunks are owner-local (the assignment is static; its
        // mismatch with the spatial cell structure is MP3D's defining
        // pathology).
        let part_arr: Vec<SharedArray> = (0..n_procs)
            .map(|p| {
                let range = chunk_range(n, n_procs, p);
                let base = t
                    .space_mut()
                    .alloc_owned(range.len() as u64 * PARTICLE_BYTES, p as u32);
                SharedArray {
                    base,
                    elem_bytes: PARTICLE_BYTES,
                    len: range.len() as u64,
                }
            })
            .collect();
        let part_addr = |i: usize| {
            let p = crate::util::chunk_owner(n, n_procs, i);
            let local = i - chunk_range(n, n_procs, p).start;
            part_arr[p].addr(local as u64)
        };

        // The shared cell array, homed round-robin.
        let cells = t.space_mut().alloc_array(
            self.n_cells() as u64,
            CELL_BYTES,
            simcore::space::Placement::RoundRobin,
        );

        let cell_of = |pos: &[f32; 3]| -> usize {
            let ix = (pos[0].clamp(0.0, dims[0] - 1e-3)) as usize;
            let iy = (pos[1].clamp(0.0, dims[1] - 1e-3)) as usize;
            let iz = (pos[2].clamp(0.0, dims[2] - 1e-3)) as usize;
            (ix * cy + iy) * cz + iz
        };

        for _step in 0..self.steps {
            // Collision pairing from the cell occupancy at the start of
            // the step: consecutive co-resident particles collide, and
            // the pair is processed (and the partner's record touched)
            // by the owner of the pair's *first* member — partners mix
            // processors freely, which is exactly MP3D's unstructured
            // read-write sharing.
            let mut partner_of: Vec<Option<usize>> = vec![None; n];
            {
                let mut cell_lists: Vec<Vec<usize>> = vec![Vec::new(); self.n_cells()];
                for (i, part) in parts.iter().enumerate() {
                    cell_lists[cell_of(&part.pos)].push(i);
                }
                for list in &cell_lists {
                    for pair in list.chunks_exact(2) {
                        partner_of[pair[0]] = Some(pair[1]);
                    }
                }
            }

            for p in 0..n_procs {
                let pid = p as u32;
                let range = chunk_range(n, n_procs, p);
                let part_lock =
                    |a: u64| part_locks + (simcore::line_of(a) % N_PART_LOCKS as u64) as u32;
                let cell_lock =
                    |a: u64| cell_locks + (simcore::line_of(a) % N_CELL_LOCKS as u64) as u32;
                for i in range {
                    // Move: read + write own particle record, under the
                    // line-hashed particle lock — a collision partner
                    // write (or a line-mate's traffic) may hit the same
                    // line concurrently.
                    let li = part_lock(part_addr(i));
                    t.lock(pid, li);
                    t.read(pid, part_addr(i));
                    t.compute(pid, CYCLES_PER_MOVE);

                    let part = &mut parts[i];
                    for d in 0..3 {
                        part.pos[d] += part.vel[d];
                        // Specular walls.
                        if part.pos[d] < 0.0 {
                            part.pos[d] = -part.pos[d];
                            part.vel[d] = -part.vel[d];
                        }
                        let hi = dims[d];
                        if part.pos[d] > hi {
                            part.pos[d] = 2.0 * hi - part.pos[d];
                            part.vel[d] = -part.vel[d];
                        }
                    }
                    t.write(pid, part_addr(i));
                    t.unlock(pid, li);

                    // Read-modify-write of the cell record (the
                    // unstructured shared traffic), lock-ordered per
                    // cell line.
                    let c = cell_of(&parts[i].pos);
                    let lc = cell_lock(cells.addr(c as u64));
                    t.lock(pid, lc);
                    t.read(pid, cells.addr(c as u64));
                    t.write(pid, cells.addr(c as u64));
                    t.unlock(pid, lc);

                    // Collision with this particle's paired partner,
                    // wherever (whosever) it is.
                    if let Some(j) = partner_of[i] {
                        let lj = part_lock(part_addr(j));
                        t.lock(pid, lj);
                        t.read(pid, part_addr(j));
                        t.compute(pid, CYCLES_PER_COLLISION);
                        t.write(pid, part_addr(j));
                        t.unlock(pid, lj);
                        // Head-on hard-sphere exchange: swap the two
                        // velocity vectors (momentum conserving for
                        // equal masses).
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        let (lo, hi) = parts.split_at_mut(b);
                        std::mem::swap(&mut lo[a].vel, &mut hi[0].vel);
                    }
                }
            }
            t.barrier_all();
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::Op;
    use simcore::space::Placement;

    #[test]
    fn trace_valid_and_deterministic() {
        let app = Mp3d::small();
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
        assert_eq!(t1.n_barriers as usize, app.steps + 1);
    }

    #[test]
    fn cell_traffic_is_shared_by_all_procs() {
        let t = Mp3d::small().generate(4);
        // Every processor must read round-robin-placed (cell) data.
        for (p, ops) in t.per_proc.iter().enumerate() {
            let shared_reads = ops
                .iter()
                .filter(|o| match o.unpack() {
                    Op::Read(a) => {
                        matches!(t.space.placement_of(a), Some(Placement::RoundRobin))
                    }
                    _ => false,
                })
                .count();
            assert!(shared_reads > 0, "proc {p} never read the cell array");
        }
    }

    #[test]
    fn collisions_touch_remote_particles() {
        let t = Mp3d::small().generate(4);
        // Proc 0 should read particle records owned by other procs
        // (collision partners).
        let mut foreign = 0;
        for op in &t.per_proc[0] {
            if let Op::Read(a) = op.unpack() {
                if let Some(Placement::Owner(o)) = t.space.placement_of(a) {
                    if o != 0 {
                        foreign += 1;
                    }
                }
            }
        }
        assert!(foreign > 0, "no cross-processor collision reads");
    }

    #[test]
    fn communication_volume_is_high() {
        // MP3D is the stress test: shared (cell + foreign particle)
        // references should be a large fraction of all references.
        let t = Mp3d::small().generate(8);
        let mut shared = 0u64;
        let mut total = 0u64;
        for (p, ops) in t.per_proc.iter().enumerate() {
            for op in ops {
                if let Op::Read(a) | Op::Write(a) = op.unpack() {
                    total += 1;
                    match t.space.placement_of(a) {
                        Some(Placement::RoundRobin) => shared += 1,
                        Some(Placement::Owner(o)) if o as usize != p => shared += 1,
                        _ => {}
                    }
                }
            }
        }
        let frac = shared as f64 / total as f64;
        assert!(frac > 0.25, "shared fraction {frac} too low for MP3D");
    }
}
