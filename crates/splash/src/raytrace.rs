//! Recursive ray tracer (SPLASH-2 Raytrace; the paper renders the SPD
//! "Balls4" scene).
//!
//! "Both [Raytrace and Volrend] have a pixel plane that is divided
//! among processors in the same manner as the grid in Ocean, and
//! processors write only their own assigned pixels. The main data
//! structure in both programs is a large volume data set that is read
//! only and is distributed randomly among processors. ... the rays that
//! a processor shoots through its assigned pixels ... do reflect in
//! Raytrace. Thus, Raytrace has much larger and more unstructured
//! working sets" (§3.2).
//!
//! The scene is a deterministic fractal sphere pyramid (the classic SPD
//! "balls" construction: one parent sphere with nine children at 1/3
//! scale, recursively) over a ground plane, traced through an octree
//! acceleration structure with shadow rays and specular reflection.
//! The rendering is computed for real; tests check the octree traversal
//! against brute-force intersection.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::Placement;

use crate::util::TilePartition;
use crate::SplashApp;

/// Cycles per ray-sphere intersection test.
const CYCLES_PER_TEST: u64 = 100;
/// Cycles per octree node step.
const CYCLES_PER_NODE: u64 = 40;
/// Cycles per shading computation.
const CYCLES_PER_SHADE: u64 = 140;
/// Bytes per sphere record (center, radius, material: one line).
const SPHERE_BYTES: u64 = 64;
/// Bytes per octree node record (bbox + children/leaf list header).
const NODE_BYTES: u64 = 64;
/// Max spheres per octree leaf before splitting.
const LEAF_CAP: usize = 8;
/// Max octree depth.
const MAX_OCT_DEPTH: usize = 8;
/// Pixel-tile side for the interleaved work partition.
const TILE: usize = 4;

/// A sphere in the scene.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Center.
    pub c: [f64; 3],
    /// Radius.
    pub r: f64,
    /// Specular reflectance (0..1).
    pub reflect: f64,
}

/// A ray with origin and (normalized) direction.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Origin.
    pub o: [f64; 3],
    /// Direction (unit length).
    pub d: [f64; 3],
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn add_scaled(a: [f64; 3], b: [f64; 3], s: f64) -> [f64; 3] {
    [a[0] + b[0] * s, a[1] + b[1] * s, a[2] + b[2] * s]
}

fn normalize(a: [f64; 3]) -> [f64; 3] {
    let l = dot(a, a).sqrt();
    [a[0] / l, a[1] / l, a[2] / l]
}

/// Nearest positive intersection parameter of `ray` with `s`, if any.
pub fn hit_sphere(ray: &Ray, s: &Sphere) -> Option<f64> {
    let oc = sub(ray.o, s.c);
    let b = dot(oc, ray.d);
    let c = dot(oc, oc) - s.r * s.r;
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t0 = -b - sq;
    if t0 > 1e-9 {
        return Some(t0);
    }
    let t1 = -b + sq;
    (t1 > 1e-9).then_some(t1)
}

/// Builds the SPD-style fractal ball scene: `depth` recursion levels.
/// Depth 4 yields 1 + 9 + 81 + 729 + 6561 = 7381 spheres (Balls4).
pub fn balls_scene(depth: usize) -> Vec<Sphere> {
    let mut out = Vec::new();
    fn recur(out: &mut Vec<Sphere>, c: [f64; 3], r: f64, depth: usize) {
        out.push(Sphere { c, r, reflect: 0.7 });
        if depth == 0 {
            return;
        }
        let cr = r / 3.0;
        let off = r + cr;
        // Nine children: eight around the equator-ish ring plus one on
        // top (the SPD flake arrangement).
        for k in 0..8 {
            let a = std::f64::consts::PI * 2.0 * k as f64 / 8.0;
            let (s, co) = a.sin_cos();
            recur(
                out,
                [c[0] + off * co, c[1] + off * s, c[2] - r * 0.3],
                cr,
                depth - 1,
            );
        }
        recur(out, [c[0], c[1], c[2] + off], cr, depth - 1);
    }
    recur(&mut out, [0.0, 0.0, 0.0], 1.0, depth);
    out
}

/// Octree over sphere indices.
pub struct SceneOctree {
    nodes: Vec<OctNode>,
    spheres: Vec<Sphere>,
}

struct OctNode {
    lo: [f64; 3],
    hi: [f64; 3],
    children: Option<[usize; 8]>,
    items: Vec<u32>,
}

fn sphere_overlaps_box(s: &Sphere, lo: &[f64; 3], hi: &[f64; 3]) -> bool {
    let mut d2 = 0.0;
    for d in 0..3 {
        let v = s.c[d].clamp(lo[d], hi[d]) - s.c[d];
        d2 += v * v;
    }
    d2 <= s.r * s.r
}

fn ray_hits_box(ray: &Ray, lo: &[f64; 3], hi: &[f64; 3]) -> bool {
    let mut tmin = 0.0f64;
    let mut tmax = f64::INFINITY;
    for d in 0..3 {
        if ray.d[d].abs() < 1e-12 {
            if ray.o[d] < lo[d] || ray.o[d] > hi[d] {
                return false;
            }
            continue;
        }
        let inv = 1.0 / ray.d[d];
        let (t0, t1) = {
            let a = (lo[d] - ray.o[d]) * inv;
            let b = (hi[d] - ray.o[d]) * inv;
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        };
        tmin = tmin.max(t0);
        tmax = tmax.min(t1);
        if tmin > tmax {
            return false;
        }
    }
    true
}

impl SceneOctree {
    /// Builds the octree over `spheres`.
    pub fn build(spheres: Vec<Sphere>) -> SceneOctree {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for s in &spheres {
            for d in 0..3 {
                lo[d] = lo[d].min(s.c[d] - s.r);
                hi[d] = hi[d].max(s.c[d] + s.r);
            }
        }
        let items: Vec<u32> = (0..spheres.len() as u32).collect();
        let mut tree = SceneOctree {
            nodes: vec![OctNode {
                lo,
                hi,
                children: None,
                items,
            }],
            spheres,
        };
        tree.split(0, 0);
        tree
    }

    fn split(&mut self, node: usize, depth: usize) {
        if self.nodes[node].items.len() <= LEAF_CAP || depth >= MAX_OCT_DEPTH {
            return;
        }
        let (lo, hi) = (self.nodes[node].lo, self.nodes[node].hi);
        let mid = [
            (lo[0] + hi[0]) * 0.5,
            (lo[1] + hi[1]) * 0.5,
            (lo[2] + hi[2]) * 0.5,
        ];
        let items = std::mem::take(&mut self.nodes[node].items);
        let parent_count = items.len();
        let mut kids = [0usize; 8];
        for (o, kid) in kids.iter_mut().enumerate() {
            let clo = [
                if o & 4 != 0 { mid[0] } else { lo[0] },
                if o & 2 != 0 { mid[1] } else { lo[1] },
                if o & 1 != 0 { mid[2] } else { lo[2] },
            ];
            let chi = [
                if o & 4 != 0 { hi[0] } else { mid[0] },
                if o & 2 != 0 { hi[1] } else { mid[1] },
                if o & 1 != 0 { hi[2] } else { mid[2] },
            ];
            let sub: Vec<u32> = items
                .iter()
                .copied()
                .filter(|&i| sphere_overlaps_box(&self.spheres[i as usize], &clo, &chi))
                .collect();
            *kid = self.nodes.len();
            self.nodes.push(OctNode {
                lo: clo,
                hi: chi,
                children: None,
                items: sub,
            });
        }
        self.nodes[node].children = Some(kids);
        for kid in kids {
            // Guard against non-shrinking recursion when a child
            // inherits everything its parent held.
            if self.nodes[kid].items.len() < parent_count {
                self.split(kid, depth + 1);
            }
        }
    }

    /// Number of octree nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The spheres.
    pub fn spheres(&self) -> &[Sphere] {
        &self.spheres
    }

    /// Nearest hit of `ray`, visiting nodes/spheres through `visit`
    /// callbacks `(node_or_sphere_index, is_sphere)`.
    pub fn trace(
        &self,
        ray: &Ray,
        mut visit: Option<&mut dyn FnMut(usize, bool)>,
    ) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        let mut tested = std::collections::HashSet::new();
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !ray_hits_box(ray, &node.lo, &node.hi) {
                continue;
            }
            if let Some(v) = visit.as_deref_mut() {
                v(n, false);
            }
            match node.children {
                Some(kids) => stack.extend(kids),
                None => {
                    for &i in &node.items {
                        if !tested.insert(i) {
                            continue;
                        }
                        if let Some(v) = visit.as_deref_mut() {
                            v(i as usize, true);
                        }
                        if let Some(t) = hit_sphere(ray, &self.spheres[i as usize]) {
                            if best.is_none_or(|(bt, _)| t < bt) {
                                best = Some((t, i as usize));
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// Brute-force nearest hit, for verification.
    pub fn trace_brute(&self, ray: &Ray) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in self.spheres.iter().enumerate() {
            if let Some(t) = hit_sphere(ray, s) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        best
    }
}

/// Raytrace workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Raytrace {
    /// Image side in pixels (square image).
    pub image: usize,
    /// Fractal recursion depth of the ball scene (4 = Balls4).
    pub balls_depth: usize,
    /// Maximum reflection bounces.
    pub max_bounce: usize,
}

impl Raytrace {
    /// The paper's scene: Balls4 (7381 spheres) at a 256×256 image
    /// (SPLASH-2's default antialiased resolution class).
    pub fn paper() -> Self {
        Raytrace {
            image: 256,
            balls_depth: 4,
            max_bounce: 4,
        }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Raytrace {
            image: 32,
            balls_depth: 2,
            max_bounce: 2,
        }
    }

    /// Renders the image, calling `touch(pixel, node_or_sphere, is_sphere)`
    /// for every data access if given. Returns grayscale pixels.
    pub fn render(
        &self,
        tree: &SceneOctree,
        mut touch: Option<&mut dyn FnMut(usize, usize, bool)>,
    ) -> Vec<f32> {
        let w = self.image;
        let light = normalize([0.6, -0.4, 0.8]);
        let mut img = vec![0.0f32; w * w];
        for py in 0..w {
            for px in 0..w {
                let pixel = py * w + px;
                // Orthographic camera looking down -z from above.
                let x = (px as f64 / w as f64 - 0.5) * 6.0;
                let y = (py as f64 / w as f64 - 0.5) * 6.0;
                let mut ray = Ray {
                    o: [x, y, 8.0],
                    d: [0.0, 0.0, -1.0],
                };
                let mut weight = 1.0f64;
                let mut color = 0.0f64;
                for _bounce in 0..=self.max_bounce {
                    let mut cb = touch
                        .as_deref_mut()
                        .map(|f| move |i: usize, is_sphere: bool| f(pixel, i, is_sphere));
                    let hit =
                        tree.trace(&ray, cb.as_mut().map(|f| f as &mut dyn FnMut(usize, bool)));
                    let Some((t, si)) = hit else {
                        color += weight * 0.1; // background
                        break;
                    };
                    let s = tree.spheres()[si];
                    let p = add_scaled(ray.o, ray.d, t);
                    let n = normalize(sub(p, s.c));
                    // Shadow ray.
                    let sray = Ray {
                        o: add_scaled(p, n, 1e-6),
                        d: light,
                    };
                    let mut cb2 = touch
                        .as_deref_mut()
                        .map(|f| move |i: usize, is_sphere: bool| f(pixel, i, is_sphere));
                    let lit = tree
                        .trace(
                            &sray,
                            cb2.as_mut().map(|f| f as &mut dyn FnMut(usize, bool)),
                        )
                        .is_none();
                    let diffuse = if lit { dot(n, light).max(0.0) } else { 0.0 };
                    color += weight * (0.15 + 0.7 * diffuse) * (1.0 - s.reflect);
                    weight *= s.reflect;
                    if weight < 0.02 {
                        break;
                    }
                    // Reflect.
                    let r = add_scaled(ray.d, n, -2.0 * dot(ray.d, n));
                    ray = Ray {
                        o: add_scaled(p, n, 1e-6),
                        d: normalize(r),
                    };
                }
                img[pixel] = color as f32;
            }
        }
        img
    }
}

impl SplashApp for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let tree = SceneOctree::build(balls_scene(self.balls_depth));
        let w = self.image;
        // Small interleaved tiles stand in for the original's
        // distributed task queues: tight load balance, with cluster
        // mates on adjacent tiles.
        let tp = TilePartition::new(w, TILE.min(w), n_procs);

        let mut t = TraceBuilder::new(n_procs);

        // Read-only scene data, distributed round-robin as the paper
        // says.
        let spheres = t.space_mut().alloc_array(
            tree.spheres().len() as u64,
            SPHERE_BYTES,
            Placement::RoundRobin,
        );
        let nodes =
            t.space_mut()
                .alloc_array(tree.n_nodes() as u64, NODE_BYTES, Placement::RoundRobin);

        // Pixel plane: each processor's owned pixels are owner-local.
        let tiles: Vec<simcore::space::SharedArray> = (0..n_procs)
            .map(|p| {
                t.space_mut().alloc_array(
                    tp.pixels_of(p).max(1) as u64,
                    4,
                    Placement::Owner(p as u32),
                )
            })
            .collect();

        // Render once, collecting accesses per pixel; then emit per
        // processor in its tile-scan order (the order it really works
        // in).
        let mut per_pixel: Vec<Vec<(u32, bool)>> = vec![Vec::new(); w * w];
        let _img = self.render(
            &tree,
            Some(&mut |pixel, idx, is_sphere| {
                per_pixel[pixel].push((idx as u32, is_sphere));
            }),
        );

        for p in 0..n_procs {
            let pid = p as u32;
            let mut local = 0u64;
            for tile in tp.tiles_of(p) {
                for (px, py) in tp.tile_pixels(tile) {
                    let pixel = py * w + px;
                    for &(idx, is_sphere) in &per_pixel[pixel] {
                        if is_sphere {
                            t.read(pid, spheres.addr(idx as u64));
                            t.compute(pid, CYCLES_PER_TEST);
                        } else {
                            t.read(pid, nodes.addr(idx as u64));
                            t.compute(pid, CYCLES_PER_NODE);
                        }
                    }
                    t.compute(pid, CYCLES_PER_SHADE);
                    t.write(pid, tiles[p].addr(local));
                    local += 1;
                }
            }
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_intersection_basics() {
        let s = Sphere {
            c: [0.0, 0.0, 0.0],
            r: 1.0,
            reflect: 0.0,
        };
        let hit = hit_sphere(
            &Ray {
                o: [0.0, 0.0, 5.0],
                d: [0.0, 0.0, -1.0],
            },
            &s,
        );
        assert!((hit.unwrap() - 4.0).abs() < 1e-9);
        let miss = hit_sphere(
            &Ray {
                o: [3.0, 0.0, 5.0],
                d: [0.0, 0.0, -1.0],
            },
            &s,
        );
        assert!(miss.is_none());
        // From inside: hits the far side.
        let inside = hit_sphere(
            &Ray {
                o: [0.0, 0.0, 0.0],
                d: [0.0, 0.0, 1.0],
            },
            &s,
        );
        assert!((inside.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balls_scene_counts() {
        assert_eq!(balls_scene(0).len(), 1);
        assert_eq!(balls_scene(1).len(), 10);
        assert_eq!(balls_scene(2).len(), 91);
        assert_eq!(balls_scene(4).len(), 7381); // Balls4
    }

    #[test]
    fn octree_matches_brute_force() {
        let tree = SceneOctree::build(balls_scene(2));
        let mut rng = crate::util::rng_for("raytrace-test", 0);
        for _ in 0..200 {
            let ray = Ray {
                o: [rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0), 8.0],
                d: normalize([rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3), -1.0]),
            };
            let fast = tree.trace(&ray, None);
            let brute = tree.trace_brute(&ray);
            match (fast, brute) {
                (None, None) => {}
                (Some((tf, _)), Some((tb, _))) => {
                    assert!((tf - tb).abs() < 1e-9, "t mismatch {tf} vs {tb}");
                }
                other => panic!("hit mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn image_has_contrast() {
        let app = Raytrace::small();
        let tree = SceneOctree::build(balls_scene(app.balls_depth));
        let img = app.render(&tree, None);
        let min = img.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = img.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > min + 0.1, "flat image: {min}..{max}");
    }

    #[test]
    fn trace_valid_and_deterministic() {
        let app = Raytrace::small();
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
    }

    #[test]
    fn scene_reads_are_shared_readonly() {
        use simcore::ops::Op;
        let t = Raytrace::small().generate(4);
        // No processor ever writes round-robin (scene) data.
        for ops in &t.per_proc {
            for op in ops {
                if let Op::Write(a) = op.unpack() {
                    assert!(matches!(t.space.placement_of(a), Some(Placement::Owner(_))));
                }
            }
        }
    }
}
