//! Blocked dense LU factorization (SPLASH-2 "LU, contiguous blocks").
//!
//! Paper configuration: a 512×512 matrix in 16×16 blocks (Table 2).
//! Blocks are assigned to processors by 2-D scatter over the most
//! square processor grid, and each block is allocated in its owner's
//! local memory (the paper: "Some application programs explicitly
//! place data"). Communication is low and travels along rows and
//! columns of the processor grid: at step `k`, the factored diagonal
//! block is read by all perimeter-block owners in row/column `k`, and
//! perimeter blocks are read by interior owners — "processors in the
//! same row (or column) of the processor grid access the same blocks,
//! there is some prefetching benefit in a clustered cache" (§4).
//!
//! The factorization is computed for real (no pivoting, on a
//! diagonally dominant matrix); tests verify `L·U = A`.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::SharedArray;

use crate::util::{proc_grid, rng_for};
use crate::SplashApp;

/// Cycles of CPU work charged per floating-point operation, covering
/// the flop itself plus the loop/index/register instructions around it.
const CYCLES_PER_FLOP: u64 = 4;

/// Blocked LU workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Lu {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Block dimension (b×b); must divide `n`.
    pub b: usize,
}

impl Lu {
    /// The paper's Table 2 size: 512×512, 16×16 blocks.
    pub fn paper() -> Self {
        Lu { n: 512, b: 16 }
    }

    /// Reduced size for tests.
    pub fn small() -> Self {
        Lu { n: 64, b: 8 }
    }
}

/// An n×n matrix stored block-major: block (I,J) is a contiguous b×b
/// run of `f64`, mirroring the simulated address layout.
#[derive(Debug, Clone)]
pub struct BlockedMatrix {
    /// Matrix dimension.
    pub n: usize,
    /// Block dimension.
    pub b: usize,
    /// Blocks per side.
    pub nb: usize,
    data: Vec<f64>,
}

impl BlockedMatrix {
    /// Builds a deterministic, diagonally dominant random matrix.
    pub fn random_dd(n: usize, b: usize) -> Self {
        assert!(n.is_multiple_of(b), "block size must divide matrix size");
        let mut rng = rng_for("lu", (n * 1000 + b) as u64);
        let mut m = BlockedMatrix {
            n,
            b,
            nb: n / b,
            data: vec![0.0; n * n],
        };
        for i in 0..n {
            for j in 0..n {
                *m.at_mut(i, j) = rng.gen_range(-1.0..1.0);
            }
            *m.at_mut(i, i) += n as f64;
        }
        m
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        let (bi, bj) = (i / self.b, j / self.b);
        let (ii, jj) = (i % self.b, j % self.b);
        (bi * self.nb + bj) * self.b * self.b + ii * self.b + jj
    }

    /// Element accessor.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        let k = self.idx(i, j);
        &mut self.data[k]
    }

    /// Right-looking blocked LU without pivoting, returning the flop
    /// count. After this, the lower triangle (unit diagonal implied)
    /// holds L and the upper triangle holds U.
    pub fn factor(&mut self) -> u64 {
        let mut flops = 0u64;
        let n = self.n;
        for k in 0..n {
            let pivot = self.at(k, k);
            assert!(pivot.abs() > 1e-12, "zero pivot without pivoting");
            for i in k + 1..n {
                *self.at_mut(i, k) /= pivot;
                flops += 1;
            }
            for i in k + 1..n {
                let lik = self.at(i, k);
                for j in k + 1..n {
                    *self.at_mut(i, j) -= lik * self.at(k, j);
                    flops += 2;
                }
            }
        }
        flops
    }

    /// Max `|(L·U - A)[i][j]|` against a reference copy.
    pub fn residual(&self, original: &BlockedMatrix) -> f64 {
        let n = self.n;
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                let kmax = i.min(j);
                for k in 0..kmax {
                    s += self.at(i, k) * self.at(k, j);
                }
                // L has unit diagonal.
                s += if i <= j {
                    self.at(i, j)
                } else {
                    self.at(i, kmax) * self.at(kmax, j)
                };
                worst = worst.max((s - original.at(i, j)).abs());
            }
        }
        worst
    }
}

impl SplashApp for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let (n, b) = (self.n, self.b);
        assert!(n % b == 0);
        let nb = n / b;
        let (pr, pc) = proc_grid(n_procs);
        let owner = |bi: usize, bj: usize| -> u32 { ((bi % pr) * pc + (bj % pc)) as u32 };

        let mut t = TraceBuilder::new(n_procs);

        // One region per block, homed at its owner, mirroring SPLASH-2's
        // contiguous owner-local block allocation.
        let block_bytes = (b * b * 8) as u64;
        let mut blocks: Vec<SharedArray> = Vec::with_capacity(nb * nb);
        for bi in 0..nb {
            for bj in 0..nb {
                let base = t.space_mut().alloc_owned(block_bytes, owner(bi, bj));
                blocks.push(SharedArray {
                    base,
                    elem_bytes: 8,
                    len: (b * b) as u64,
                });
            }
        }
        let blk = |bi: usize, bj: usize| blocks[bi * nb + bj];

        // Run the real factorization once so the trace corresponds to a
        // genuine computation (and so tests can check numerics).
        let mut m = BlockedMatrix::random_dd(n, b);
        let _ = m.factor();

        let b3 = (b * b * b) as u64;
        let b2 = (b * b) as u64;
        for k in 0..nb {
            // Phase 1: factor the diagonal block (owner only).
            let p = owner(k, k);
            t.read_span(p, blk(k, k).base, block_bytes);
            t.compute(p, (2 * b3 / 3) * CYCLES_PER_FLOP + 2 * b2);
            t.write_span(p, blk(k, k).base, block_bytes);
            t.barrier_all();

            // Phase 2: perimeter blocks divide by the diagonal block.
            for j in k + 1..nb {
                let p = owner(k, j);
                t.read_span(p, blk(k, k).base, block_bytes); // remote diag
                t.read_span(p, blk(k, j).base, block_bytes);
                t.compute(p, b3 * CYCLES_PER_FLOP + 2 * b2);
                t.write_span(p, blk(k, j).base, block_bytes);
            }
            for i in k + 1..nb {
                let p = owner(i, k);
                t.read_span(p, blk(k, k).base, block_bytes);
                t.read_span(p, blk(i, k).base, block_bytes);
                t.compute(p, b3 * CYCLES_PER_FLOP + 2 * b2);
                t.write_span(p, blk(i, k).base, block_bytes);
            }
            t.barrier_all();

            // Phase 3: interior update A_ij -= A_ik * A_kj.
            for i in k + 1..nb {
                for j in k + 1..nb {
                    let p = owner(i, j);
                    t.read_span(p, blk(i, k).base, block_bytes);
                    t.read_span(p, blk(k, j).base, block_bytes);
                    t.read_span(p, blk(i, j).base, block_bytes);
                    t.compute(p, 2 * b3 * CYCLES_PER_FLOP + 3 * b2);
                    t.write_span(p, blk(i, j).base, block_bytes);
                }
            }
            t.barrier_all();
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::Op;

    #[test]
    fn factorization_is_correct() {
        let original = BlockedMatrix::random_dd(32, 8);
        let mut m = original.clone();
        let flops = m.factor();
        assert!(flops > 0);
        let res = m.residual(&original);
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn blocked_indexing_is_consistent() {
        let mut m = BlockedMatrix::random_dd(16, 4);
        *m.at_mut(5, 9) = 42.0;
        assert_eq!(m.at(5, 9), 42.0);
        // Distinct elements map to distinct slots.
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            for j in 0..16 {
                assert!(seen.insert(m.idx(i, j)));
            }
        }
    }

    #[test]
    fn trace_is_valid_and_deterministic() {
        let app = Lu::small();
        let t1 = app.generate(4);
        let t2 = app.generate(4);
        t1.validate().expect("valid trace");
        assert_eq!(t1.per_proc, t2.per_proc);
        assert_eq!(t1.n_barriers, 3 * (64 / 8) as u32 + 1);
    }

    #[test]
    fn all_procs_work_somewhere() {
        let t = Lu::small().generate(4);
        for (p, ops) in t.per_proc.iter().enumerate() {
            let refs = ops
                .iter()
                .filter(|o| matches!(o.unpack(), Op::Read(_) | Op::Write(_)))
                .count();
            assert!(refs > 0, "proc {p} never touched memory");
        }
    }

    #[test]
    fn diag_block_read_by_perimeter_owners() {
        // In step 0, the diagonal block must be read by more than one
        // processor (the perimeter owners).
        let app = Lu { n: 64, b: 8 };
        let t = app.generate(4);
        // The first allocated region is block (0,0).
        let diag_base = t.space.regions().next().unwrap().base;
        let readers: Vec<usize> = t
            .per_proc
            .iter()
            .enumerate()
            .filter(|(_, ops)| {
                ops.iter().any(|o| match o.unpack() {
                    Op::Read(a) => a >= diag_base && a < diag_base + 8 * 8 * 8,
                    _ => false,
                })
            })
            .map(|(p, _)| p)
            .collect();
        assert!(readers.len() > 1, "only {readers:?} read the diagonal");
    }
}
