//! Parallel radix sort (SPLASH-2 Radix).
//!
//! Paper configuration: 256K integer keys, radix 256. Each pass builds
//! per-processor digit histograms, combines them in a binary prefix
//! tree of shared histogram nodes, and then permutes keys into a
//! destination array — "processors using the values of their keys to
//! write these keys into random locations in a shared array" (§3.2).
//!
//! The shared histogram tree is the prefetch-heavy structure the paper
//! calls out: "Radix sort shows significant prefetching effects,
//! particularly on the shared histograms used to determine the sorting
//! permutations, but like in LU the merge times are significant (since
//! processors in a cluster are accessing the same histogram at the same
//! time)" (§4).
//!
//! The sort is computed for real; tests verify the result is sorted.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::SharedArray;

use crate::util::{chunk_range, rng_for};
use crate::SplashApp;

/// Cycles charged per key per pass for digit extraction and counting.
const CYCLES_PER_KEY: u64 = 12;

/// Locks hashed over destination lines shared by two scatter writers.
const N_SCATTER_LOCKS: u32 = 128;

/// Radix-sort workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Radix {
    /// Number of integer keys.
    pub n_keys: usize,
    /// Radix (digit base); must be a power of two.
    pub radix: usize,
    /// Keys are drawn uniformly below this bound; it determines the
    /// number of passes.
    pub max_key: u32,
}

impl Radix {
    /// The paper's Table 2 size: 256K keys, radix 256 (24-bit keys →
    /// three passes).
    pub fn paper() -> Self {
        Radix {
            n_keys: 262_144,
            radix: 256,
            max_key: 1 << 24,
        }
    }

    /// Reduced size for tests (two passes).
    pub fn small() -> Self {
        Radix {
            n_keys: 4096,
            radix: 256,
            max_key: 1 << 16,
        }
    }

    /// Number of digit passes.
    pub fn passes(&self) -> u32 {
        let bits_per_digit = self.radix.trailing_zeros();
        let key_bits = 32 - (self.max_key - 1).leading_zeros();
        key_bits.div_ceil(bits_per_digit)
    }

    /// The deterministic input keys.
    pub fn make_keys(&self) -> Vec<u32> {
        let mut rng = rng_for("radix", self.n_keys as u64);
        (0..self.n_keys)
            .map(|_| rng.gen_range(0..self.max_key))
            .collect()
    }
}

impl SplashApp for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let n = self.n_keys;
        let r = self.radix;
        assert!(r.is_power_of_two());
        let digit_bits = r.trailing_zeros();
        let passes = self.passes();

        let mut t = TraceBuilder::new(n_procs);
        let scatter_locks = t.new_locks(N_SCATTER_LOCKS);

        // Key arrays: each processor's chunk is owner-local.
        let alloc_keys = |t: &mut TraceBuilder| -> Vec<SharedArray> {
            (0..n_procs)
                .map(|p| {
                    let range = chunk_range(n, n_procs, p);
                    let base = t
                        .space_mut()
                        .alloc_owned((range.len() * 4) as u64, p as u32);
                    SharedArray {
                        base,
                        elem_bytes: 4,
                        len: range.len() as u64,
                    }
                })
                .collect()
        };
        let mut src_arr = alloc_keys(&mut t);
        let mut dst_arr = alloc_keys(&mut t);

        // Histogram prefix tree: leaves (one per processor) plus
        // internal nodes, each holding `radix` u32 counters. Internal
        // nodes live at the cluster-neutral location of their left
        // child's owner.
        let hist_bytes = (r * 4) as u64;
        let n_levels = (n_procs as f64).log2().ceil() as usize;
        let mut tree: Vec<Vec<SharedArray>> = Vec::new();
        {
            let leaves: Vec<SharedArray> = (0..n_procs)
                .map(|p| {
                    let base = t.space_mut().alloc_owned(hist_bytes, p as u32);
                    SharedArray {
                        base,
                        elem_bytes: 4,
                        len: r as u64,
                    }
                })
                .collect();
            tree.push(leaves);
            for l in 0..n_levels {
                let below = tree[l].len();
                let count = below.div_ceil(2);
                let nodes = (0..count)
                    .map(|i| {
                        let owner = ((i * 2) << (l + 1)).min(n_procs - 1) as u32;
                        let base = t.space_mut().alloc_owned(hist_bytes, owner);
                        SharedArray {
                            base,
                            elem_bytes: 4,
                            len: r as u64,
                        }
                    })
                    .collect();
                tree.push(nodes);
            }
        }

        // The real sort state.
        let mut keys = self.make_keys();

        for pass in 0..passes {
            let shift = pass * digit_bits;
            let digit = |k: u32| ((k >> shift) as usize) & (r - 1);

            // Phase 1: local histograms (read own keys sequentially).
            let mut hists: Vec<Vec<u32>> = vec![vec![0u32; r]; n_procs];
            for p in 0..n_procs {
                let range = chunk_range(n, n_procs, p);
                for &k in &keys[range.clone()] {
                    hists[p][digit(k)] += 1;
                }
                let pid = p as u32;
                t.read_span(pid, src_arr[p].base, (range.len() * 4) as u64);
                t.compute(pid, range.len() as u64 * CYCLES_PER_KEY);
                // Write the leaf histogram.
                t.write_span(pid, tree[0][p].base, hist_bytes);
            }
            t.barrier_all();

            // Phase 2: combine histograms up the tree. At level l, the
            // left-child owners read their sibling's node and write the
            // parent.
            for l in 0..n_levels {
                let below = tree[l].len();
                for i in 0..below.div_ceil(2) {
                    let owner = ((i * 2) << (l + 1)).min(n_procs - 1) as u32;
                    t.read_span(owner, tree[l][2 * i].base, hist_bytes);
                    if 2 * i + 1 < below {
                        t.read_span(owner, tree[l][2 * i + 1].base, hist_bytes);
                    }
                    t.compute(owner, r as u64 * 2);
                    t.write_span(owner, tree[l + 1][i].base, hist_bytes);
                }
                t.barrier_all();
            }

            // Phase 3: every processor reads the nodes on its root-to-
            // leaf path to compute its rank bases — the hot shared
            // reads where cluster-mates prefetch for each other.
            for p in 0..n_procs {
                let pid = p as u32;
                for (l, level) in tree.iter().enumerate().rev() {
                    let idx = p >> l;
                    if idx < level.len() {
                        t.read_span(pid, level[idx].base, hist_bytes);
                    }
                    // Sibling needed for the exclusive prefix.
                    if l > 0 {
                        let child = p >> (l - 1);
                        if child % 2 == 1 {
                            t.read_span(pid, tree[l - 1][child - 1].base, hist_bytes);
                        }
                    }
                }
                t.compute(pid, r as u64 * 3);
            }
            t.barrier_all();

            // Rank computation (done exactly, in Rust): global stable
            // counting sort order.
            let mut global = vec![0u64; r];
            for h in &hists {
                for (d, &c) in h.iter().enumerate() {
                    global[d] += c as u64;
                }
            }
            let mut digit_base = vec![0u64; r];
            let mut acc = 0u64;
            for d in 0..r {
                digit_base[d] = acc;
                acc += global[d];
            }
            // Per-processor starting offset within each digit bucket.
            let mut proc_digit_base: Vec<Vec<u64>> = vec![vec![0; r]; n_procs];
            for d in 0..r {
                let mut off = digit_base[d];
                for p in 0..n_procs {
                    proc_digit_base[p][d] = off;
                    off += hists[p][d] as u64;
                }
            }

            // Destination lines written by more than one processor this
            // pass: adjacent rank segments abut mid-line (16 keys per
            // line), so the boundary lines are genuinely write-shared.
            // Segments are contiguous in (digit, proc) rank order, so
            // only a segment's first line can be shared with the
            // previous writer's last line.
            let dest_line = |dest: u64| {
                let dp = crate::util::chunk_owner(n, n_procs, dest as usize);
                let local = dest as usize - chunk_range(n, n_procs, dp).start;
                simcore::line_of(dst_arr[dp].addr(local as u64))
            };
            let mut shared_lines = std::collections::HashSet::new();
            let mut prev: Option<(usize, u64)> = None;
            for d in 0..r {
                for p in 0..n_procs {
                    let cnt = hists[p][d] as u64;
                    if cnt == 0 {
                        continue;
                    }
                    let start = proc_digit_base[p][d];
                    let first = dest_line(start);
                    if let Some((pw, pl)) = prev {
                        if pw != p && pl == first {
                            shared_lines.insert(first);
                        }
                    }
                    prev = Some((p, dest_line(start + cnt - 1)));
                }
            }

            // Phase 4: permutation. Each processor re-reads its keys
            // and writes each to its destination slot (scattered,
            // largely remote, hidden-latency writes). Writes landing on
            // a shared boundary line take a line-hashed scatter lock —
            // the trace-level analogue of the SPLASH rank locks — so
            // the false sharing stays but is ordered.
            let mut new_keys = vec![0u32; n];
            for p in 0..n_procs {
                let pid = p as u32;
                let range = chunk_range(n, n_procs, p);
                t.read_span(pid, src_arr[p].base, (range.len() * 4) as u64);
                let mut cursors = proc_digit_base[p].clone();
                for &k in &keys[range] {
                    let d = digit(k);
                    let dest = cursors[d] as usize;
                    cursors[d] += 1;
                    new_keys[dest] = k;
                    let dp = crate::util::chunk_owner(n, n_procs, dest);
                    let local = dest - chunk_range(n, n_procs, dp).start;
                    let addr = dst_arr[dp].addr(local as u64);
                    if shared_lines.contains(&simcore::line_of(addr)) {
                        let lid = scatter_locks
                            + (simcore::line_of(addr) % N_SCATTER_LOCKS as u64) as u32;
                        t.lock(pid, lid);
                        t.write(pid, addr);
                        t.unlock(pid, lid);
                    } else {
                        t.write(pid, addr);
                    }
                    t.compute(pid, CYCLES_PER_KEY);
                }
            }
            t.barrier_all();

            keys = new_keys;
            std::mem::swap(&mut src_arr, &mut dst_arr);
        }

        // Stash the sorted result for verification by tests through a
        // quick re-run of the same deterministic pipeline.
        t.finish()
    }
}

/// Runs the same deterministic sort the trace generator performs and
/// returns the sorted keys (used by tests and examples).
pub fn sorted_keys(cfg: &Radix) -> Vec<u32> {
    let r = cfg.radix;
    let digit_bits = r.trailing_zeros();
    let mut keys = cfg.make_keys();
    for pass in 0..cfg.passes() {
        let shift = pass * digit_bits;
        let mut counts = vec![0u64; r];
        for &k in &keys {
            counts[((k >> shift) as usize) & (r - 1)] += 1;
        }
        let mut base = vec![0u64; r];
        let mut acc = 0;
        for d in 0..r {
            base[d] = acc;
            acc += counts[d];
        }
        let mut out = vec![0u32; keys.len()];
        for &k in &keys {
            let d = ((k >> shift) as usize) & (r - 1);
            out[base[d] as usize] = k;
            base[d] += 1;
        }
        keys = out;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::Op;

    #[test]
    fn passes_counted_correctly() {
        assert_eq!(Radix::paper().passes(), 3);
        assert_eq!(Radix::small().passes(), 2);
        let one = Radix {
            n_keys: 16,
            radix: 256,
            max_key: 256,
        };
        assert_eq!(one.passes(), 1);
    }

    #[test]
    fn sort_is_correct() {
        let cfg = Radix::small();
        let sorted = sorted_keys(&cfg);
        let mut expect = cfg.make_keys();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn trace_valid_and_deterministic() {
        let cfg = Radix {
            n_keys: 1024,
            radix: 64,
            max_key: 1 << 12,
        };
        let t1 = cfg.generate(4);
        let t2 = cfg.generate(4);
        t1.validate().unwrap();
        assert_eq!(t1.per_proc, t2.per_proc);
    }

    #[test]
    fn permutation_writes_are_scattered() {
        let cfg = Radix::small();
        let t = cfg.generate(8);
        // Proc 0 must write into several other processors' key chunks.
        use simcore::space::Placement;
        let mut owners = std::collections::HashSet::new();
        for op in &t.per_proc[0] {
            if let Op::Write(a) = op.unpack() {
                if let Some(Placement::Owner(o)) = t.space.placement_of(a) {
                    owners.insert(o);
                }
            }
        }
        assert!(owners.len() >= 6, "scatter writes reached only {owners:?}");
    }

    #[test]
    fn histogram_tree_is_shared_hot_data() {
        // The root node must be read by every processor in phase 3.
        let cfg = Radix {
            n_keys: 1024,
            radix: 64,
            max_key: 1 << 12,
        };
        let n_procs = 4;
        let t = cfg.generate(n_procs);
        // Find the root region: the last histogram allocation. Easier:
        // count how many procs read *some* address also read by all
        // others — use the tree path property instead: every proc reads
        // at least one common line.
        let mut common: Option<std::collections::HashSet<u64>> = None;
        for ops in &t.per_proc {
            let lines: std::collections::HashSet<u64> = ops
                .iter()
                .filter_map(|o| match o.unpack() {
                    Op::Read(a) => Some(simcore::addr::line_of(a)),
                    _ => None,
                })
                .collect();
            common = Some(match common {
                None => lines,
                Some(c) => c.intersection(&lines).copied().collect(),
            });
        }
        assert!(
            !common.unwrap().is_empty(),
            "no line read by all processors — histogram tree missing"
        );
    }
}
