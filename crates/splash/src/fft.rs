//! Six-step 1-D FFT (SPLASH-2 FFT, radix-√n).
//!
//! The n complex points are arranged as a √n×√n matrix; each processor
//! owns a contiguous chunk of rows, allocated in its local memory. The
//! six steps are: transpose, row FFTs, twiddle multiply, transpose, row
//! FFTs, transpose. "The communication is in a blocked matrix
//! transpose, in which each processor reads a different block of data
//! from every other processor" — all-to-all, so clustering can only
//! remove the fraction `(C-1)/(P-1)` of transpose traffic (§4).
//!
//! The butterflies are computed for real; tests check the transform
//! against a naive DFT and the forward/inverse round trip.

use simcore::ops::{Trace, TraceBuilder};
use simcore::space::SharedArray;

use crate::util::{chunk_range, rng_for};
use crate::SplashApp;

/// Cycles charged per complex butterfly: 10 flops plus twiddle
/// generation, index arithmetic and loop overhead on a scalar
/// pipeline. Calibrated so the transpose communication is ~10% of the
/// unclustered execution time, as in the paper's Figure 2.
const CYCLES_PER_BUTTERFLY: u64 = 55;

/// A complex number; 16 bytes, matching the simulated element size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Complex zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    fn expi(theta: f64) -> C64 {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

/// In-place iterative radix-2 FFT of a power-of-two slice.
/// `sign = -1.0` forward, `+1.0` inverse (unnormalized).
pub fn fft_in_place(a: &mut [C64], sign: f64) {
    let n = a.len();
    assert!(n.is_power_of_two());
    // Bit reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::expi(ang);
        let mut i = 0;
        while i < n {
            let mut w = C64 { re: 1.0, im: 0.0 };
            for k in 0..len / 2 {
                let u = a[i + k];
                let v = a[i + k + len / 2].mul(w);
                a[i + k] = u.add(v);
                a[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Full six-step 1-D FFT over `data` (length m*m), for the numeric
/// check. Returns the transformed sequence in natural order.
pub fn six_step_fft(data: &[C64], m: usize) -> Vec<C64> {
    assert_eq!(data.len(), m * m);
    // Interpret x[i*m + j]; the six-step algorithm computes the 1-D DFT
    // via: transpose, m-point FFTs, twiddle, transpose, m-point FFTs,
    // transpose.
    let mut a: Vec<C64> = data.to_vec();
    let mut b = vec![C64::ZERO; m * m];
    // Step 1: transpose.
    for i in 0..m {
        for j in 0..m {
            b[j * m + i] = a[i * m + j];
        }
    }
    // Step 2: FFT each row of b.
    for r in 0..m {
        fft_in_place(&mut b[r * m..(r + 1) * m], -1.0);
    }
    // Step 3: twiddle: b[j][i] *= exp(-2πi·ij/n).
    let n = (m * m) as f64;
    for j in 0..m {
        for i in 0..m {
            let w = C64::expi(-2.0 * std::f64::consts::PI * (i * j) as f64 / n);
            b[j * m + i] = b[j * m + i].mul(w);
        }
    }
    // Step 4: transpose back.
    for i in 0..m {
        for j in 0..m {
            a[i * m + j] = b[j * m + i];
        }
    }
    // Step 5: FFT each row of a.
    for r in 0..m {
        fft_in_place(&mut a[r * m..(r + 1) * m], -1.0);
    }
    // Step 6: transpose into final order: X[k] with k = k2*m + k1.
    for i in 0..m {
        for j in 0..m {
            b[j * m + i] = a[i * m + j];
        }
    }
    b
}

/// Naive O(n²) DFT for verification.
pub fn dft(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut s = C64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let w = C64::expi(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                s = s.add(v.mul(w));
            }
            s
        })
        .collect()
}

/// FFT workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fft {
    /// Total complex points; must be a power of four (so the matrix is
    /// square with power-of-two sides).
    pub n_points: usize,
}

impl Fft {
    /// The paper's Table 2 size: 64K complex points.
    pub fn paper() -> Self {
        Fft { n_points: 65536 }
    }

    /// Reduced size for tests (still ≥ one row per processor at 64
    /// processors).
    pub fn small() -> Self {
        Fft { n_points: 4096 }
    }
}

impl Fft {
    fn emit_transpose(
        &self,
        t: &mut TraceBuilder,
        src: &[SharedArray],
        dst: &[SharedArray],
        m: usize,
        n_procs: usize,
    ) {
        // dst[j][i] = src[i][j]. Processor p owns dst rows chunk(p) and
        // reads, for every source row i, the contiguous 16-byte elements
        // src[i][chunk(p)] — a block read from row-owner q. Processors
        // start from their own rows (q = p) and proceed round-robin to
        // stagger remote traffic, as SPLASH does.
        for p in 0..n_procs {
            let mine = chunk_range(m, n_procs, p);
            for qoff in 0..n_procs {
                let q = (p + qoff) % n_procs;
                let theirs = chunk_range(m, n_procs, q);
                for i in theirs.clone() {
                    // Read src[i][mine] — contiguous elements.
                    let bytes = (mine.len() * 16) as u64;
                    t.read_span(p as u32, src[i].addr(mine.start as u64), bytes);
                    // Write dst[j][i] for each owned row j.
                    for j in mine.clone() {
                        t.write(p as u32, dst[j].addr(i as u64));
                    }
                    t.compute(p as u32, mine.len() as u64 * 2);
                }
            }
        }
    }

    fn emit_row_ffts(&self, t: &mut TraceBuilder, rows: &[SharedArray], m: usize, n_procs: usize) {
        let passes = (m as f64).log2() as u64;
        let row_bytes = (m * 16) as u64;
        for p in 0..n_procs {
            for r in chunk_range(m, n_procs, p) {
                for _pass in 0..passes {
                    t.read_span(p as u32, rows[r].base, row_bytes);
                    t.compute(p as u32, (m as u64 / 2) * CYCLES_PER_BUTTERFLY);
                    t.write_span(p as u32, rows[r].base, row_bytes);
                }
            }
        }
    }
}

impl SplashApp for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn generate(&self, n_procs: usize) -> Trace {
        let n = self.n_points;
        let m = (n as f64).sqrt() as usize;
        assert_eq!(m * m, n, "n_points must be a perfect square");
        assert!(m.is_power_of_two());
        assert!(m >= n_procs, "need at least one row per processor");

        // Run the real transform once (kept small enough to be cheap).
        if n <= 4096 {
            let mut rng = rng_for("fft", n as u64);
            let x: Vec<C64> = (0..n)
                .map(|_| C64 {
                    re: rng.gen_range(-1.0..1.0),
                    im: rng.gen_range(-1.0..1.0),
                })
                .collect();
            let _ = six_step_fft(&x, m);
        }

        let mut t = TraceBuilder::new(n_procs);
        // Row-major matrices A and B; each processor's row chunk is a
        // separate owner-local region.
        let alloc_rows = |t: &mut TraceBuilder| -> Vec<SharedArray> {
            let mut rows = Vec::with_capacity(m);
            for p in 0..n_procs {
                let r = chunk_range(m, n_procs, p);
                let base = t
                    .space_mut()
                    .alloc_owned((r.len() * m * 16) as u64, p as u32);
                for (k, _) in r.enumerate() {
                    rows.push(SharedArray {
                        base: base + (k * m * 16) as u64,
                        elem_bytes: 16,
                        len: m as u64,
                    });
                }
            }
            rows
        };
        let a = alloc_rows(&mut t);
        let b = alloc_rows(&mut t);

        // Step 0: touch own rows (initialization).
        for p in 0..n_procs {
            for r in chunk_range(m, n_procs, p) {
                t.write_span(p as u32, a[r].base, (m * 16) as u64);
                t.compute(p as u32, m as u64);
            }
        }
        t.barrier_all();
        // Step 1: transpose A -> B.
        self.emit_transpose(&mut t, &a, &b, m, n_procs);
        t.barrier_all();
        // Step 2: FFT rows of B.
        self.emit_row_ffts(&mut t, &b, m, n_procs);
        // Step 3: twiddle multiply (local, fused over own rows).
        let row_bytes = (m * 16) as u64;
        for p in 0..n_procs {
            for r in chunk_range(m, n_procs, p) {
                t.read_span(p as u32, b[r].base, row_bytes);
                t.compute(p as u32, m as u64 * 6);
                t.write_span(p as u32, b[r].base, row_bytes);
            }
        }
        t.barrier_all();
        // Step 4: transpose B -> A.
        self.emit_transpose(&mut t, &b, &a, m, n_procs);
        t.barrier_all();
        // Step 5: FFT rows of A.
        self.emit_row_ffts(&mut t, &a, m, n_procs);
        t.barrier_all();
        // Step 6: transpose A -> B.
        self.emit_transpose(&mut t, &a, &b, m, n_procs);
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[C64], b: &[C64], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let mut rng = rng_for("fft-test", 1);
        let x: Vec<C64> = (0..32)
            .map(|_| C64 {
                re: rng.gen_range(-1.0..1.0),
                im: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y, -1.0);
        assert!(close(&y, &dft(&x), 1e-9));
    }

    #[test]
    fn fft_roundtrip_is_identity() {
        let mut rng = rng_for("fft-test", 2);
        let x: Vec<C64> = (0..64)
            .map(|_| C64 {
                re: rng.gen_range(-1.0..1.0),
                im: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y, -1.0);
        fft_in_place(&mut y, 1.0);
        let scaled: Vec<C64> = y
            .iter()
            .map(|c| C64 {
                re: c.re / 64.0,
                im: c.im / 64.0,
            })
            .collect();
        assert!(close(&scaled, &x, 1e-9));
    }

    #[test]
    fn six_step_matches_dft() {
        let mut rng = rng_for("fft-test", 3);
        let m = 4;
        let x: Vec<C64> = (0..m * m)
            .map(|_| C64 {
                re: rng.gen_range(-1.0..1.0),
                im: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let y = six_step_fft(&x, m);
        let want = dft(&x);
        // The six-step output indexing X[k2*m + k1] equals the DFT when
        // the standard index mapping k = k1*m + k2 (decimation) holds;
        // verify via permutation.
        let mut permuted = vec![C64::ZERO; m * m];
        for k1 in 0..m {
            for k2 in 0..m {
                permuted[k2 * m + k1] = want[k1 * m + k2];
            }
        }
        assert!(
            close(&y, &want, 1e-9) || close(&y, &permuted, 1e-9),
            "six-step output matches neither natural nor transposed DFT order"
        );
    }

    #[test]
    fn trace_valid_and_all_to_all() {
        let t = Fft::small().generate(4);
        t.validate().unwrap();
        // In a transpose every processor reads from every other
        // processor's rows: check proc 0 reads addresses in regions
        // owned by others.
        use simcore::ops::Op;
        use simcore::space::Placement;
        let mut owners_read = std::collections::HashSet::new();
        for op in &t.per_proc[0] {
            if let Op::Read(a) = op.unpack() {
                if let Some(Placement::Owner(o)) = t.space.placement_of(a) {
                    owners_read.insert(o);
                }
            }
        }
        assert_eq!(owners_read.len(), 4, "proc 0 must read from all procs");
    }

    #[test]
    fn paper_size_shape() {
        let f = Fft::paper();
        assert_eq!(f.n_points, 65536);
        // Don't generate the full trace here (done in benches); just
        // check the matrix side.
        let m = (f.n_points as f64).sqrt() as usize;
        assert_eq!(m, 256);
    }
}
