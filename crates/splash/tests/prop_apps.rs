//! Property tests over the workload generators: structural validity
//! for arbitrary processor counts, and correctness of the underlying
//! numerics for arbitrary problem instances. Runs on the in-tree
//! `simcore::propcheck` harness with a low default case count (16, as
//! with the old proptest config) because each case runs a real
//! algorithm; raise `PROPCHECK_CASES` for a deeper sweep.

use simcore::propcheck::{self, no_shrink};
use simcore::{prop_ensure, prop_ensure_eq};
use splash::{fft, lu, ocean, radix, SplashApp};

const CASES: u32 = 16;

#[test]
fn lu_traces_valid_for_any_proc_count() {
    propcheck::check_cases(
        CASES,
        "lu_traces_valid_for_any_proc_count",
        |g| g.pick(&[1usize, 2, 4, 8, 16]),
        no_shrink,
        |&p| {
            let t = lu::Lu { n: 32, b: 8 }.generate(p);
            t.validate().map_err(|e| format!("invalid trace: {e}"))?;
            prop_ensure_eq!(t.n_procs(), p);
            Ok(())
        },
    );
}

#[test]
fn radix_sorts_any_configuration() {
    propcheck::check_cases(
        CASES,
        "radix_sorts_any_configuration",
        |g| (g.usize_in(64..2048), g.u32_in(2..9), g.u32_in(4..20)),
        no_shrink,
        |&(n_keys, radix_bits, key_bits)| {
            let cfg = radix::Radix {
                n_keys,
                radix: 1 << radix_bits,
                max_key: 1u32 << key_bits,
            };
            let sorted = radix::sorted_keys(&cfg);
            let mut expect = cfg.make_keys();
            expect.sort_unstable();
            prop_ensure_eq!(sorted, expect);
            Ok(())
        },
    );
}

#[test]
fn radix_trace_valid() {
    propcheck::check_cases(
        CASES,
        "radix_trace_valid",
        |g| g.usize_in(256..1024),
        no_shrink,
        |&n_keys| {
            let cfg = radix::Radix {
                n_keys,
                radix: 64,
                max_key: 1 << 12,
            };
            let t = cfg.generate(4);
            t.validate().map_err(|e| format!("invalid trace: {e}"))
        },
    );
}

#[test]
fn fft_roundtrip_any_power_of_two() {
    propcheck::check_cases(
        CASES,
        "fft_roundtrip_any_power_of_two",
        |g| (g.u32_in(2..10), g.u64_in(0..50)),
        no_shrink,
        |&(logn, seed)| {
            use splash::fft::{fft_in_place, C64};
            let n = 1usize << logn;
            let mut rng = splash::util::rng_for("prop-fft", seed);
            let x: Vec<C64> = (0..n)
                .map(|_| C64 {
                    re: rng.gen_range(-1.0..1.0),
                    im: rng.gen_range(-1.0..1.0),
                })
                .collect();
            let mut y = x.clone();
            fft_in_place(&mut y, -1.0);
            fft_in_place(&mut y, 1.0);
            for (a, b) in x.iter().zip(&y) {
                prop_ensure!((a.re - b.re / n as f64).abs() < 1e-8, "re drift");
                prop_ensure!((a.im - b.im / n as f64).abs() < 1e-8, "im drift");
            }
            Ok(())
        },
    );
}

#[test]
fn fft_parseval_energy_conserved() {
    propcheck::check_cases(
        CASES,
        "fft_parseval_energy_conserved",
        |g| g.u64_in(0..50),
        no_shrink,
        |&seed| {
            use splash::fft::{dft, C64};
            let mut rng = splash::util::rng_for("prop-parseval", seed);
            let n = 32usize;
            let x: Vec<C64> = (0..n)
                .map(|_| C64 {
                    re: rng.gen_range(-1.0..1.0),
                    im: rng.gen_range(-1.0..1.0),
                })
                .collect();
            let y = dft(&x);
            let ex: f64 = x.iter().map(|c| c.re * c.re + c.im * c.im).sum();
            let ey: f64 = y.iter().map(|c| c.re * c.re + c.im * c.im).sum();
            prop_ensure!(
                (ey - n as f64 * ex).abs() < 1e-6 * (1.0 + ey.abs()),
                "energy not conserved: {ex} vs {ey}"
            );
            Ok(())
        },
    );
}

#[test]
fn lu_factorization_correct_for_any_block_shape() {
    propcheck::check_cases(
        CASES,
        "lu_factorization_correct_for_any_block_shape",
        |g| (g.usize_in(2..5), g.pick(&[4usize, 8])),
        no_shrink,
        |&(nb, b)| {
            let n = nb * b;
            let original = lu::BlockedMatrix::random_dd(n, b);
            let mut m = original.clone();
            m.factor();
            prop_ensure!(
                m.residual(&original) < 1e-8,
                "residual {}",
                m.residual(&original)
            );
            Ok(())
        },
    );
}

#[test]
fn multigrid_never_diverges() {
    propcheck::check_cases(
        CASES,
        "multigrid_never_diverges",
        |g| g.u64_in(0..30),
        no_shrink,
        |&seed| {
            use splash::util::rng_for;
            let n = 16usize;
            let mut rng = rng_for("prop-mg", seed);
            let mut f = ocean::Grid::zeros(n);
            for i in 1..=n {
                for j in 1..=n {
                    f.set(i, j, rng.gen_range(-1.0..1.0));
                }
            }
            let mut u = ocean::Grid::zeros(n);
            let r0 = u.residual(&f).max(1e-12);
            for _ in 0..6 {
                ocean::v_cycle(&mut u, &f);
            }
            prop_ensure!(u.residual(&f) < r0, "residual must shrink");
            Ok(())
        },
    );
}

#[test]
fn fft_trace_refs_scale_with_points() {
    propcheck::check_cases(
        CASES,
        "fft_trace_refs_scale_with_points",
        |g| g.pick(&[10u32, 12]),
        no_shrink,
        |&logn| {
            let app = fft::Fft {
                n_points: 1 << logn,
            };
            let t = app.generate(4);
            t.validate().map_err(|e| format!("invalid trace: {e}"))?;
            // Six-step FFT touches each point a bounded number of times:
            // refs must be O(n log n) but at least 3 transposes' worth.
            let n = app.n_points as u64;
            prop_ensure!(t.total_refs() > n / 4, "too few refs");
            prop_ensure!(t.total_refs() < n * 64, "too many refs");
            Ok(())
        },
    );
}

#[test]
fn barnes_energy_is_finite_over_steps() {
    propcheck::check_cases(
        CASES,
        "barnes_energy_is_finite_over_steps",
        |g| g.usize_in(64..160),
        no_shrink,
        |&n_bodies| {
            // Run the generator (which advances the real dynamics) and make
            // sure nothing blows up numerically.
            let app = splash::barnes::Barnes {
                n_bodies,
                theta: 1.0,
                steps: 3,
            };
            let t = app.generate(4);
            t.validate().map_err(|e| format!("invalid trace: {e}"))
        },
    );
}
