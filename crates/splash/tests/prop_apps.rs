//! Property tests over the workload generators: structural validity
//! for arbitrary processor counts, and correctness of the underlying
//! numerics for arbitrary problem instances.

use proptest::prelude::*;
use splash::{fft, lu, ocean, radix, SplashApp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lu_traces_valid_for_any_proc_count(p in prop::sample::select(vec![1usize, 2, 4, 8, 16])) {
        let t = lu::Lu { n: 32, b: 8 }.generate(p);
        t.validate().unwrap();
        prop_assert_eq!(t.n_procs(), p);
    }

    #[test]
    fn radix_sorts_any_configuration(
        n_keys in 64usize..2048,
        radix_bits in 2u32..9,
        key_bits in 4u32..20,
    ) {
        let cfg = radix::Radix {
            n_keys,
            radix: 1 << radix_bits,
            max_key: 1u32 << key_bits,
        };
        let sorted = radix::sorted_keys(&cfg);
        let mut expect = cfg.make_keys();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn radix_trace_valid(n_keys in 256usize..1024) {
        let cfg = radix::Radix {
            n_keys,
            radix: 64,
            max_key: 1 << 12,
        };
        let t = cfg.generate(4);
        t.validate().unwrap();
    }

    #[test]
    fn fft_roundtrip_any_power_of_two(logn in 2u32..10, seed in 0u64..50) {
        use splash::fft::{fft_in_place, C64};
        let n = 1usize << logn;
        let mut rng = splash::util::rng_for("prop-fft", seed);
        use rand::Rng;
        let x: Vec<C64> = (0..n)
            .map(|_| C64 {
                re: rng.gen_range(-1.0..1.0),
                im: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y, -1.0);
        fft_in_place(&mut y, 1.0);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re / n as f64).abs() < 1e-8);
            prop_assert!((a.im - b.im / n as f64).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_parseval_energy_conserved(seed in 0u64..50) {
        use splash::fft::{dft, C64};
        let mut rng = splash::util::rng_for("prop-parseval", seed);
        use rand::Rng;
        let n = 32usize;
        let x: Vec<C64> = (0..n)
            .map(|_| C64 {
                re: rng.gen_range(-1.0..1.0),
                im: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let y = dft(&x);
        let ex: f64 = x.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        let ey: f64 = y.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        prop_assert!((ey - n as f64 * ex).abs() < 1e-6 * (1.0 + ey.abs()));
    }

    #[test]
    fn lu_factorization_correct_for_any_block_shape(
        nb in 2usize..5,
        b in prop::sample::select(vec![4usize, 8]),
    ) {
        let n = nb * b;
        let original = lu::BlockedMatrix::random_dd(n, b);
        let mut m = original.clone();
        m.factor();
        prop_assert!(m.residual(&original) < 1e-8);
    }

    #[test]
    fn multigrid_never_diverges(seed in 0u64..30) {
        use splash::util::rng_for;
        use rand::Rng;
        let n = 16usize;
        let mut rng = rng_for("prop-mg", seed);
        let mut f = ocean::Grid::zeros(n);
        for i in 1..=n {
            for j in 1..=n {
                f.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let mut u = ocean::Grid::zeros(n);
        let r0 = u.residual(&f).max(1e-12);
        for _ in 0..6 {
            ocean::v_cycle(&mut u, &f);
        }
        prop_assert!(u.residual(&f) < r0, "residual must shrink");
    }

    #[test]
    fn fft_trace_refs_scale_with_points(logn in prop::sample::select(vec![10u32, 12])) {
        let app = fft::Fft { n_points: 1 << logn };
        let t = app.generate(4);
        t.validate().unwrap();
        // Six-step FFT touches each point a bounded number of times:
        // refs must be O(n log n) but at least 3 transposes' worth.
        let n = app.n_points as u64;
        prop_assert!(t.total_refs() > n / 4);
        prop_assert!(t.total_refs() < n * 64);
    }

    #[test]
    fn barnes_energy_is_finite_over_steps(n_bodies in 64usize..160) {
        // Run the generator (which advances the real dynamics) and make
        // sure nothing blows up numerically.
        let app = splash::barnes::Barnes {
            n_bodies,
            theta: 1.0,
            steps: 3,
        };
        let t = app.generate(4);
        t.validate().unwrap();
    }
}
