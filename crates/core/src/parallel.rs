//! Std-thread fan-out for the study's embarrassingly parallel sweeps.
//!
//! The paper's core experiment — 9 applications × 4 cluster sizes × 4
//! cache specifications — replays independent deterministic
//! simulations, so the only thing serial execution buys is wasted
//! wall-clock. This module provides two executors used by
//! [`crate::study`]'s sweeps, the `paper_run` driver, and the
//! `cluster-bench` binaries, both with a `--jobs` knob (`STUDY_JOBS`
//! env var, default: all available cores):
//!
//! * [`run_items`] / [`run_items_chunked`] — a flat scoped-thread
//!   work-stealing loop over one homogeneous item pool. Workers steal
//!   *chunks* of consecutive indices rather than one index at a time,
//!   so a 144-item matrix costs a handful of atomic RMWs per worker
//!   instead of one per item.
//! * [`run_pipeline`] — the two-phase pipelined executor: per-app
//!   input *generation* and the *simulations* that consume those
//!   inputs are scheduled on the same worker pool, so generation
//!   overlaps simulation instead of strictly preceding it. A worker
//!   that generates an app's trace immediately simulates that app
//!   (per-app affinity: the trace is consumed hot by the worker that
//!   built it) and only then steals chunks of other apps' work. Every
//!   item reports a [`PhaseSample`] (`{phase: gen|sim, wall}`).
//!
//! Simulations are pure functions of `(trace, machine config)`, so
//! both executors are **bit-identical** to the serial path: results
//! are returned in input order regardless of completion order, and a
//! root integration test asserts `RunStats` equality per item.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use simcore::fault::FaultPlan;

/// Resolves a job count: explicit request, else `STUDY_JOBS`, else
/// every available core.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var("STUDY_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Default steal-chunk size: aim for a few chunks per worker so the
/// tail stays balanced while the atomic counter stays cool.
pub fn default_chunk(items: usize, jobs: usize) -> usize {
    (items / (jobs.max(1) * 4)).clamp(1, 64)
}

/// Runs `f` over every item on up to `jobs` scoped threads, returning
/// outputs **in input order**. `jobs <= 1` degenerates to a plain
/// serial loop (no threads spawned at all), which is the comparison
/// baseline for the bit-identical guarantee. Workers steal index
/// chunks of [`default_chunk`] size.
pub fn run_items<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_items_chunked(items, jobs, default_chunk(items.len(), jobs), f)
}

/// [`run_items`] with an explicit steal-chunk size: each claim takes
/// `chunk` consecutive indices off the shared counter. `chunk = 1` is
/// the classic one-at-a-time stealing; larger chunks amortize the
/// atomic traffic at a small cost in tail balance.
pub fn run_items_chunked<I, O, F>(items: &[I], jobs: usize, chunk: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for i in start..end {
                    *slots[i].lock().unwrap() = Some(f(&items[i]));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// [`run_items`] that additionally delivers results **incrementally,
/// in input order** to `on_ready` on the calling thread — the study
/// hook behind `cluster_serve`'s streaming cursor op: a client sees
/// cell 0 the moment it (and nothing before it) is done, instead of
/// waiting for the whole matrix.
///
/// Workers steal index chunks exactly like [`run_items_chunked`] and
/// send `(index, output)` over a channel; the caller's thread parks
/// out-of-order completions and flushes the contiguous prefix, so
/// `on_ready(i, &out)` fires exactly once per item, strictly in index
/// order, and never concurrently (it is `FnMut`, not `Sync`). The
/// returned vector is bit-identical to [`run_items`]. `jobs <= 1`
/// degenerates to a plain serial loop that calls `on_ready` after
/// each item with no threads spawned.
pub fn run_items_streamed<I, O, F, C>(items: &[I], jobs: usize, f: F, mut on_ready: C) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
    C: FnMut(usize, &O),
{
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let out = f(item);
                on_ready(i, &out);
                out
            })
            .collect();
    }
    let chunk = default_chunk(items.len(), jobs);
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let mut slots: Vec<Option<O>> = items.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    // A send only fails if the receiver is gone, and
                    // the receiver outlives the scope.
                    let _ = tx.send((i, f(item)));
                }
            });
        }
        drop(tx); // workers hold the remaining senders
        let mut frontier = 0usize;
        while let Ok((i, out)) = rx.recv() {
            slots[i] = Some(out);
            while frontier < items.len() {
                match slots[frontier].as_ref() {
                    Some(out) => {
                        on_ready(frontier, out);
                        frontier += 1;
                    }
                    None => break,
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// [`run_items`] with per-item wall-clock, for speedup reporting.
pub fn run_items_timed<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<(O, Duration)>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_items(items, jobs, |item| {
        let start = Instant::now();
        let out = f(item);
        (out, start.elapsed())
    })
}

/// Which pipeline phase a work item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Input (trace) generation.
    Gen,
    /// Simulation replay.
    Sim,
}

impl Phase {
    /// Short lowercase label (`"gen"` / `"sim"`) for logs and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Gen => "gen",
            Phase::Sim => "sim",
        }
    }
}

/// One completed work item's timing report, delivered to the progress
/// callback of [`run_pipeline`] as soon as the item finishes (so a
/// driver log shows generation and simulation interleaving).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSample {
    /// Which phase the item belonged to.
    pub phase: Phase,
    /// Index into the phase's input slice (`gen_inputs` or
    /// `sim_items`).
    pub index: usize,
    /// Wall-clock of this item alone.
    pub wall: Duration,
}

/// Fault-tolerance policy for one pipelined run: how many times to
/// retry a panicking work item, the soft per-item timeout, and the
/// (normally disabled) deterministic fault-injection plan.
///
/// [`RunPolicy::none`] reproduces the historical behavior — zero
/// retries, no timeout, no injection — except that a panicking item
/// no longer poisons the worker pool: it is caught, recorded, and the
/// rest of the matrix still completes.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Extra attempts after a panicking first attempt (`--retries N`;
    /// 0 = fail on first panic).
    pub retries: u32,
    /// Soft per-item timeout: an item whose final attempt ran longer
    /// is *flagged* [`RunStatus::Timeout`], never killed (simulations
    /// are pure functions — killing one buys nothing, losing its
    /// result costs a re-run).
    pub timeout: Option<Duration>,
    /// Deterministic fault injection (see `simcore::fault`); disabled
    /// by default.
    pub fault: FaultPlan,
}

impl RunPolicy {
    /// No retries, no timeout, no injection.
    pub fn none() -> RunPolicy {
        RunPolicy {
            retries: 0,
            timeout: None,
            fault: FaultPlan::disabled(),
        }
    }
}

impl Default for RunPolicy {
    fn default() -> RunPolicy {
        RunPolicy::none()
    }
}

/// How one work item (or one whole run record) ended up, for the
/// manifest's per-run `status` field. Permanent failure is *not* a
/// status: failed items carry an error and land in the manifest's
/// `errors[]` section instead of `runs[]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Succeeded on the first attempt within the timeout.
    Ok,
    /// Succeeded after at least one retried panic.
    Retried,
    /// Succeeded, but the final attempt exceeded the soft timeout
    /// (takes precedence over [`RunStatus::Retried`]).
    Timeout,
}

impl RunStatus {
    /// Serialized form (`"ok"` / `"retried"` / `"timeout"`).
    pub fn label(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Retried => "retried",
            RunStatus::Timeout => "timeout",
        }
    }

    /// Parses a serialized status label.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "retried" => Some(RunStatus::Retried),
            "timeout" => Some(RunStatus::Timeout),
            _ => None,
        }
    }
}

/// The guarded executor's per-item verdict: how many attempts it
/// took, the final attempt's wall, whether the soft timeout tripped,
/// and — for a permanently failed item — the panic payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemReport {
    /// Which phase the item belonged to.
    pub phase: Phase,
    /// Index into the phase's input slice.
    pub index: usize,
    /// Attempts consumed (1 = clean first try; 0 = never attempted,
    /// i.e. a simulation skipped because its generator failed).
    pub attempts: u32,
    /// Wall-clock of the final attempt alone.
    pub wall: Duration,
    /// Whether the final attempt exceeded [`RunPolicy::timeout`].
    pub timed_out: bool,
    /// Panic payload of the last attempt when every attempt failed
    /// (`None` = the item succeeded).
    pub error: Option<String>,
}

impl ItemReport {
    /// Whether the item permanently failed.
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    /// Status of a *successful* item (`None` when it failed).
    pub fn status(&self) -> Option<RunStatus> {
        if self.error.is_some() {
            None
        } else if self.timed_out {
            Some(RunStatus::Timeout)
        } else if self.attempts > 1 {
            Some(RunStatus::Retried)
        } else {
            Some(RunStatus::Ok)
        }
    }

    /// `"ok"` / `"retried"` / `"timeout"` / `"failed"`, for logs.
    pub fn status_label(&self) -> &'static str {
        self.status().map(RunStatus::label).unwrap_or("failed")
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads pass
/// through (covering `panic!` with a message, which is everything the
/// workspace throws); anything else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one work item under the policy: up to `1 + retries` attempts,
/// each wrapped in `catch_unwind` (with fault injection applied
/// first), returning the value of the first successful attempt plus
/// the [`ItemReport`].
fn attempt_item<R>(
    policy: &RunPolicy,
    phase: Phase,
    index: usize,
    f: impl Fn() -> R,
) -> (Option<R>, ItemReport) {
    let max_attempts = policy.retries.saturating_add(1);
    // The injection key is a pure function of the item's coordinates,
    // so a fault schedule selects the same items at any job count.
    let key = policy
        .fault
        .is_active()
        .then(|| format!("{}:{index}", phase.label()));
    let mut last_error = None;
    let mut wall = Duration::ZERO;
    for attempt in 0..max_attempts {
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(key) = &key {
                policy.fault.apply(key, attempt);
            }
            f()
        }));
        wall = t0.elapsed();
        let timed_out = policy.timeout.is_some_and(|t| wall > t);
        match outcome {
            Ok(value) => {
                return (
                    Some(value),
                    ItemReport {
                        phase,
                        index,
                        attempts: attempt + 1,
                        wall,
                        timed_out,
                        error: None,
                    },
                );
            }
            Err(payload) => last_error = Some(panic_message(payload.as_ref())),
        }
    }
    let report = ItemReport {
        phase,
        index,
        attempts: max_attempts,
        wall,
        timed_out: policy.timeout.is_some_and(|t| wall > t),
        error: last_error,
    };
    (None, report)
}

/// The report given to a simulation that was never attempted because
/// its generator permanently failed.
fn skipped_report(index: usize, gen: usize) -> ItemReport {
    ItemReport {
        phase: Phase::Sim,
        index,
        attempts: 0,
        wall: Duration::ZERO,
        timed_out: false,
        error: Some(format!("skipped: generator {gen} failed")),
    }
}

/// Everything a *guarded* pipelined fan-out produced: per-item values
/// where the item succeeded (`None` where it failed or was skipped),
/// a full [`ItemReport`] per item, and the aggregate timing over the
/// successful items.
#[derive(Debug)]
pub struct GuardedRun<T, O> {
    /// Generated values with per-item gen wall, in `gen_inputs` order;
    /// `None` = the generator permanently failed.
    pub gen: Vec<Option<(T, Duration)>>,
    /// Simulation outputs with per-item sim wall, in `sim_items`
    /// order; `None` = failed or skipped.
    pub sims: Vec<Option<(O, Duration)>>,
    /// One report per generator, in input order.
    pub gen_reports: Vec<ItemReport>,
    /// One report per simulation, in input order.
    pub sim_reports: Vec<ItemReport>,
    /// Aggregate timing over the successful items.
    pub timing: FanoutTiming,
}

impl<T, O> GuardedRun<T, O> {
    /// Whether every item of both phases succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Reports of permanently failed (or skipped) items, generators
    /// first, in input order.
    pub fn failures(&self) -> impl Iterator<Item = &ItemReport> {
        self.gen_reports
            .iter()
            .chain(&self.sim_reports)
            .filter(|r| r.failed())
    }
}

/// One completed (or permanently failed) item of a guarded pipeline,
/// delivered to the progress callback the moment the item settles.
/// `value` is the simulation output for successful [`Phase::Sim`]
/// items — the hook the checkpoint journal appends from — and `None`
/// for generators and failures.
#[derive(Debug)]
pub struct GuardedEvent<'a, O> {
    /// The item's verdict.
    pub report: &'a ItemReport,
    /// Successful sim items only: the freshly computed output.
    pub value: Option<&'a O>,
}

/// Everything a pipelined fan-out produced: generated inputs, sim
/// outputs (both with per-item walls, in input order) and the
/// aggregate [`FanoutTiming`].
#[derive(Debug)]
pub struct PipelineRun<T, O> {
    /// Generated values with per-item gen wall, in `gen_inputs` order.
    pub gen: Vec<(T, Duration)>,
    /// Simulation outputs with per-item sim wall, in `sim_items`
    /// order.
    pub sims: Vec<(O, Duration)>,
    /// Aggregate timing of the whole pipeline.
    pub timing: FanoutTiming,
}

/// The pipelined two-phase executor.
///
/// `gen_inputs[g]` is turned into a value `T` by `gen_f`; each sim
/// item `(g, s)` consumes the generated `T` of its `g` via `sim_f`.
/// Generation items and simulation items are scheduled on the *same*
/// worker pool: a simulation becomes runnable the moment its
/// generator finishes, so generation overlaps simulation instead of
/// forming a serial prefix. Scheduling policy:
///
/// 1. **Affinity first** — a worker that just generated input `g`
///    drains chunks of `g`'s simulations (the generated value is
///    still hot in its cache).
/// 2. **Generate next** — otherwise it claims the next ungenerated
///    input.
/// 3. **Steal last** — otherwise it steals a chunk of simulations
///    from any input already generated (`chunk` consecutive items per
///    claim, see [`run_items_chunked`]).
///
/// `progress` is invoked (possibly concurrently) once per completed
/// item. `jobs <= 1` runs the exact serial baseline: generate `g`,
/// run all of `g`'s simulations, move to `g+1` — no threads at all.
/// Outputs are keyed by input index either way, so results are
/// bit-identical across any job count.
pub fn run_pipeline<GI, T, SI, O, GF, SF, PF>(
    gen_inputs: &[GI],
    sim_items: &[(usize, SI)],
    jobs: usize,
    chunk: usize,
    gen_f: GF,
    sim_f: SF,
    progress: PF,
) -> PipelineRun<T, O>
where
    GI: Sync,
    T: Send + Sync,
    SI: Sync,
    O: Send,
    GF: Fn(&GI) -> T + Sync,
    SF: Fn(&T, &SI) -> O + Sync,
    PF: Fn(PhaseSample) + Sync,
{
    let run = run_pipeline_guarded(
        gen_inputs,
        sim_items,
        jobs,
        chunk,
        &RunPolicy::none(),
        gen_f,
        sim_f,
        |ev: GuardedEvent<'_, O>| {
            if !ev.report.failed() {
                progress(PhaseSample {
                    phase: ev.report.phase,
                    index: ev.report.index,
                    wall: ev.report.wall,
                });
            }
        },
    );
    if let Some(r) = run.failures().next() {
        panic!(
            "pipeline {} item {} failed: {}",
            r.phase.label(),
            r.index,
            r.error.as_deref().unwrap_or("unknown")
        );
    }
    PipelineRun {
        gen: run
            .gen
            .into_iter()
            .map(|g| g.expect("complete run generated every input"))
            .collect(),
        sims: run
            .sims
            .into_iter()
            .map(|s| s.expect("complete run filled every sim slot"))
            .collect(),
        timing: run.timing,
    }
}

/// The fault-tolerant pipelined executor: [`run_pipeline`]'s
/// scheduling (affinity first, generate next, steal last; `jobs <= 1`
/// is the exact serial path with no threads) with every work item run
/// under the [`RunPolicy`]:
///
/// * each attempt is wrapped in `std::panic::catch_unwind`, so a
///   panicking item is *recorded* — phase, index, attempts, payload —
///   instead of poisoning the worker pool;
/// * a panicking item is retried up to `policy.retries` times
///   (deterministically: simulations are pure functions, so a retry
///   that succeeds yields the bit-identical result);
/// * an item whose final attempt exceeds `policy.timeout` is flagged
///   [`RunStatus::Timeout`], never killed;
/// * the simulations of a permanently failed generator are marked
///   skipped (attempts = 0) without being attempted.
///
/// `progress` fires exactly once per item — success, failure or skip
/// — with the [`ItemReport`] and, for successful simulations, a
/// reference to the output (the checkpoint journal's append hook).
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_guarded<GI, T, SI, O, GF, SF, PF>(
    gen_inputs: &[GI],
    sim_items: &[(usize, SI)],
    jobs: usize,
    chunk: usize,
    policy: &RunPolicy,
    gen_f: GF,
    sim_f: SF,
    progress: PF,
) -> GuardedRun<T, O>
where
    GI: Sync,
    T: Send + Sync,
    SI: Sync,
    O: Send,
    GF: Fn(&GI) -> T + Sync,
    SF: Fn(&T, &SI) -> O + Sync,
    PF: Fn(GuardedEvent<'_, O>) + Sync,
{
    for (i, (g, _)) in sim_items.iter().enumerate() {
        assert!(
            *g < gen_inputs.len(),
            "sim item {i} references generator {g}, but only {} exist",
            gen_inputs.len()
        );
    }
    let chunk = chunk.max(1);
    let start = Instant::now();

    // Per-generator lists of sim item indices: the per-app queues the
    // affinity and stealing rules operate on.
    let mut per_gen: Vec<Vec<usize>> = vec![Vec::new(); gen_inputs.len()];
    for (i, (g, _)) in sim_items.iter().enumerate() {
        per_gen[*g].push(i);
    }

    if jobs <= 1 {
        // The measured serial baseline: affinity order, one thread.
        let mut gen: Vec<Option<(T, Duration)>> = Vec::with_capacity(gen_inputs.len());
        let mut gen_reports = Vec::with_capacity(gen_inputs.len());
        let mut sims: Vec<Option<(O, Duration)>> = sim_items.iter().map(|_| None).collect();
        let mut sim_reports: Vec<Option<ItemReport>> = sim_items.iter().map(|_| None).collect();
        for (g, input) in gen_inputs.iter().enumerate() {
            let (val, report) = attempt_item(policy, Phase::Gen, g, || gen_f(input));
            progress(GuardedEvent {
                report: &report,
                value: None,
            });
            match val {
                Some(val) => {
                    for &si in &per_gen[g] {
                        let (out, rep) =
                            attempt_item(policy, Phase::Sim, si, || sim_f(&val, &sim_items[si].1));
                        let out = out.map(|o| (o, rep.wall));
                        progress(GuardedEvent {
                            report: &rep,
                            value: out.as_ref().map(|(o, _)| o),
                        });
                        sims[si] = out;
                        sim_reports[si] = Some(rep);
                    }
                    gen.push(Some((val, report.wall)));
                }
                None => {
                    for &si in &per_gen[g] {
                        let rep = skipped_report(si, g);
                        progress(GuardedEvent {
                            report: &rep,
                            value: None,
                        });
                        sim_reports[si] = Some(rep);
                    }
                    gen.push(None);
                }
            }
            gen_reports.push(report);
        }
        let sim_reports: Vec<ItemReport> = sim_reports
            .into_iter()
            .map(|r| r.expect("serial guarded pipeline reported every sim"))
            .collect();
        let timing = guarded_timing(&gen, &sims, 1, start.elapsed());
        return GuardedRun {
            gen,
            sims,
            gen_reports,
            sim_reports,
            timing,
        };
    }

    let total = gen_inputs.len() + sim_items.len();
    let gen_next = AtomicUsize::new(0);
    let sim_next: Vec<AtomicUsize> = gen_inputs.iter().map(|_| AtomicUsize::new(0)).collect();
    // `Some(Some(..))` = generated, `Some(None)` = permanently failed.
    let generated: Vec<OnceLock<Option<(T, Duration)>>> =
        gen_inputs.iter().map(|_| OnceLock::new()).collect();
    let gen_report_slots: Vec<OnceLock<ItemReport>> =
        gen_inputs.iter().map(|_| OnceLock::new()).collect();
    let sim_slots: Vec<Mutex<Option<(O, Duration)>>> =
        sim_items.iter().map(|_| Mutex::new(None)).collect();
    let sim_report_slots: Vec<OnceLock<ItemReport>> =
        sim_items.iter().map(|_| OnceLock::new()).collect();
    let done = AtomicUsize::new(0);

    // Runs one simulation under the policy and settles its slots.
    let run_sim = |si: usize, val: &T| {
        let (out, rep) = attempt_item(policy, Phase::Sim, si, || sim_f(val, &sim_items[si].1));
        let out = out.map(|o| (o, rep.wall));
        progress(GuardedEvent {
            report: &rep,
            value: out.as_ref().map(|(o, _)| o),
        });
        *sim_slots[si].lock().unwrap() = out;
        sim_report_slots[si]
            .set(rep)
            .expect("sim settled exactly once");
        done.fetch_add(1, Ordering::Release);
    };

    // Claims a chunk of generator `g`'s simulations and runs it.
    // Returns false when `g` has nothing left. Only called for
    // successfully generated inputs.
    let drain_chunk = |g: usize| -> bool {
        let list = &per_gen[g];
        if sim_next[g].load(Ordering::Relaxed) >= list.len() {
            return false;
        }
        let at = sim_next[g].fetch_add(chunk, Ordering::Relaxed);
        if at >= list.len() {
            return false;
        }
        let (val, _) = generated[g]
            .get()
            .expect("drained before generation")
            .as_ref()
            .expect("drained a failed generator");
        for &si in &list[at..(at + chunk).min(list.len())] {
            run_sim(si, val);
        }
        true
    };

    // Marks every simulation of permanently failed generator `g` as
    // skipped. Only the worker that failed the generation claims them
    // (the steal rule never touches a failed generator's queue), but
    // claiming through `sim_next` keeps the accounting uniform.
    let skip_all = |g: usize| {
        let list = &per_gen[g];
        loop {
            let at = sim_next[g].fetch_add(chunk, Ordering::Relaxed);
            if at >= list.len() {
                break;
            }
            for &si in &list[at..(at + chunk).min(list.len())] {
                let rep = skipped_report(si, g);
                progress(GuardedEvent {
                    report: &rep,
                    value: None,
                });
                sim_report_slots[si]
                    .set(rep)
                    .expect("sim settled exactly once");
                done.fetch_add(1, Ordering::Release);
            }
        }
    };

    let workers = jobs.min(total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut affinity: Option<usize> = None;
                loop {
                    // 1. Affinity: drain the app this worker generated.
                    if let Some(g) = affinity {
                        if drain_chunk(g) {
                            continue;
                        }
                        affinity = None;
                    }
                    // 2. Generate the next ungenerated input.
                    let g = gen_next.fetch_add(1, Ordering::Relaxed);
                    if g < gen_inputs.len() {
                        let (val, report) =
                            attempt_item(policy, Phase::Gen, g, || gen_f(&gen_inputs[g]));
                        let failed = val.is_none();
                        if generated[g].set(val.map(|v| (v, report.wall))).is_err() {
                            unreachable!("generator {g} claimed twice");
                        }
                        progress(GuardedEvent {
                            report: &report,
                            value: None,
                        });
                        gen_report_slots[g]
                            .set(report)
                            .expect("gen settled exactly once");
                        done.fetch_add(1, Ordering::Release);
                        if failed {
                            skip_all(g);
                            affinity = None;
                        } else {
                            affinity = Some(g);
                        }
                        continue;
                    }
                    // 3. Steal a chunk from any generated input.
                    let mut stole = false;
                    for (g, cell) in generated.iter().enumerate() {
                        if matches!(cell.get(), Some(Some(_))) && drain_chunk(g) {
                            affinity = Some(g);
                            stole = true;
                            break;
                        }
                    }
                    if stole {
                        continue;
                    }
                    // 4. Nothing runnable: either all done, or a gen
                    // still in flight will unlock more sims — yield.
                    if done.load(Ordering::Acquire) >= total {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let gen: Vec<Option<(T, Duration)>> = generated
        .into_iter()
        .map(|c| c.into_inner().expect("every input settled"))
        .collect();
    let gen_reports: Vec<ItemReport> = gen_report_slots
        .into_iter()
        .map(|c| c.into_inner().expect("every generator reported"))
        .collect();
    let sims: Vec<Option<(O, Duration)>> = sim_slots
        .into_iter()
        .map(|s| s.into_inner().unwrap())
        .collect();
    let sim_reports: Vec<ItemReport> = sim_report_slots
        .into_iter()
        .map(|c| c.into_inner().expect("every sim reported"))
        .collect();
    let timing = guarded_timing(&gen, &sims, jobs, start.elapsed());
    GuardedRun {
        gen,
        sims,
        gen_reports,
        sim_reports,
        timing,
    }
}

/// [`FanoutTiming`] over the *successful* items of a guarded run
/// (matching [`FanoutTiming::from_pipeline`] exactly when nothing
/// failed).
fn guarded_timing<T, O>(
    gen: &[Option<(T, Duration)>],
    sims: &[Option<(O, Duration)>],
    jobs: usize,
    wall: Duration,
) -> FanoutTiming {
    let gen_wall: Duration = gen.iter().flatten().map(|(_, d)| *d).sum();
    let sim_wall: Duration = sims.iter().flatten().map(|(_, d)| *d).sum();
    FanoutTiming {
        items: sims.iter().flatten().count(),
        jobs,
        cumulative: gen_wall + sim_wall,
        wall,
        gen_wall,
        sim_wall,
        serial_baseline: (jobs <= 1).then_some(wall),
    }
}

/// Aggregate timing of one fan-out: how much cumulative work ran in
/// how much wall-clock on how many jobs, split by phase. This is the
/// machine-readable form of the `paper_run` timing line, persisted in
/// run manifests so speedup tracking can be automated (see
/// `cluster_study::manifest`).
///
/// Two speedup figures with very different honesty guarantees:
///
/// * [`FanoutTiming::occupancy`] (serialized as `speedup` for schema
///   continuity) is cumulative ÷ wall — how many serial runs' worth
///   of work fit in the elapsed time. On an **oversubscribed** host
///   this reads ≈ `jobs` even when wall-clock got *worse*, because
///   time-slicing inflates every per-item wall. It measures worker
///   occupancy, not time saved.
/// * [`FanoutTiming::wall_speedup`] is the headline number: measured
///   serial wall (when a baseline is available) — or the
///   [`FanoutTiming::serial_estimate`] — divided by the actual
///   elapsed wall. This is the honest "how much faster was this run".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanoutTiming {
    /// Simulation work items executed (generation items are counted
    /// separately via `gen_wall`).
    pub items: usize,
    /// Worker threads requested (`--jobs`).
    pub jobs: usize,
    /// Sum of *all* per-item run times, generation and simulation
    /// (what a serial run would cost).
    pub cumulative: Duration,
    /// Elapsed wall-clock of the whole fan-out.
    pub wall: Duration,
    /// Cumulative wall of generation-phase items.
    pub gen_wall: Duration,
    /// Cumulative wall of simulation-phase items.
    pub sim_wall: Duration,
    /// A *measured* serial wall-clock of the same matrix, when one is
    /// available (e.g. the run itself was serial, or a recorded
    /// `--jobs 1` baseline was supplied). Preferred over the estimate
    /// by [`FanoutTiming::wall_speedup`].
    pub serial_baseline: Option<Duration>,
}

impl FanoutTiming {
    /// Builds from [`run_items_timed`] output plus the measured wall.
    /// All items are attributed to the simulation phase.
    pub fn from_timed<O>(timed: &[(O, Duration)], jobs: usize, wall: Duration) -> FanoutTiming {
        let sim_wall: Duration = timed.iter().map(|(_, d)| *d).sum();
        FanoutTiming {
            items: timed.len(),
            jobs,
            cumulative: sim_wall,
            wall,
            gen_wall: Duration::ZERO,
            sim_wall,
            serial_baseline: None,
        }
    }

    /// Builds from a pipeline's per-phase outputs. With `jobs <= 1`
    /// the run *is* a measured serial baseline and is recorded as
    /// such.
    pub fn from_pipeline<T, O>(
        gen: &[(T, Duration)],
        sims: &[(O, Duration)],
        jobs: usize,
        wall: Duration,
    ) -> FanoutTiming {
        let gen_wall: Duration = gen.iter().map(|(_, d)| *d).sum();
        let sim_wall: Duration = sims.iter().map(|(_, d)| *d).sum();
        FanoutTiming {
            items: sims.len(),
            jobs,
            cumulative: gen_wall + sim_wall,
            wall,
            gen_wall,
            sim_wall,
            serial_baseline: if jobs <= 1 { Some(wall) } else { None },
        }
    }

    /// Attaches a measured serial wall (e.g. from a recorded
    /// `--jobs 1` run of the same matrix) for honest speedup.
    pub fn with_serial_baseline(mut self, baseline: Duration) -> FanoutTiming {
        self.serial_baseline = Some(baseline);
        self
    }

    /// What a serial run of the same items would cost: the sum of
    /// per-item walls across both phases.
    pub fn serial_estimate(&self) -> Duration {
        self.cumulative
    }

    /// Cumulative ÷ wall: **occupancy**, not time saved. How many
    /// serial runs' worth of work fit in the elapsed time; on an
    /// oversubscribed host this reads ≈ `jobs` even when the run got
    /// slower (time-slicing inflates per-item walls). Serialized as
    /// `speedup` for schema continuity; prefer
    /// [`FanoutTiming::wall_speedup`] as the headline.
    pub fn occupancy(&self) -> f64 {
        self.cumulative.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Deprecated name for [`FanoutTiming::occupancy`] — the figure
    /// is *not* an honest speedup (see the type-level docs).
    pub fn speedup(&self) -> f64 {
        self.occupancy()
    }

    /// Occupancy ÷ jobs: 1.0 means every worker was busy the whole
    /// time.
    pub fn utilization(&self) -> f64 {
        self.occupancy() / self.jobs.max(1) as f64
    }

    /// The honest headline: measured serial baseline (when available,
    /// else the serial estimate) ÷ elapsed wall. Unlike
    /// [`FanoutTiming::occupancy`] this goes *below* 1.0 when
    /// threading makes the run slower.
    pub fn wall_speedup(&self) -> f64 {
        self.serial_baseline
            .unwrap_or_else(|| self.serial_estimate())
            .as_secs_f64()
            / self.wall.as_secs_f64().max(1e-9)
    }

    /// JSON rendering for the manifest `timing` section.
    pub fn to_json(&self) -> simcore::Json {
        let mut j = simcore::Json::obj()
            .with("items", self.items)
            .with("jobs", self.jobs)
            .with("cumulative_seconds", self.cumulative.as_secs_f64())
            .with("wall_seconds", self.wall.as_secs_f64())
            .with("gen_wall_seconds", self.gen_wall.as_secs_f64())
            .with("sim_wall_seconds", self.sim_wall.as_secs_f64())
            .with(
                "serial_estimate_seconds",
                self.serial_estimate().as_secs_f64(),
            )
            .with("speedup", self.occupancy())
            .with("utilization", self.utilization())
            .with("wall_speedup", self.wall_speedup());
        if let Some(b) = self.serial_baseline {
            j.push("serial_baseline_seconds", b.as_secs_f64());
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn outputs_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run_items(&items, jobs, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn chunked_stealing_covers_every_index_once() {
        let items: Vec<u64> = (0..97).collect();
        for chunk in [1, 2, 3, 7, 64, 1000] {
            for jobs in [2, 5] {
                let out = run_items_chunked(&items, jobs, chunk, |&x| x + 1);
                assert_eq!(
                    out,
                    items.iter().map(|&x| x + 1).collect::<Vec<u64>>(),
                    "chunk={chunk} jobs={jobs}"
                );
            }
        }
    }

    /// The streamed runner delivers every result exactly once, in
    /// input order, on the calling thread, and returns the same
    /// vector as run_items — at any job count.
    #[test]
    fn streamed_delivery_is_in_order_and_complete() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 7).collect();
        for jobs in [1, 2, 4, 16] {
            let mut seen: Vec<(usize, u64)> = Vec::new();
            let out = run_items_streamed(&items, jobs, |&x| x * 7, |i, &o| seen.push((i, o)));
            assert_eq!(out, expect, "jobs={jobs}");
            assert_eq!(seen.len(), items.len(), "jobs={jobs}");
            for (pos, (i, o)) in seen.iter().enumerate() {
                assert_eq!(*i, pos, "in-order delivery, jobs={jobs}");
                assert_eq!(*o, expect[pos]);
            }
        }
        // Degenerate shapes.
        let none: Vec<u64> = vec![];
        assert!(run_items_streamed(&none, 8, |&x| x, |_, _| {}).is_empty());
        let mut hits = 0;
        assert_eq!(
            run_items_streamed(&[9u64], 8, |&x| x, |_, _| hits += 1),
            vec![9]
        );
        assert_eq!(hits, 1);
    }

    #[test]
    fn default_chunk_is_sane() {
        assert_eq!(default_chunk(0, 8), 1);
        assert_eq!(default_chunk(4, 4), 1);
        assert_eq!(default_chunk(144, 4), 9);
        assert!(default_chunk(1_000_000, 2) <= 64);
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // jobs = 1 must work even for closures that would not enjoy
        // contention: detectable only behaviorally — order of side
        // effects is exactly input order.
        let log = Mutex::new(Vec::new());
        let items: Vec<u32> = (0..10).collect();
        run_items(&items, 1, |&x| log.lock().unwrap().push(x));
        assert_eq!(*log.lock().unwrap(), items);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_items(&[1u32, 2], 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(run_items(&none, 8, |&x| x).is_empty());
        assert_eq!(run_items(&[7u32], 8, |&x| x), vec![7]);
    }

    #[test]
    fn timed_wraps_same_results() {
        let items: Vec<u64> = (0..20).collect();
        let timed = run_items_timed(&items, 4, |&x| x * 3);
        let vals: Vec<u64> = timed.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, items.iter().map(|&x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn resolve_jobs_prefers_explicit() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    /// The pipeline must return gen values and sim outputs in input
    /// order, identical across job counts and chunk sizes.
    #[test]
    fn pipeline_matches_serial_for_any_jobs_and_chunk() {
        let gens: Vec<u64> = (0..5).collect();
        // Uneven per-gen sim counts, interleaved across gens.
        let sims: Vec<(usize, u64)> = (0..37).map(|i| (i % 5, i as u64)).collect();
        let serial = run_pipeline(&gens, &sims, 1, 1, |&g| g * 10, |t, &s| t + s, |_| {});
        let serial_sims: Vec<u64> = serial.sims.iter().map(|(v, _)| *v).collect();
        let serial_gen: Vec<u64> = serial.gen.iter().map(|(v, _)| *v).collect();
        assert_eq!(serial_gen, vec![0, 10, 20, 30, 40]);
        for jobs in [2, 3, 8] {
            for chunk in [1, 2, 5] {
                let run = run_pipeline(
                    &gens,
                    &sims,
                    jobs,
                    chunk,
                    |&g| g * 10,
                    |t, &s| t + s,
                    |_| {},
                );
                assert_eq!(
                    run.sims.iter().map(|(v, _)| *v).collect::<Vec<u64>>(),
                    serial_sims,
                    "jobs={jobs} chunk={chunk}"
                );
                assert_eq!(
                    run.gen.iter().map(|(v, _)| *v).collect::<Vec<u64>>(),
                    serial_gen
                );
            }
        }
    }

    /// Every item reports exactly one PhaseSample with the right
    /// phase, and gen samples arrive before any sim that consumes
    /// that generator's value.
    #[test]
    fn pipeline_progress_reports_every_item() {
        let gens: Vec<u64> = (0..4).collect();
        let sims: Vec<(usize, u64)> = (0..16).map(|i| (i / 4, i as u64)).collect();
        for jobs in [1, 4] {
            let events = Mutex::new(Vec::new());
            run_pipeline(
                &gens,
                &sims,
                jobs,
                2,
                |&g| g,
                |t, &s| t + s,
                |sample| events.lock().unwrap().push(sample),
            );
            let events = events.into_inner().unwrap();
            assert_eq!(events.len(), gens.len() + sims.len());
            let gen_seen: HashSet<usize> = events
                .iter()
                .filter(|e| e.phase == Phase::Gen)
                .map(|e| e.index)
                .collect();
            let sim_seen: HashSet<usize> = events
                .iter()
                .filter(|e| e.phase == Phase::Sim)
                .map(|e| e.index)
                .collect();
            assert_eq!(gen_seen.len(), gens.len());
            assert_eq!(sim_seen.len(), sims.len());
            // A sim of generator g only after g's gen sample.
            let mut ready: HashSet<usize> = HashSet::new();
            for e in &events {
                match e.phase {
                    Phase::Gen => {
                        ready.insert(e.index);
                    }
                    Phase::Sim => {
                        assert!(
                            ready.contains(&sims[e.index].0),
                            "sim {} ran before its generator",
                            e.index
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipeline_handles_empty_and_sim_free_inputs() {
        let empty: PipelineRun<u64, u64> =
            run_pipeline(&[], &[], 4, 2, |_: &u64| 0, |t, _: &u64| *t, |_| {});
        assert!(empty.gen.is_empty() && empty.sims.is_empty());
        // Generators with no sims still run.
        let gens = vec![1u64, 2, 3];
        let run = run_pipeline(&gens, &[], 4, 2, |&g| g * 2, |t, _: &u64| *t, |_| {});
        assert_eq!(
            run.gen.iter().map(|(v, _)| *v).collect::<Vec<u64>>(),
            vec![2, 4, 6]
        );
    }

    #[test]
    #[should_panic(expected = "references generator")]
    fn pipeline_rejects_dangling_sim_item() {
        let _ = run_pipeline(
            &[0u64],
            &[(1usize, 0u64)],
            2,
            1,
            |&g| g,
            |t, &s| t + s,
            |_| {},
        );
    }

    #[test]
    fn fanout_timing_summarizes() {
        let timed: Vec<((), Duration)> = vec![
            ((), Duration::from_secs(2)),
            ((), Duration::from_secs(2)),
            ((), Duration::from_secs(4)),
        ];
        let t = FanoutTiming::from_timed(&timed, 4, Duration::from_secs(2));
        assert_eq!(t.items, 3);
        assert_eq!(t.cumulative, Duration::from_secs(8));
        assert_eq!(t.sim_wall, Duration::from_secs(8));
        assert_eq!(t.gen_wall, Duration::ZERO);
        assert!((t.occupancy() - 4.0).abs() < 1e-9);
        assert!((t.speedup() - 4.0).abs() < 1e-9);
        assert!((t.utilization() - 1.0).abs() < 1e-9);
        // No measured baseline: wall_speedup falls back to the
        // estimate (= occupancy here).
        assert!((t.wall_speedup() - 4.0).abs() < 1e-9);
        let j = t.to_json();
        assert_eq!(j.get("items").and_then(simcore::Json::as_u64), Some(3));
        assert_eq!(
            j.get("speedup").and_then(simcore::Json::as_f64),
            Some(t.occupancy())
        );
        assert_eq!(
            j.get("wall_speedup").and_then(simcore::Json::as_f64),
            Some(t.wall_speedup())
        );
        assert_eq!(
            j.get("gen_wall_seconds").and_then(simcore::Json::as_f64),
            Some(0.0)
        );
        assert!(j.get("sim_wall_seconds").is_some());
        assert!(j.get("serial_estimate_seconds").is_some());
        assert!(j.get("serial_baseline_seconds").is_none());
    }

    /// A measured baseline beats the estimate, and can honestly read
    /// below 1.0 on an oversubscribed host.
    #[test]
    fn wall_speedup_prefers_measured_baseline() {
        let t = FanoutTiming {
            items: 4,
            jobs: 2,
            cumulative: Duration::from_secs(8),
            wall: Duration::from_secs(4),
            gen_wall: Duration::from_secs(2),
            sim_wall: Duration::from_secs(6),
            serial_baseline: None,
        };
        assert!((t.wall_speedup() - 2.0).abs() < 1e-9);
        let t = t.with_serial_baseline(Duration::from_secs(3));
        assert!((t.wall_speedup() - 0.75).abs() < 1e-9);
        let j = t.to_json();
        assert_eq!(
            j.get("serial_baseline_seconds")
                .and_then(simcore::Json::as_f64),
            Some(3.0)
        );
    }

    /// from_pipeline splits phases and records a serial run as its
    /// own baseline.
    #[test]
    fn from_pipeline_phase_split_and_serial_baseline() {
        let gen: Vec<((), Duration)> = vec![((), Duration::from_secs(1))];
        let sims: Vec<((), Duration)> =
            vec![((), Duration::from_secs(2)), ((), Duration::from_secs(3))];
        let par = FanoutTiming::from_pipeline(&gen, &sims, 4, Duration::from_secs(2));
        assert_eq!(par.items, 2);
        assert_eq!(par.gen_wall, Duration::from_secs(1));
        assert_eq!(par.sim_wall, Duration::from_secs(5));
        assert_eq!(par.cumulative, Duration::from_secs(6));
        assert_eq!(par.serial_baseline, None);
        let ser = FanoutTiming::from_pipeline(&gen, &sims, 1, Duration::from_secs(6));
        assert_eq!(ser.serial_baseline, Some(Duration::from_secs(6)));
        assert!((ser.wall_speedup() - 1.0).abs() < 1e-9);
    }

    /// A panicking sim item is isolated: every other item completes,
    /// and the failure is recorded with its phase, index and payload.
    #[test]
    fn guarded_isolates_panicking_sim() {
        for jobs in [1, 4] {
            let gens = [10u64, 20];
            let items: Vec<(usize, u64)> = vec![(0, 1), (0, 2), (1, 3), (1, 4)];
            let run = run_pipeline_guarded(
                &gens,
                &items,
                jobs,
                1,
                &RunPolicy::none(),
                |g| *g,
                |g, s| {
                    if *s == 3 {
                        panic!("boom {s}");
                    }
                    g + s
                },
                |_| {},
            );
            assert!(!run.is_complete());
            let fails: Vec<&ItemReport> = run.failures().collect();
            assert_eq!(fails.len(), 1);
            assert_eq!(fails[0].phase, Phase::Sim);
            assert_eq!(fails[0].index, 2);
            assert_eq!(fails[0].attempts, 1);
            assert_eq!(fails[0].error.as_deref(), Some("boom 3"));
            assert_eq!(fails[0].status(), None);
            assert_eq!(fails[0].status_label(), "failed");
            let vals: Vec<Option<u64>> = run
                .sims
                .iter()
                .map(|s| s.as_ref().map(|(o, _)| *o))
                .collect();
            assert_eq!(vals, vec![Some(11), Some(12), None, Some(24)]);
            assert_eq!(run.timing.items, 3, "timing counts successes only");
        }
    }

    /// A permanently failing generator marks its simulations skipped
    /// (attempts = 0) without attempting them; other apps complete.
    #[test]
    fn guarded_failed_generator_skips_its_sims() {
        for jobs in [1, 3] {
            let gens = [0u64, 5];
            let items: Vec<(usize, u64)> = vec![(0, 1), (0, 2), (1, 3)];
            let attempts = AtomicUsize::new(0);
            let run = run_pipeline_guarded(
                &gens,
                &items,
                jobs,
                1,
                &RunPolicy {
                    retries: 1,
                    ..RunPolicy::none()
                },
                |g| {
                    if *g == 0 {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        panic!("gen down");
                    }
                    *g
                },
                |g, s| g + s,
                |_| {},
            );
            assert_eq!(attempts.swap(0, Ordering::Relaxed), 2, "retried once");
            assert!(run.gen[0].is_none());
            assert_eq!(run.gen_reports[0].attempts, 2);
            assert_eq!(run.gen_reports[0].error.as_deref(), Some("gen down"));
            for si in [0, 1] {
                assert!(run.sims[si].is_none());
                let rep = &run.sim_reports[si];
                assert_eq!(rep.attempts, 0);
                assert_eq!(rep.error.as_deref(), Some("skipped: generator 0 failed"));
            }
            assert_eq!(run.sims[2].as_ref().map(|(o, _)| *o), Some(8));
            assert_eq!(run.failures().count(), 3);
        }
    }

    /// With an injected fault of depth 1 and one retry, every item
    /// recovers deterministically: same outputs as a fault-free run,
    /// statuses flip to `retried`.
    #[test]
    fn guarded_retries_recover_injected_faults() {
        let gens = [100u64, 200, 300];
        let items: Vec<(usize, u64)> = (0..9).map(|i| (i % 3, i as u64)).collect();
        let clean = run_pipeline_guarded(
            &gens,
            &items,
            1,
            1,
            &RunPolicy::none(),
            |g| *g,
            |g, s| g * 10 + s,
            |_| {},
        );
        for jobs in [1, 4] {
            let policy = RunPolicy {
                retries: 1,
                timeout: None,
                fault: FaultPlan::new(1.0, 42),
            };
            let run = run_pipeline_guarded(
                &gens,
                &items,
                jobs,
                2,
                &policy,
                |g| *g,
                |g, s| g * 10 + s,
                |_| {},
            );
            assert!(run.is_complete());
            let vals = |r: &GuardedRun<u64, u64>| -> Vec<u64> {
                r.sims
                    .iter()
                    .map(|s| s.as_ref().expect("complete").0)
                    .collect()
            };
            assert_eq!(
                vals(&run),
                vals(&clean),
                "retried results are bit-identical"
            );
            for rep in run.gen_reports.iter().chain(run.sim_reports.iter()) {
                assert_eq!(rep.attempts, 2);
                assert_eq!(rep.status(), Some(RunStatus::Retried));
                assert_eq!(rep.status_label(), "retried");
            }
        }
    }

    /// Fewer retries than the fault depth provably fails the selected
    /// items; everything else still completes.
    #[test]
    fn guarded_insufficient_retries_leave_failures() {
        let gens = [7u64];
        let items: Vec<(usize, u64)> = (0..4).map(|i| (0usize, i as u64)).collect();
        // Pick a seed that spares the generator and selects a strict
        // subset of the sims — selection is deterministic, so this
        // scan always lands on the same seed.
        let seed = (0..1000u64)
            .find(|&s| {
                let f = FaultPlan::new(0.5, s);
                let picked = (0..4).filter(|i| f.selects(&format!("sim:{i}"))).count();
                !f.selects("gen:0") && picked > 0 && picked < 4
            })
            .expect("some seed selects a strict sim subset");
        let mut policy = RunPolicy {
            retries: 0,
            timeout: None,
            fault: FaultPlan::new(0.5, seed),
        };
        policy.fault.depth = 2;
        let selected: Vec<usize> = (0..4)
            .filter(|i| policy.fault.selects(&format!("sim:{i}")))
            .collect();
        // One retry is below the fault depth of 2: still fails.
        policy.retries = 1;
        let run = run_pipeline_guarded(&gens, &items, 2, 1, &policy, |g| *g, |g, s| g + s, |_| {});
        let failed: Vec<usize> = run
            .sim_reports
            .iter()
            .filter(|r| r.failed())
            .map(|r| r.index)
            .collect();
        assert_eq!(failed, selected);
        for &i in &selected {
            assert_eq!(run.sim_reports[i].attempts, 2);
            let err = run.sim_reports[i].error.as_deref().unwrap();
            assert!(err.starts_with(simcore::fault::PANIC_PREFIX), "{err}");
        }
        // Matching the depth recovers everything.
        policy.retries = 2;
        let run = run_pipeline_guarded(&gens, &items, 2, 1, &policy, |g| *g, |g, s| g + s, |_| {});
        assert!(run.is_complete());
    }

    /// A zero timeout flags every item as a straggler without killing
    /// it: results are intact, statuses read `timeout`.
    #[test]
    fn guarded_timeout_flags_without_killing() {
        let gens = [1u64];
        let items: Vec<(usize, u64)> = vec![(0, 2), (0, 3)];
        let policy = RunPolicy {
            retries: 0,
            timeout: Some(Duration::ZERO),
            fault: FaultPlan::disabled(),
        };
        let run = run_pipeline_guarded(&gens, &items, 1, 1, &policy, |g| *g, |g, s| g + s, |_| {});
        assert!(run.is_complete(), "timeouts never kill items");
        for rep in run.gen_reports.iter().chain(run.sim_reports.iter()) {
            assert!(rep.timed_out);
            assert_eq!(rep.status(), Some(RunStatus::Timeout));
        }
        assert_eq!(run.sims[0].as_ref().map(|(o, _)| *o), Some(3));
    }

    /// The progress callback fires exactly once per item — success,
    /// failure or skip — across both execution paths.
    #[test]
    fn guarded_progress_fires_once_per_item() {
        for jobs in [1, 4] {
            let gens = [0u64, 1];
            let items: Vec<(usize, u64)> = vec![(0, 0), (0, 1), (1, 2), (1, 3)];
            let seen = Mutex::new(Vec::new());
            let values = Mutex::new(Vec::new());
            run_pipeline_guarded(
                &gens,
                &items,
                jobs,
                1,
                &RunPolicy::none(),
                |g| {
                    if *g == 0 {
                        panic!("gen 0 down");
                    }
                    *g
                },
                |g, s| g + s,
                |ev: GuardedEvent<'_, u64>| {
                    seen.lock()
                        .unwrap()
                        .push((ev.report.phase, ev.report.index));
                    if let Some(v) = ev.value {
                        values.lock().unwrap().push(*v);
                    }
                },
            );
            let mut seen = seen.into_inner().unwrap();
            seen.sort();
            assert_eq!(
                seen,
                vec![
                    (Phase::Gen, 0),
                    (Phase::Gen, 1),
                    (Phase::Sim, 0),
                    (Phase::Sim, 1),
                    (Phase::Sim, 2),
                    (Phase::Sim, 3),
                ]
            );
            let mut values = values.into_inner().unwrap();
            values.sort();
            assert_eq!(values, vec![3, 4], "values only for successful sims");
        }
    }

    /// The legacy strict entry point still fails fast: a guarded
    /// failure surfaces as a panic naming the item.
    #[test]
    #[should_panic(expected = "pipeline sim item 1 failed: kaput")]
    fn run_pipeline_panics_on_item_failure() {
        let gens = [1u64];
        let items: Vec<(usize, u64)> = vec![(0, 0), (0, 1)];
        run_pipeline(
            &gens,
            &items,
            1,
            1,
            |g| *g,
            |_, s| {
                if *s == 1 {
                    panic!("kaput");
                }
                *s
            },
            |_| {},
        );
    }
}
