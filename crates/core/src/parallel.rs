//! Std-thread fan-out for the study's embarrassingly parallel sweeps.
//!
//! The paper's core experiment — 9 applications × 4 cluster sizes × 4
//! cache specifications — replays independent deterministic
//! simulations, so the only thing serial execution buys is wasted
//! wall-clock. This module provides a scoped-thread work-stealing
//! runner with a `--jobs` knob (`STUDY_JOBS` env var, default: all
//! available cores) used by [`crate::study`]'s sweeps, the `paper_run`
//! driver, and the `cluster-bench` binaries.
//!
//! Simulations are pure functions of `(trace, machine config)`, so the
//! parallel runner is **bit-identical** to the serial path: results
//! are returned in input order regardless of completion order, and a
//! root integration test asserts `RunStats` equality per item.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolves a job count: explicit request, else `STUDY_JOBS`, else
/// every available core.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var("STUDY_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `f` over every item on up to `jobs` scoped threads, returning
/// outputs **in input order**. `jobs <= 1` degenerates to a plain
/// serial loop (no threads spawned at all), which is the comparison
/// baseline for the bit-identical guarantee.
pub fn run_items<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// [`run_items`] with per-item wall-clock, for speedup reporting.
pub fn run_items_timed<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<(O, Duration)>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_items(items, jobs, |item| {
        let start = Instant::now();
        let out = f(item);
        (out, start.elapsed())
    })
}

/// Aggregate timing of one fan-out: how much cumulative work ran in
/// how much wall-clock on how many jobs. This is the machine-readable
/// form of the `paper_run` timing line, persisted in run manifests so
/// speedup tracking can be automated (see `cluster_study::manifest`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanoutTiming {
    /// Work items executed.
    pub items: usize,
    /// Worker threads requested (`--jobs`).
    pub jobs: usize,
    /// Sum of per-item run times (what a serial run would cost).
    pub cumulative: Duration,
    /// Elapsed wall-clock of the whole fan-out.
    pub wall: Duration,
}

impl FanoutTiming {
    /// Builds from [`run_items_timed`] output plus the measured wall.
    pub fn from_timed<O>(timed: &[(O, Duration)], jobs: usize, wall: Duration) -> FanoutTiming {
        FanoutTiming {
            items: timed.len(),
            jobs,
            cumulative: timed.iter().map(|(_, d)| *d).sum(),
            wall,
        }
    }

    /// Cumulative ÷ wall: how many serial runs' worth of work fit in
    /// the elapsed time.
    pub fn speedup(&self) -> f64 {
        self.cumulative.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Speedup ÷ jobs: 1.0 means every worker was busy the whole time.
    pub fn utilization(&self) -> f64 {
        self.speedup() / self.jobs.max(1) as f64
    }

    /// JSON rendering for the manifest `timing` section.
    pub fn to_json(&self) -> simcore::Json {
        simcore::Json::obj()
            .with("items", self.items)
            .with("jobs", self.jobs)
            .with("cumulative_seconds", self.cumulative.as_secs_f64())
            .with("wall_seconds", self.wall.as_secs_f64())
            .with("speedup", self.speedup())
            .with("utilization", self.utilization())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run_items(&items, jobs, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // jobs = 1 must work even for closures that would not enjoy
        // contention: detectable only behaviorally — order of side
        // effects is exactly input order.
        let log = Mutex::new(Vec::new());
        let items: Vec<u32> = (0..10).collect();
        run_items(&items, 1, |&x| log.lock().unwrap().push(x));
        assert_eq!(*log.lock().unwrap(), items);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_items(&[1u32, 2], 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(run_items(&none, 8, |&x| x).is_empty());
        assert_eq!(run_items(&[7u32], 8, |&x| x), vec![7]);
    }

    #[test]
    fn timed_wraps_same_results() {
        let items: Vec<u64> = (0..20).collect();
        let timed = run_items_timed(&items, 4, |&x| x * 3);
        let vals: Vec<u64> = timed.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, items.iter().map(|&x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn resolve_jobs_prefers_explicit() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn fanout_timing_summarizes() {
        let timed: Vec<((), Duration)> = vec![
            ((), Duration::from_secs(2)),
            ((), Duration::from_secs(2)),
            ((), Duration::from_secs(4)),
        ];
        let t = FanoutTiming::from_timed(&timed, 4, Duration::from_secs(2));
        assert_eq!(t.items, 3);
        assert_eq!(t.cumulative, Duration::from_secs(8));
        assert!((t.speedup() - 4.0).abs() < 1e-9);
        assert!((t.utilization() - 1.0).abs() < 1e-9);
        let j = t.to_json();
        assert_eq!(j.get("items").and_then(simcore::Json::as_u64), Some(3));
        assert_eq!(
            j.get("speedup").and_then(simcore::Json::as_f64),
            Some(t.speedup())
        );
    }
}
