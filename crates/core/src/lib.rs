//! The SC'95 clustering study (Erlichson, Nayfeh, Singh, Olukotun):
//! experiment sweeps, the analytic shared-cache cost model, and the
//! figure/table drivers.
//!
//! * [`study`] — run an application trace across cluster sizes
//!   {1,2,4,8} and cache sizes {4K,16K,32K,∞} per processor (Sections
//!   4 and 5).
//! * [`contention`] — the multi-banked shared-cache bank-conflict model
//!   and the combined execution-time cost factor (Section 6, Table 4).
//! * [`latency_factor`] — the Pixie-analogue load-latency execution-
//!   time expansion factors (Section 6, Table 5).
//! * [`apps`] — the workload registry binding the `splash` suite to the
//!   study.
//! * [`report`] — text renderings of every figure and table.
//! * [`paper_data`] — the paper's published numbers, embedded for
//!   side-by-side comparison.
//! * [`parallel`] — the pipelined two-phase executor and chunked
//!   work-stealing fan-out for the embarrassingly parallel experiment
//!   matrix (`--jobs` / `STUDY_JOBS`).
//! * [`manifest`] — machine-readable run manifests (JSON/CSV) with a
//!   stable schema, emitted by the `cluster-bench` regenerators.

pub mod apps;
pub mod checkpoint;
pub mod contention;
pub mod latency_factor;
pub mod manifest;
pub mod paper_data;
pub mod parallel;
pub mod report;
pub mod study;

pub use checkpoint::{Journal, JournalEntry, JournalError, JournalHeader};
pub use contention::{bank_conflict_probability, shared_cache_factor};
pub use latency_factor::{measure_latency_factors, LatencyFactors};
pub use manifest::{write_atomic, Manifest, RunError, RunRecord, ServedBy};
pub use parallel::{
    resolve_jobs, run_items, run_items_chunked, run_items_timed, run_pipeline,
    run_pipeline_guarded, FanoutTiming, GuardedEvent, GuardedRun, ItemReport, Phase, PhaseSample,
    PipelineRun, RunPolicy, RunStatus,
};
pub use study::{
    run_config, run_config_sampled, CapacitySweep, CellOutcome, ClusterSweep, GenOutcome,
    StudyCell, StudyEvent, StudyRun, StudySpec,
};
