//! Plain-text renderings of the paper's figures and tables, printing
//! measured values next to the paper's published ones.

use std::fmt::Write as _;

use crate::contention::{banks_for, shared_cache_factor, table4};
use crate::latency_factor::LatencyFactors;
use crate::paper_data;
use crate::study::{ClusterSweep, CLUSTER_SIZES};

/// Renders one figure panel (a [`ClusterSweep`]) in the paper's
/// stacked-bar layout: one column per cluster size, rows for the total
/// and each component, all as percent of the 1p baseline.
pub fn render_sweep(title: &str, sweep: &ClusterSweep, paper: Option<[f64; 4]>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}  (cache: {})", sweep.cache.label());
    let _ = writeln!(
        s,
        "  {:<9} {:>8} {:>8} {:>8} {:>8}",
        "", "1p", "2p", "4p", "8p"
    );
    let rows = sweep.normalized_breakdowns();
    let totals = sweep.normalized_totals();
    let field = |f: usize| -> Vec<f64> { rows.iter().map(|(_, b)| b[f]).collect() };
    let print_row = |s: &mut String, name: &str, vals: &[f64]| {
        let _ = write!(s, "  {name:<9}");
        for v in vals {
            let _ = write!(s, " {v:>8.1}");
        }
        let _ = writeln!(s);
    };
    print_row(
        &mut s,
        "total",
        &totals.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
    );
    print_row(&mut s, "cpu", &field(0));
    print_row(&mut s, "load", &field(1));
    print_row(&mut s, "merge", &field(2));
    print_row(&mut s, "sync", &field(3));
    if let Some(p) = paper {
        print_row(&mut s, "paper tot", &p);
    }
    s
}

/// Renders the Table 4 bank-conflict probabilities.
pub fn render_table4() -> String {
    let mut s = String::from(
        "Table 4: Probabilities of Bank Conflict\n  procs  banks  C(measured)  C(paper)\n",
    );
    let paper = [0.0, 0.125, 0.176, 0.199];
    for ((n, m, c), p) in table4().into_iter().zip(paper) {
        let _ = writeln!(s, "  {n:>5}  {m:>5}  {c:>11.3}  {p:>8.3}");
    }
    s
}

/// Renders one application's Table 5 row: measured factors vs paper.
pub fn render_table5_row(app: &str, f: &LatencyFactors) -> String {
    let mut s = String::new();
    let _ = write!(s, "  {app:<10}");
    for l in 1..=4 {
        let _ = write!(s, " {:>7.3}", f.at(l));
    }
    if let Some(p) = paper_data::table5(app) {
        let _ = write!(s, "   | paper:");
        for v in p {
            let _ = write!(s, " {v:>6.3}");
        }
    }
    s.push('\n');
    s
}

/// Computes a Table 6/7 row: relative execution time of clustering
/// including the shared-cache cost factor.
pub fn costed_relative_times(sweep: &ClusterSweep, f: &LatencyFactors) -> Vec<(u32, f64)> {
    let base = sweep.baseline_time() as f64 * shared_cache_factor(1, f);
    sweep
        .runs
        .iter()
        .map(|(n, stats)| {
            let t = stats.exec_time as f64 * shared_cache_factor(*n, f);
            (*n, t / base)
        })
        .collect()
}

/// Renders a Table 6/7 row next to the paper's.
pub fn render_costed_row(app: &str, rel: &[(u32, f64)], paper: Option<[f64; 4]>) -> String {
    let mut s = String::new();
    let _ = write!(s, "  {app:<10}");
    for (_, v) in rel {
        let _ = write!(s, " {v:>6.2}");
    }
    if let Some(p) = paper {
        let _ = write!(s, "   | paper:");
        for v in p {
            let _ = write!(s, " {v:>5.2}");
        }
    }
    s.push('\n');
    s
}

/// The standard table header for cluster-size columns.
pub fn cluster_header() -> String {
    let mut s = String::from("  app       ");
    for c in CLUSTER_SIZES {
        let _ = write!(s, " {:>5}p", c);
    }
    s.push('\n');
    s
}

/// Summary line comparing measured and paper totals: mean absolute
/// difference in normalized points.
pub fn shape_distance(measured: &[(u32, f64)], paper: [f64; 4]) -> f64 {
    measured
        .iter()
        .zip(paper)
        .map(|((_, m), p)| (m - p).abs())
        .sum::<f64>()
        / measured.len() as f64
}

/// One-line directional check: does clustering help (8p < 1p) in both
/// the measurement and the paper?
pub fn direction_agrees(measured: &[(u32, f64)], paper: [f64; 4]) -> bool {
    let m_helps = measured.last().unwrap().1 < measured[0].1 - 0.5;
    let p_helps = paper[3] < paper[0] - 0.5;
    m_helps == p_helps
}

/// Renders the bank utilization note used by the ablation benches.
pub fn render_factors_banner(app: &str, n: u32, f: &LatencyFactors) -> String {
    format!(
        "{app}: {n} procs/cluster, {} banks, cost factor {:.3}\n",
        banks_for(n),
        shared_cache_factor(n, f)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coherence::config::CacheSpec;
    use simcore::stats::{MissStats, RunStats};

    fn fake_sweep() -> ClusterSweep {
        let mk = |t: u64| RunStats {
            per_proc: vec![simcore::stats::Breakdown {
                cpu: t / 2,
                load: t / 4,
                merge: 0,
                sync: t - t / 2 - t / 4,
            }],
            mem: MissStats::default(),
            exec_time: t,
        };
        ClusterSweep {
            cache: CacheSpec::Infinite,
            runs: vec![(1, mk(1000)), (2, mk(950)), (4, mk(900)), (8, mk(860))],
        }
    }

    #[test]
    fn render_sweep_contains_all_rows() {
        let s = render_sweep("fig", &fake_sweep(), Some([100.0, 99.0, 98.0, 97.0]));
        for key in ["total", "cpu", "load", "merge", "sync", "paper tot"] {
            assert!(s.contains(key), "missing row {key}: {s}");
        }
    }

    #[test]
    fn costed_rows_apply_factors() {
        let f = LatencyFactors {
            by_latency: [1.0, 1.05, 1.1, 1.15],
        };
        let rel = costed_relative_times(&fake_sweep(), &f);
        assert_eq!(rel[0].1, 1.0);
        // 8p raw = 0.86; cost factor >1 so the costed value is larger
        // than raw.
        assert!(rel[3].1 > 0.86);
        assert!(rel[3].1 < 1.0, "costed 8p {rel:?}");
    }

    #[test]
    fn shape_distance_zero_for_exact_match() {
        let m = vec![(1, 100.0), (2, 99.0), (4, 98.0), (8, 97.0)];
        assert_eq!(shape_distance(&m, [100.0, 99.0, 98.0, 97.0]), 0.0);
    }

    #[test]
    fn direction_agreement() {
        let helps = vec![(1, 100.0), (2, 95.0), (4, 90.0), (8, 85.0)];
        assert!(direction_agrees(&helps, [100.0, 96.0, 92.0, 88.0]));
        assert!(!direction_agrees(&helps, [100.0, 100.0, 100.1, 100.2]));
    }

    #[test]
    fn table4_renders() {
        let s = render_table4();
        assert!(s.contains("0.125"));
        assert!(s.contains("0.199"));
    }
}
