//! Pixie-analogue load-latency execution-time factors (Table 5).
//!
//! The paper used Pixie basic-block profiles to find "the relative
//! increase in execution time of increasing the load latency from 1 to
//! 2 cycles, 1 to 3 cycles, and 1 to 4 cycles". We measure the same
//! quantity by replaying each application's trace on an unclustered
//! machine with the engine's load-latency knob at 1–4 cycles and taking
//! execution-time ratios. The engine charges the added latency only on
//! *dependent* loads (one in four), modelling the compiler's ability to
//! schedule past most loads — "the processor will not stall on a load
//! instruction until the register destination of the load is used".

use coherence::config::CacheSpec;
use coherence::{LatencyTable, MachineConfig};
use simcore::ops::Trace;
use tango::EngineOptions;

/// Execution-time expansion per load latency: `by_latency[l-1]` is the
/// factor at an `l`-cycle load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyFactors {
    /// Factors for latencies 1..=4; `by_latency[0]` is always 1.0.
    pub by_latency: [f64; 4],
}

impl LatencyFactors {
    /// The factor at `latency` cycles (1..=4).
    pub fn at(&self, latency: u64) -> f64 {
        assert!((1..=4).contains(&latency));
        self.by_latency[latency as usize - 1]
    }
}

/// Measures the Table 5 factors for one application trace. Uses an
/// infinite-cache, *zero-miss-latency* unclustered machine so the
/// measurement reflects only the instruction stream — exactly what
/// Pixie's basic-block profile measured.
pub fn measure_latency_factors(trace: &Trace) -> LatencyFactors {
    let machine = MachineConfig {
        n_procs: trace.n_procs() as u32,
        per_cluster: 1,
        cache: CacheSpec::Infinite,
        lat: LatencyTable::uniform(0),
    };
    let mut by_latency = [1.0f64; 4];
    let base = tango::run_with(
        trace,
        machine,
        EngineOptions {
            load_latency: 1,
            ..Default::default()
        },
    )
    .exec_time;
    for l in 2..=4u64 {
        let t = tango::run_with(
            trace,
            machine,
            EngineOptions {
                load_latency: l,
                ..Default::default()
            },
        )
        .exec_time;
        by_latency[l as usize - 1] = t as f64 / base as f64;
    }
    LatencyFactors { by_latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ops::TraceBuilder;

    fn loady_trace() -> Trace {
        let mut b = TraceBuilder::new(2);
        let a = b.space_mut().alloc_shared(64 * 32);
        for p in 0..2u32 {
            for i in 0..400u64 {
                b.read(p, a + (i % 32) * 64);
                b.compute(p, 3);
            }
        }
        b.finish()
    }

    #[test]
    fn factors_monotone_and_start_at_one() {
        let f = measure_latency_factors(&loady_trace());
        assert_eq!(f.by_latency[0], 1.0);
        for w in f.by_latency.windows(2) {
            assert!(w[1] >= w[0], "factors must be nondecreasing: {f:?}");
        }
        assert!(f.by_latency[3] > 1.0);
    }

    #[test]
    fn factors_bounded_by_full_stall_model() {
        // With 1-in-4 dependent loads, a trace of r reads and c compute
        // can expand at most by r·(l-1)/4 cycles.
        let t = loady_trace();
        let f = measure_latency_factors(&t);
        // reads per proc = 400, compute = 1200, so base ≈ 1600; at
        // l=4 the bound is (1600 + 300)/1600.
        assert!(f.at(4) <= (1600.0 + 300.0) / 1600.0 + 0.05, "factor {f:?}");
    }

    #[test]
    #[should_panic]
    fn at_rejects_out_of_range() {
        let f = LatencyFactors {
            by_latency: [1.0; 4],
        };
        let _ = f.at(5);
    }
}
